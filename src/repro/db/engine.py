"""The database engine facade: catalog, DML, SELECT execution, logging.

:class:`Database` is the single entry point the rest of the system uses.
It owns the catalog (tables + indexes), maintains secondary indexes on
every change, appends to the :class:`~repro.db.log.UpdateLog`, fires
triggers, and refreshes materialized views.

Work accounting: every statement returns a :class:`StatementResult` whose
``rows_examined`` / ``index_probes`` counters feed the simulator's cost
model, so "heavy" queries really are heavier than "light" ones.
"""

from __future__ import annotations

import itertools
import random
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import CatalogError, ExecutionError
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.sql.params import bind_parameters, number_parameters
from repro.db.executor import ExecutionContext, execute
from repro.db.expr import Scope, evaluate, execution_context, passes
from repro.db.index import HashIndex, Index, SortedIndex
from repro.db.log import ChangeKind, UpdateLog, UpdateRecord
from repro.db.planner import Planner, PlanNode
from repro.db.schema import Column, TableSchema
from repro.db.table import HeapTable
from repro.db.triggers import TriggerManager
from repro.db.types import SqlType, Value

Row = Tuple[Value, ...]

#: Bound on cached (statement, plan) entries; oldest evicted beyond this.
_PLAN_CACHE_CAP = 256


@dataclass
class StatementResult:
    """Outcome of one executed statement.

    For SELECTs, ``columns``/``rows`` carry the result set.  For DML,
    ``rowcount`` is the number of affected rows.  The work counters are
    cumulative over the whole statement, including index maintenance.
    """

    statement: ast.Statement
    columns: List[str] = field(default_factory=list)
    rows: List[Row] = field(default_factory=list)
    rowcount: int = 0
    rows_examined: int = 0
    index_probes: int = 0
    triggers_fired: int = 0

    @property
    def work_units(self) -> int:
        """Scalar work measure used by the latency model."""
        return self.rows_examined + 2 * self.index_probes + len(self.rows)


class Database:
    """An in-memory SQL database with an update log.

    Args:
        clock: callable returning the current time for log timestamps.
            Defaults to a logical counter so tests are deterministic; the
            simulator injects its simulated clock.
        log_capacity: optional bound on retained update-log records.
        executor: ``"columnar"`` (default) runs plans through the
            vectorized batch executor; ``"row"`` selects the reference
            tuple-at-a-time executor kept for differential testing.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        log_capacity: Optional[int] = None,
        executor: str = "columnar",
    ) -> None:
        if executor not in ("columnar", "row"):
            raise ValueError(f"unknown executor mode {executor!r}")
        self.executor_mode = executor
        if executor == "row":
            from repro.db.rowexec import execute as execute_plan
        else:
            execute_plan = execute
        self._execute_plan = execute_plan
        # Statement/plan cache: raw SQL text of a SELECT maps to its parsed
        # statement plus a plan built from the parameter-numbered form.  The
        # planner treats $n placeholders as constants, so one plan serves
        # every binding; entries whose plan is None memoize the parse only
        # (subquery-bearing SELECTs must re-resolve against live data).
        # Cleared on any DDL.
        self._plan_cache: Dict[str, Tuple[ast.Statement, Optional[PlanNode]]] = {}
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self._tables: Dict[str, HeapTable] = {}
        self._indexes: Dict[str, Index] = {}
        self._indexes_by_table: Dict[str, List[Index]] = {}
        self.update_log = UpdateLog(capacity=log_capacity)
        self.triggers = TriggerManager()
        from repro.db.transactions import TransactionManager

        self.transactions = TransactionManager()
        self._planner = Planner(self)
        self._logical_clock = itertools.count()
        self._clock = clock or (lambda: float(next(self._logical_clock)))
        self._change_listeners: List[Callable[[UpdateRecord], None]] = []
        self.statements_executed = 0
        # Seeded stream backing RAND()/RANDOM(): deterministic per database.
        self._rand = random.Random(0x5EED)
        # Statement execution is serialized: the engine's shared state
        # (plan cache LRU, update log, heap tables, indexes) is not safe
        # under concurrent mutation, and the async serving tier runs
        # servlet+DB work on several worker threads.  Re-entrant because
        # materialized-view refresh re-executes SQL within a statement.
        self._exec_lock = threading.RLock()

    # -- catalog -------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        key = schema.lower_name
        if key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        self._tables[key] = HeapTable(schema)
        self._indexes_by_table[key] = []
        self._plan_cache.clear()

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"no table named {name!r}")
        del self._tables[key]
        for index in self._indexes_by_table.pop(key, []):
            del self._indexes[index.name]
        self._plan_cache.clear()

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def heap(self, name: str) -> HeapTable:
        """The heap storage for ``name`` (case-insensitive)."""
        try:
            return self._tables[name.lower()]
        except KeyError as exc:
            raise CatalogError(f"no table named {name!r}") from exc

    def schema(self, name: str) -> TableSchema:
        return self.heap(name).schema

    def create_index(
        self,
        name: str,
        table: str,
        columns: Sequence[str],
        unique: bool = False,
        sorted_index: bool = True,
    ) -> Index:
        """Create and backfill a secondary index.

        Single-column indexes default to the sorted variant (supports both
        equality and range probes); multi-column indexes are hash-only.
        """
        if name in self._indexes:
            raise CatalogError(f"index {name!r} already exists")
        heap = self.heap(table)
        if len(columns) == 1 and sorted_index:
            index: Index = SortedIndex(name, heap.schema, columns, unique)
        else:
            index = HashIndex(name, heap.schema, columns, unique)
        for rowid, row in heap.rows():
            index.add(rowid, row)
        self._indexes[name] = index
        self._indexes_by_table[heap.schema.lower_name].append(index)
        self._plan_cache.clear()
        return index

    def index(self, name: str) -> Index:
        try:
            return self._indexes[name]
        except KeyError as exc:
            raise CatalogError(f"no index named {name!r}") from exc

    def indexes_on(self, table: str) -> List[Index]:
        return list(self._indexes_by_table.get(table.lower(), ()))

    # -- CatalogView protocol (used by the planner) ---------------------------

    def table_columns(self, table: str) -> List[str]:
        return [column.lower_name for column in self.schema(table).columns]

    def equality_index(self, table: str, column: str) -> Optional[str]:
        for index in self.indexes_on(table):
            if index.columns == (column.lower(),):
                return index.name
        return None

    def range_index(self, table: str, column: str) -> Optional[str]:
        for index in self.indexes_on(table):
            if isinstance(index, SortedIndex) and index.columns == (column.lower(),):
                return index.name
        return None

    # -- change listeners ------------------------------------------------------

    def add_change_listener(self, listener: Callable[[UpdateRecord], None]) -> None:
        """Register a callback invoked synchronously after each logged change.

        Materialized views use this; the CachePortal invalidator pointedly
        does *not* — it reads the update log asynchronously instead.
        """
        self._change_listeners.append(listener)

    def remove_change_listener(self, listener: Callable[[UpdateRecord], None]) -> None:
        self._change_listeners.remove(listener)

    # -- statement execution ----------------------------------------------------

    def execute(
        self,
        statement: Union[str, ast.Statement],
        params: Optional[Sequence[Value]] = None,
    ) -> StatementResult:
        """Parse (if needed), bind, and run one statement.

        SELECT text is memoized in the plan cache: the first execution
        parses, numbers its parameters, and plans; repeats skip straight to
        the executor.  The cache is LRU — a hit refreshes the entry so hot
        statements survive bursts of cold ones.  Parameters still bind
        every call (the bound statement is what
        ``StatementResult.statement`` reports, and bind errors must
        surface identically), but the cached plan resolves ``$n``
        placeholders at runtime from this call's bindings.

        Thread safety: statements serialize on a per-database re-entrant
        lock, so concurrent connections (the async gateway's miss
        workers) cannot corrupt the plan-cache LRU or interleave
        update-log appends.
        """
        with self._exec_lock:
            return self._execute_locked(statement, params)

    def _execute_locked(
        self,
        statement: Union[str, ast.Statement],
        params: Optional[Sequence[Value]] = None,
    ) -> StatementResult:
        plan: Optional[PlanNode] = None
        fill_key: Optional[str] = None
        if isinstance(statement, str):
            text = statement
            entry = self._plan_cache.get(text)
            if entry is not None:
                statement, plan = entry
                if plan is not None:
                    self.plan_cache_hits += 1
                    # LRU: re-insert so eviction pops the coldest entry,
                    # not merely the oldest.
                    del self._plan_cache[text]
                    self._plan_cache[text] = entry
                elif isinstance(statement, ast.Select):
                    # ``(statement, None)`` placeholder: the parse is
                    # reusable but no plan was produced.  Retry planning —
                    # it counts as neither a hit nor a miss.
                    fill_key = text
            else:
                statement = parse_statement(text)
                if isinstance(statement, ast.Select):
                    fill_key = text
        bindings = tuple(params) if params else None
        if bindings is not None:
            bound = bind_parameters(statement, bindings)
        else:
            bound = statement
        self.statements_executed += 1
        # NOW() reads the logical DML clock and RAND() the seeded
        # per-database stream; both are pinned for the statement's duration
        # so one statement sees one consistent value.
        with execution_context(
            self.update_log.last_lsn, self._rand.random, params=bindings
        ):
            if fill_key is not None:
                plan = self._fill_plan_cache(fill_key, statement)
            if plan is not None:
                return self._run_plan(bound, plan)
            return self._dispatch(bound)

    def _dispatch(self, statement: ast.Statement) -> StatementResult:
        if isinstance(statement, ast.Select):
            return self._execute_select(statement)
        if isinstance(statement, ast.Union):
            return self._execute_union(statement)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.CreateIndex):
            self.create_index(
                statement.name, statement.table, statement.columns, statement.unique
            )
            return StatementResult(statement)
        if isinstance(statement, ast.DropTable):
            if statement.if_exists and not self.has_table(statement.table):
                return StatementResult(statement)
            self.drop_table(statement.table)
            return StatementResult(statement)
        if isinstance(statement, ast.Explain):
            from repro.db.explain import explain

            lines = explain(self, statement.statement)
            result = StatementResult(statement)
            result.columns = ["plan"]
            result.rows = [(line,) for line in lines]
            result.rowcount = len(lines)
            return result
        if isinstance(statement, ast.BeginTransaction):
            self.begin()
            return StatementResult(statement)
        if isinstance(statement, ast.CommitTransaction):
            result = StatementResult(statement)
            result.triggers_fired = self.commit()
            return result
        if isinstance(statement, ast.RollbackTransaction):
            result = StatementResult(statement)
            result.rowcount = self.rollback()
            return result
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    def query(
        self, sql: str, params: Optional[Sequence[Value]] = None
    ) -> List[Row]:
        """Convenience wrapper returning only the rows of a SELECT."""
        return self.execute(sql, params).rows

    # -- SELECT -------------------------------------------------------------

    def _fill_plan_cache(
        self, key: str, statement: ast.Select
    ) -> Optional[PlanNode]:
        """Plan a freshly parsed SELECT and memoize it under its SQL text.

        Returns ``None`` (caching the parse only) when the statement
        contains subqueries — those re-resolve against live data each run,
        so their physical plan cannot be reused.  Planning errors propagate
        without caching, exactly as the uncached path would raise them.

        Re-planning a cached ``(statement, None)`` placeholder neither
        counts a miss nor evicts: the entry already occupies its slot, and
        a successful retry upgrades it in place.
        """
        from repro.db.subquery import contains_subquery

        replanning = key in self._plan_cache
        if not replanning:
            self.plan_cache_misses += 1
            if len(self._plan_cache) >= _PLAN_CACHE_CAP:
                self._plan_cache.pop(next(iter(self._plan_cache)))
        if contains_subquery(statement):
            self._plan_cache[key] = (statement, None)
            return None
        for table in self._select_tables(statement):
            self.heap(table)  # raises CatalogError for unknown tables
        plan = self._planner.plan(number_parameters(statement))
        self._plan_cache[key] = (statement, plan)
        return plan

    def _run_plan(self, statement: ast.Select, plan: PlanNode) -> StatementResult:
        """Execute a cached physical plan (no resolver work to charge)."""
        context = ExecutionContext(self)
        scope, rows = self._execute_plan(plan, context)
        labels = [label.split(".", 1)[-1] for label in scope.column_labels()]
        return StatementResult(
            statement,
            columns=labels,
            rows=rows,
            rowcount=len(rows),
            rows_examined=context.rows_examined,
            index_probes=context.index_probes,
        )

    def _execute_select(self, statement: ast.Select) -> StatementResult:
        for table in self._select_tables(statement):
            self.heap(table)  # raises CatalogError for unknown tables
        # Uncorrelated subqueries execute ahead of the plan (innermost
        # first); their work is charged to this statement.
        from repro.db.subquery import SubqueryResolver

        resolver = SubqueryResolver(self)
        resolved = resolver.resolve_select(statement)
        plan = self._planner.plan(resolved)
        context = ExecutionContext(self)
        scope, rows = self._execute_plan(plan, context)
        labels = [label.split(".", 1)[-1] for label in scope.column_labels()]
        return StatementResult(
            statement,
            columns=labels,
            rows=rows,
            rowcount=len(rows),
            rows_examined=context.rows_examined + resolver.rows_examined,
            index_probes=context.index_probes + resolver.index_probes,
        )

    def _execute_union(self, statement: ast.Union) -> StatementResult:
        parts = [self._execute_select(part) for part in statement.parts]
        width = len(parts[0].columns)
        for part in parts[1:]:
            if len(part.columns) != width:
                raise ExecutionError(
                    "UNION parts have different numbers of columns "
                    f"({width} vs {len(part.columns)})"
                )
        # Left-associative combination: each non-ALL union deduplicates
        # the rows accumulated so far, as in standard SQL.
        rows: List[Row] = list(parts[0].rows)
        for all_flag, part in zip(statement.all_flags, parts[1:]):
            rows.extend(part.rows)
            if not all_flag:
                seen = set()
                deduped: List[Row] = []
                for row in rows:
                    if row not in seen:
                        seen.add(row)
                        deduped.append(row)
                rows = deduped
        if statement.order_by:
            scope = Scope([("", parts[0].columns)])
            from repro.db.executor import _Directional
            from repro.db.types import SortKey

            def sort_key(row: Row):
                return [
                    _Directional(
                        SortKey(evaluate(item.expr, row, scope)), item.descending
                    )
                    for item in statement.order_by
                ]

            rows.sort(key=sort_key)
        offset = statement.offset or 0
        if offset:
            rows = rows[offset:]
        if statement.limit is not None:
            rows = rows[: statement.limit]
        return StatementResult(
            statement,
            columns=parts[0].columns,
            rows=rows,
            rowcount=len(rows),
            rows_examined=sum(part.rows_examined for part in parts),
            index_probes=sum(part.index_probes for part in parts),
        )

    def _select_tables(self, statement: ast.Select) -> List[str]:
        names: List[str] = []

        def visit(source: ast.FromSource) -> None:
            if isinstance(source, ast.TableRef):
                names.append(source.name)
            elif isinstance(source, ast.Join):
                visit(source.left)
                visit(source.right)
            # ValuesSource carries its own rows; nothing to validate.

        for source in statement.sources:
            visit(source)
        return names

    # -- DML ------------------------------------------------------------------

    def _execute_create_table(self, statement: ast.CreateTable) -> StatementResult:
        if statement.if_not_exists and self.has_table(statement.table):
            return StatementResult(statement)
        columns = [
            Column(
                name=col.name,
                sql_type=SqlType.from_name(col.type_name),
                primary_key=col.primary_key,
                unique=col.unique,
                not_null=col.not_null,
            )
            for col in statement.columns
        ]
        self.create_table(TableSchema(statement.table, columns))
        return StatementResult(statement)

    def _execute_insert(self, statement: ast.Insert) -> StatementResult:
        heap = self.heap(statement.table)
        schema = heap.schema
        result = StatementResult(statement)
        empty_scope = Scope([])
        for row_exprs in statement.rows:
            values = [evaluate(expr, (), empty_scope) for expr in row_exprs]
            if statement.columns:
                if len(values) != len(statement.columns):
                    raise ExecutionError(
                        f"INSERT specifies {len(statement.columns)} columns "
                        f"but {len(values)} values"
                    )
                full: List[Value] = [None] * len(schema)
                for column, value in zip(statement.columns, values):
                    full[schema.position(column)] = value
                values = full
            rowid, stored = heap.insert(values)
            for index in self.indexes_on(statement.table):
                index.add(rowid, stored)
            result.rowcount += 1
            result.triggers_fired += self._log_change(
                schema,
                ChangeKind.INSERT,
                stored,
                undo=self._make_insert_undo(schema.lower_name, rowid, stored),
            )
        return result

    def _dml_targets(
        self,
        heap: HeapTable,
        scope: Scope,
        where: Optional[ast.Expr],
        result: StatementResult,
    ) -> List[Tuple[int, Row]]:
        """Rows matching ``where``, charged to ``result.rows_examined``.

        The columnar engine filters whole storage batches through a
        compiled mask and charges per batch; the row engine walks tuples
        and charges one at a time.  Final counters are identical — only
        the charging granularity differs.
        """
        targets: List[Tuple[int, Row]] = []
        if self.executor_mode != "columnar":
            for rowid, row in heap.rows():
                result.rows_examined += 1
                if passes(where, row, scope):
                    targets.append((rowid, row))
            return targets
        from repro.db.vector import compile_mask

        mask_fn = None
        for rowids, columns in heap.scan_batches():
            count = len(rowids)
            result.rows_examined += count
            if where is None:
                targets.extend(zip(rowids, zip(*columns)))
                continue
            # Compiled lazily so an empty heap never evaluates the
            # predicate — matching the row engine's per-tuple behavior.
            if mask_fn is None:
                mask_fn = compile_mask(where, scope)
            mask = mask_fn(columns, count)
            for position, keep in enumerate(mask):
                if keep:
                    targets.append(
                        (
                            rowids[position],
                            tuple(column[position] for column in columns),
                        )
                    )
        return targets

    def _execute_update(self, statement: ast.Update) -> StatementResult:
        heap = self.heap(statement.table)
        schema = heap.schema
        scope = Scope([(schema.lower_name, schema.column_names)])
        result = StatementResult(statement)
        # Materialize targets first: assignments must not affect row selection.
        targets = self._dml_targets(heap, scope, statement.where, result)
        assignment_positions = [
            (schema.position(column), expr) for column, expr in statement.assignments
        ]
        for rowid, old_row in targets:
            new_values = list(old_row)
            for position, expr in assignment_positions:
                new_values[position] = evaluate(expr, old_row, scope)
            old_row, new_row = heap.update(rowid, new_values)
            for index in self.indexes_on(statement.table):
                index.replace(rowid, old_row, new_row)
            result.rowcount += 1
            # An UPDATE logs a delete+insert pair; the single physical
            # undo (restore the old image) rides on the second record so
            # that reversed-order rollback runs it exactly once.
            result.triggers_fired += self._log_change(
                schema, ChangeKind.DELETE, old_row, undo=lambda: None
            )
            result.triggers_fired += self._log_change(
                schema,
                ChangeKind.INSERT,
                new_row,
                undo=self._make_update_undo(
                    schema.lower_name, rowid, old_row, new_row
                ),
            )
        return result

    def _execute_delete(self, statement: ast.Delete) -> StatementResult:
        heap = self.heap(statement.table)
        schema = heap.schema
        scope = Scope([(schema.lower_name, schema.column_names)])
        result = StatementResult(statement)
        targets = self._dml_targets(heap, scope, statement.where, result)
        for rowid, row in targets:
            heap.delete(rowid)
            for index in self.indexes_on(statement.table):
                index.remove(rowid, row)
            result.rowcount += 1
            result.triggers_fired += self._log_change(
                schema,
                ChangeKind.DELETE,
                row,
                undo=self._make_delete_undo(schema.lower_name, rowid, row),
            )
        return result

    # -- transactions ------------------------------------------------------------

    def begin(self) -> None:
        """Open a transaction: changes stay unpublished until commit."""
        self.transactions.begin()

    def commit(self) -> int:
        """Publish all buffered changes (log, triggers, listeners).

        Returns the number of triggers fired.  A commit with no open
        transaction is a no-op (auto-commit mode).
        """
        if not self.transactions.active:
            return 0
        transaction = self.transactions.take_for_commit()
        fired = 0
        for change in transaction.changes:
            fired += self._publish(
                change.table, change.kind, change.values, change.columns
            )
        return fired

    def rollback(self) -> int:
        """Undo every change of the open transaction; returns the count."""
        return self.transactions.rollback()

    @property
    def in_transaction(self) -> bool:
        return self.transactions.active

    # -- change publication ---------------------------------------------------------

    def _publish(self, table: str, kind: ChangeKind, values: Row, columns) -> int:
        record = self.update_log.append(
            table=table,
            kind=kind,
            values=values,
            columns=columns,
            timestamp=self._clock(),
        )
        fired = self.triggers.fire(record)
        for listener in self._change_listeners:
            listener(record)
        return fired

    def _log_change(
        self,
        schema: TableSchema,
        kind: ChangeKind,
        row: Row,
        undo: Optional[Callable[[], None]] = None,
    ) -> int:
        columns = tuple(column.lower_name for column in schema.columns)
        if self.transactions.active:
            self.transactions.current.record(
                schema.lower_name, kind, tuple(row), columns,
                undo if undo is not None else (lambda: None),
            )
            return 0
        return self._publish(schema.lower_name, kind, tuple(row), columns)

    # -- undo builders ---------------------------------------------------------------

    def _make_insert_undo(self, table: str, rowid: int, row: Row) -> Callable[[], None]:
        def undo() -> None:
            self.heap(table).delete(rowid)
            for index in self.indexes_on(table):
                index.remove(rowid, row)

        return undo

    def _make_delete_undo(self, table: str, rowid: int, row: Row) -> Callable[[], None]:
        def undo() -> None:
            self.heap(table).restore(rowid, row)
            for index in self.indexes_on(table):
                index.add(rowid, row)

        return undo

    def _make_update_undo(
        self, table: str, rowid: int, old_row: Row, new_row: Row
    ) -> Callable[[], None]:
        def undo() -> None:
            self.heap(table).update(rowid, old_row)
            for index in self.indexes_on(table):
                index.replace(rowid, new_row, old_row)

        return undo
