"""Materialized views with change notification.

The paper's second baseline (§4, second paragraph): define a materialized
view per query type and put triggers on the views.  The view manager here
recomputes a view whenever one of its base tables changes and reports
whether the view content actually changed — the "view management cost" the
paper warns about is the recomputation work, which the benchmarks measure
through the engine's work counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import CatalogError
from repro.sql import ast
from repro.sql.analysis import referenced_tables
from repro.sql.parser import parse_statement
from repro.db.engine import Database
from repro.db.log import UpdateRecord
from repro.db.types import Value

Row = Tuple[Value, ...]

ViewChangeCallback = Callable[["MaterializedView"], None]


@dataclass
class MaterializedView:
    """One registered view: its defining query and current contents."""

    name: str
    query: ast.Select
    base_tables: Set[str]
    #: The defining SQL text; refreshes execute this (not the AST) so the
    #: engine's plan cache recognizes the repeat and skips re-planning.
    query_sql: str = ""
    rows: List[Row] = field(default_factory=list)
    refresh_count: int = 0
    change_count: int = 0
    maintenance_work: int = 0  # cumulative rows_examined during refreshes


class MaterializedViewManager:
    """Maintains a set of views over one database.

    Views refresh *synchronously* on every change to any of their base
    tables, charging the recomputation to the database — this is precisely
    the overhead profile that motivates CachePortal's asynchronous design.
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        self._views: Dict[str, MaterializedView] = {}
        self._by_table: Dict[str, List[MaterializedView]] = {}
        self._listeners: List[ViewChangeCallback] = []
        database.add_change_listener(self._on_change)

    def close(self) -> None:
        """Detach from the database's change feed."""
        self.database.remove_change_listener(self._on_change)

    def define(self, name: str, query_sql: str) -> MaterializedView:
        """Register a view and compute its initial contents."""
        if name in self._views:
            raise CatalogError(f"materialized view {name!r} already exists")
        statement = parse_statement(query_sql)
        if not isinstance(statement, ast.Select):
            raise CatalogError("materialized views must be defined by a SELECT")
        view = MaterializedView(
            name=name,
            query=statement,
            base_tables=referenced_tables(statement),
            query_sql=query_sql,
        )
        self._views[name] = view
        for table in view.base_tables:
            self._by_table.setdefault(table, []).append(view)
        self._refresh(view)
        view.change_count = 0  # the initial fill is not a change
        return view

    def drop(self, name: str) -> None:
        view = self._views.pop(name, None)
        if view is None:
            raise CatalogError(f"no materialized view named {name!r}")
        for table in view.base_tables:
            self._by_table[table].remove(view)

    def get(self, name: str) -> MaterializedView:
        try:
            return self._views[name]
        except KeyError as exc:
            raise CatalogError(f"no materialized view named {name!r}") from exc

    def names(self) -> List[str]:
        return sorted(self._views)

    def on_view_change(self, callback: ViewChangeCallback) -> None:
        """Register a callback fired whenever any view's contents change.

        This is the "trigger on the materialized view" of the baseline
        approach: callers (e.g. a view-based invalidator) map the view back
        to cached pages.
        """
        self._listeners.append(callback)

    # -- internals ------------------------------------------------------------

    def _on_change(self, record: UpdateRecord) -> None:
        for view in self._by_table.get(record.table, ()):
            old_rows = view.rows
            self._refresh(view)
            if sorted(map(repr, old_rows)) != sorted(map(repr, view.rows)):
                view.change_count += 1
                for listener in self._listeners:
                    listener(view)

    def _refresh(self, view: MaterializedView) -> None:
        result = self.database.execute(view.query_sql or view.query)
        view.rows = result.rows
        view.refresh_count += 1
        view.maintenance_work += result.rows_examined
