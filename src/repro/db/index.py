"""Secondary indexes: hash (equality) and sorted (range) variants.

Indexes map a key — the tuple of indexed column values — to the set of
row ids carrying that key.  They are maintained eagerly by the engine on
every insert/delete/update.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ConstraintError
from repro.db.schema import TableSchema
from repro.db.types import SortKey, Value

Key = Tuple[Value, ...]


class Index:
    """Base class holding the column positions an index covers."""

    def __init__(
        self, name: str, schema: TableSchema, columns: Sequence[str], unique: bool = False
    ) -> None:
        self.name = name
        self.table_name = schema.lower_name
        self.columns = tuple(column.lower() for column in columns)
        self.positions = tuple(schema.position(column) for column in columns)
        self.unique = unique

    def key_of(self, row: Sequence[Value]) -> Key:
        """Extract this index's key from a full table row."""
        return tuple(row[position] for position in self.positions)

    # -- interface ----------------------------------------------------------

    def add(self, rowid: int, row: Sequence[Value]) -> None:
        raise NotImplementedError

    def remove(self, rowid: int, row: Sequence[Value]) -> None:
        raise NotImplementedError

    def lookup(self, key: Key) -> Set[int]:
        raise NotImplementedError

    def lookup_many(self, values: Sequence[Value]) -> Set[int]:
        """Union of single-column equality lookups, one per value.

        Batch entry point for ``IndexInLookup``: callers pass bare values
        (not key tuples) for a single-column index.
        """
        rowids: Set[int] = set()
        for value in values:
            rowids |= self.lookup((value,))
        return rowids

    def replace(self, rowid: int, old_row: Sequence[Value], new_row: Sequence[Value]) -> None:
        """Default update: remove old entry, add the new one."""
        self.remove(rowid, old_row)
        self.add(rowid, new_row)


class HashIndex(Index):
    """Dictionary-backed index supporting equality lookups."""

    def __init__(
        self, name: str, schema: TableSchema, columns: Sequence[str], unique: bool = False
    ) -> None:
        super().__init__(name, schema, columns, unique)
        self._buckets: Dict[Key, Set[int]] = {}

    def add(self, rowid: int, row: Sequence[Value]) -> None:
        key = self.key_of(row)
        bucket = self._buckets.setdefault(key, set())
        if self.unique and bucket and None not in key:
            raise ConstraintError(
                f"unique index {self.name!r} rejects duplicate key {key!r}"
            )
        bucket.add(rowid)

    def remove(self, rowid: int, row: Sequence[Value]) -> None:
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self._buckets[key]

    def lookup(self, key: Key) -> Set[int]:
        """Row ids whose indexed columns equal ``key`` exactly."""
        return set(self._buckets.get(key, ()))

    def lookup_many(self, values: Sequence[Value]) -> Set[int]:
        """Single-pass bucket union — skips the per-probe set copies."""
        rowids: Set[int] = set()
        buckets = self._buckets
        for value in values:
            bucket = buckets.get((value,))
            if bucket:
                rowids |= bucket
        return rowids

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class SortedIndex(Index):
    """Bisect-backed single-column index supporting range scans."""

    def __init__(
        self, name: str, schema: TableSchema, columns: Sequence[str], unique: bool = False
    ) -> None:
        if len(columns) != 1:
            raise ConstraintError("sorted indexes cover exactly one column")
        super().__init__(name, schema, columns, unique)
        self._keys: List[SortKey] = []
        self._entries: List[Tuple[Value, int]] = []  # parallel to _keys

    def add(self, rowid: int, row: Sequence[Value]) -> None:
        value = row[self.positions[0]]
        key = SortKey(value)
        position = bisect.bisect_left(self._keys, key)
        if self.unique and value is not None:
            if position < len(self._entries) and self._entries[position][0] == value:
                raise ConstraintError(
                    f"unique index {self.name!r} rejects duplicate key {value!r}"
                )
        self._keys.insert(position, key)
        self._entries.insert(position, (value, rowid))

    def remove(self, rowid: int, row: Sequence[Value]) -> None:
        value = row[self.positions[0]]
        key = SortKey(value)
        position = bisect.bisect_left(self._keys, key)
        while position < len(self._entries) and self._entries[position][0] == value:
            if self._entries[position][1] == rowid:
                del self._keys[position]
                del self._entries[position]
                return
            position += 1

    def lookup(self, key: Key) -> Set[int]:
        value = key[0]
        return self.range_lookup(low=value, high=value, low_open=False, high_open=False)

    def range_lookup(
        self,
        low: Optional[Value] = None,
        high: Optional[Value] = None,
        low_open: bool = False,
        high_open: bool = False,
    ) -> Set[int]:
        """Row ids with indexed value in the given (possibly open) range.

        ``None`` bounds mean unbounded; NULL values never match a range.
        """
        if not self._entries:
            return set()
        start = 0
        if low is not None:
            key = SortKey(low)
            start = (
                bisect.bisect_right(self._keys, key)
                if low_open
                else bisect.bisect_left(self._keys, key)
            )
        else:
            # Skip leading NULLs (sorted first) for unbounded-from-below scans.
            while start < len(self._entries) and self._entries[start][0] is None:
                start += 1
        end = len(self._entries)
        if high is not None:
            key = SortKey(high)
            end = (
                bisect.bisect_left(self._keys, key)
                if high_open
                else bisect.bisect_right(self._keys, key)
            )
        return {rowid for _value, rowid in self._entries[start:end]}

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> Iterator[Tuple[Value, int]]:
        """(value, rowid) pairs in key order; useful for merge operations."""
        return iter(self._entries)
