"""Reference row-at-a-time executor.

This is the engine's original tuple-pipelined executor, retained behind
``Database(executor="row")`` as the semantic oracle for the vectorized
columnar executor in :mod:`repro.db.executor`.  The sql_battery runs
every statement through both and asserts identical rows, labels, and
``rows_examined``/``index_probes`` totals.

The only change from its life as *the* executor: ``Limit`` materializes
its child before slicing.  The columnar executor is fully eager at every
node, so a lazy limit would stop charging mid-scan and the counters
could never match.  Totals are otherwise unchanged — laziness elsewhere
never dropped work, it only interleaved it.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.errors import ExecutionError
from repro.sql import ast
from repro.db import planner as plan
from repro.db.executor import (
    ExecutionContext,
    _AggState,
    _collect_aggregates,
    _default_label,
    _Directional,
)
from repro.db.expr import Scope, evaluate, passes
from repro.db.types import SortKey, Value

Row = Tuple[Value, ...]


def execute(node: plan.PlanNode, context: ExecutionContext) -> Tuple[Scope, List[Row]]:
    """Execute a plan tree, returning its output scope and materialized rows."""
    scope, rows = _execute(node, context)
    return scope, list(rows)


def _execute(node: plan.PlanNode, context: ExecutionContext) -> Tuple[Scope, Iterator[Row]]:
    if isinstance(node, plan.TableScan):
        return _table_scan(node, context)
    if isinstance(node, plan.ValuesScan):
        return _values_scan(node, context)
    if isinstance(node, plan.IndexEqLookup):
        return _index_eq(node, context)
    if isinstance(node, plan.IndexInLookup):
        return _index_in(node, context)
    if isinstance(node, plan.IndexRangeScan):
        return _index_range(node, context)
    if isinstance(node, plan.Filter):
        return _filter(node, context)
    if isinstance(node, plan.NestedLoopJoin):
        return _nested_loop(node, context)
    if isinstance(node, plan.HashJoin):
        return _hash_join(node, context)
    if isinstance(node, plan.LeftOuterJoin):
        return _left_join(node, context)
    if isinstance(node, plan.SemiJoin):
        return _semi_join(node, context)
    if isinstance(node, plan.HashSemiJoin):
        return _hash_semi_join(node, context)
    if isinstance(node, plan.Project):
        return _project(node, context)
    if isinstance(node, plan.Aggregate):
        return _aggregate(node, context)
    if isinstance(node, plan.Sort):
        return _sort(node, context)
    if isinstance(node, plan.Distinct):
        return _distinct(node, context)
    if isinstance(node, plan.Limit):
        return _limit(node, context)
    raise ExecutionError(f"unknown plan node {type(node).__name__}")


# -- leaf access paths -------------------------------------------------------


def _table_scan(node: plan.TableScan, context: ExecutionContext) -> Tuple[Scope, Iterator[Row]]:
    if not node.table:
        # Source-less SELECT: one empty row.
        return Scope([]), iter([()])
    table = context.database.heap(node.table)
    scope = Scope([(node.binding, table.schema.column_names)])

    def rows() -> Iterator[Row]:
        for _rowid, row in table.rows():
            context.charge_rows()
            yield row

    return scope, rows()


def _values_scan(node: plan.ValuesScan, context: ExecutionContext) -> Tuple[Scope, Iterator[Row]]:
    scope = Scope([(node.binding, list(node.columns))])
    empty_scope = Scope([])

    def rows() -> Iterator[Row]:
        for row in node.rows:
            context.charge_rows()
            yield tuple(evaluate(value, (), empty_scope) for value in row)

    return scope, rows()


def _index_eq(node: plan.IndexEqLookup, context: ExecutionContext) -> Tuple[Scope, Iterator[Row]]:
    database = context.database
    table = database.heap(node.table)
    scope = Scope([(node.binding, table.schema.column_names)])
    index = database.index(node.index_name)
    value = evaluate(node.value, (), Scope([]))
    context.charge_probe()
    rowids = sorted(index.lookup((value,)))
    context.charge_rows(len(rowids))

    def rows() -> Iterator[Row]:
        for rowid in rowids:
            row = table.get(rowid)
            if row is not None:
                yield row

    return scope, rows()


def _index_in(node: plan.IndexInLookup, context: ExecutionContext) -> Tuple[Scope, Iterator[Row]]:
    database = context.database
    table = database.heap(node.table)
    scope = Scope([(node.binding, table.schema.column_names)])
    index = database.index(node.index_name)
    empty_scope = Scope([])
    rowids: set = set()
    seen_values: set = set()
    for value_expr in node.values:
        value = evaluate(value_expr, (), empty_scope)
        if value is None:
            continue  # IN never matches NULL list entries
        if value in seen_values:
            continue
        seen_values.add(value)
        context.charge_probe()
        rowids |= index.lookup((value,))
    ordered = sorted(rowids)
    context.charge_rows(len(ordered))

    def rows() -> Iterator[Row]:
        for rowid in ordered:
            row = table.get(rowid)
            if row is not None:
                yield row

    return scope, rows()


def _index_range(node: plan.IndexRangeScan, context: ExecutionContext) -> Tuple[Scope, Iterator[Row]]:
    database = context.database
    table = database.heap(node.table)
    scope = Scope([(node.binding, table.schema.column_names)])
    index = database.index(node.index_name)
    empty_scope = Scope([])
    low = evaluate(node.low, (), empty_scope) if node.low is not None else None
    high = evaluate(node.high, (), empty_scope) if node.high is not None else None
    context.charge_probe()
    rowids = sorted(
        index.range_lookup(low=low, high=high, low_open=node.low_open, high_open=node.high_open)
    )
    context.charge_rows(len(rowids))

    def rows() -> Iterator[Row]:
        for rowid in rowids:
            row = table.get(rowid)
            if row is not None:
                yield row

    return scope, rows()


# -- relational operators ----------------------------------------------------


def _filter(node: plan.Filter, context: ExecutionContext) -> Tuple[Scope, Iterator[Row]]:
    scope, child_rows = _execute(node.child, context)

    def rows() -> Iterator[Row]:
        for row in child_rows:
            if passes(node.predicate, row, scope):
                yield row

    return scope, rows()


def _combined_scope(left: Scope, right: Scope) -> Scope:
    return Scope(
        [(binding, columns) for binding, columns in left.parts]
        + [(binding, columns) for binding, columns in right.parts]
    )


def _nested_loop(node: plan.NestedLoopJoin, context: ExecutionContext) -> Tuple[Scope, Iterator[Row]]:
    left_scope, left_rows = _execute(node.left, context)
    right_scope, right_rows = _execute(node.right, context)
    right_materialized = list(right_rows)
    scope = _combined_scope(left_scope, right_scope)

    def rows() -> Iterator[Row]:
        for left_row in left_rows:
            for right_row in right_materialized:
                context.charge_rows()
                combined = left_row + right_row
                if node.on is None or passes(node.on, combined, scope):
                    yield combined

    return scope, rows()


def _hash_join(node: plan.HashJoin, context: ExecutionContext) -> Tuple[Scope, Iterator[Row]]:
    left_scope, left_rows = _execute(node.left, context)
    right_scope, right_rows = _execute(node.right, context)
    scope = _combined_scope(left_scope, right_scope)

    buckets: Dict[Value, List[Row]] = {}
    for right_row in right_rows:
        key = evaluate(node.right_key, right_row, right_scope)
        if key is None:
            continue  # NULL keys never join
        buckets.setdefault(key, []).append(right_row)

    def rows() -> Iterator[Row]:
        for left_row in left_rows:
            key = evaluate(node.left_key, left_row, left_scope)
            if key is None:
                continue
            for right_row in buckets.get(key, ()):
                context.charge_rows()
                combined = left_row + right_row
                if node.residual is None or passes(node.residual, combined, scope):
                    yield combined

    return scope, rows()


def _semi_join(node: plan.SemiJoin, context: ExecutionContext) -> Tuple[Scope, Iterator[Row]]:
    left_scope, left_rows = _execute(node.left, context)
    right_scope, right_rows = _execute(node.right, context)
    right_materialized = list(right_rows)
    combined_scope = _combined_scope(left_scope, right_scope)

    def rows() -> Iterator[Row]:
        for left_row in left_rows:
            for right_row in right_materialized:
                context.charge_rows()
                combined = left_row + right_row
                if node.on is None or passes(node.on, combined, combined_scope):
                    yield left_row
                    break  # existence established: stop probing

    return left_scope, rows()


def _hash_semi_join(node: plan.HashSemiJoin, context: ExecutionContext) -> Tuple[Scope, Iterator[Row]]:
    left_scope, left_rows = _execute(node.left, context)
    right_scope, right_rows = _execute(node.right, context)
    combined_scope = _combined_scope(left_scope, right_scope)

    buckets: Dict[Value, List[Row]] = {}
    for right_row in right_rows:
        key = evaluate(node.right_key, right_row, right_scope)
        if key is None:
            continue  # NULL keys never join
        buckets.setdefault(key, []).append(right_row)

    def rows() -> Iterator[Row]:
        for left_row in left_rows:
            key = evaluate(node.left_key, left_row, left_scope)
            if key is None:
                continue
            for right_row in buckets.get(key, ()):
                context.charge_rows()
                combined = left_row + right_row
                if node.residual is None or passes(node.residual, combined, combined_scope):
                    yield left_row
                    break

    return left_scope, rows()


def _left_join(node: plan.LeftOuterJoin, context: ExecutionContext) -> Tuple[Scope, Iterator[Row]]:
    left_scope, left_rows = _execute(node.left, context)
    right_scope, right_rows = _execute(node.right, context)
    right_materialized = list(right_rows)
    scope = _combined_scope(left_scope, right_scope)
    null_right: Row = (None,) * right_scope.width

    def rows() -> Iterator[Row]:
        for left_row in left_rows:
            matched = False
            for right_row in right_materialized:
                context.charge_rows()
                combined = left_row + right_row
                if node.on is None or passes(node.on, combined, scope):
                    matched = True
                    yield combined
            if not matched:
                yield left_row + null_right

    return scope, rows()


def _project(node: plan.Project, context: ExecutionContext) -> Tuple[Scope, Iterator[Row]]:
    child_scope, child_rows = _execute(node.child, context)
    labels, extractors = _build_projection(node.items, child_scope)
    out_scope = Scope([("", labels)])

    def rows() -> Iterator[Row]:
        for row in child_rows:
            yield tuple(extract(row) for extract in extractors)

    return out_scope, rows()


def _build_projection(items: Tuple[ast.SelectItem, ...], scope: Scope):
    """Compile select items into per-row extractor callables and labels."""
    labels: List[str] = []
    extractors = []
    child_labels = scope.column_labels()
    for item in items:
        if isinstance(item.expr, ast.Star):
            for offset in scope.star_offsets(item.expr.table):
                labels.append(child_labels[offset].split(".", 1)[-1])
                extractors.append(_make_offset_extractor(offset))
        else:
            labels.append(item.alias or _default_label(item.expr))
            extractors.append(_make_expr_extractor(item.expr, scope))
    return labels, extractors


def _make_offset_extractor(offset: int):
    return lambda row: row[offset]


def _make_expr_extractor(expr: ast.Expr, scope: Scope):
    return lambda row: evaluate(expr, row, scope)


# -- aggregation --------------------------------------------------------------


def _aggregate(node: plan.Aggregate, context: ExecutionContext) -> Tuple[Scope, Iterator[Row]]:
    child_scope, child_rows = _execute(node.child, context)
    calls = _collect_aggregates(node.items, node.having)

    groups: Dict[Tuple, List[_AggState]] = {}
    group_samples: Dict[Tuple, Row] = {}
    saw_rows = False
    for row in child_rows:
        saw_rows = True
        key = tuple(
            evaluate(expr, row, child_scope) for expr in node.group_by
        )
        if key not in groups:
            groups[key] = [_AggState(call) for call in calls]
            group_samples[key] = row
        states = groups[key]
        for state in states:
            arg = state.call.args[0]
            if isinstance(arg, ast.Star):
                state.add(None)
            else:
                state.add(evaluate(arg, row, child_scope))

    if not node.group_by and not saw_rows:
        # Global aggregate over an empty input still yields one row.
        groups[()] = [_AggState(call) for call in calls]
        group_samples[()] = (None,) * child_scope.width

    labels = [
        item.alias or _default_label(item.expr) for item in node.items
    ]
    out_scope = Scope([("", labels)])

    def rows() -> Iterator[Row]:
        for key, states in groups.items():
            sample = group_samples[key]
            computed: Dict[ast.Expr, Value] = {}
            for state in states:
                computed[state.call] = state.result()
            for group_expr, group_value in zip(node.group_by, key):
                computed[group_expr] = group_value
            if node.having is not None:
                verdict = evaluate(node.having, sample, child_scope, computed)
                if verdict is not True:
                    continue
            yield tuple(
                evaluate(item.expr, sample, child_scope, computed)
                for item in node.items
            )

    return out_scope, rows()


# -- ordering and limits -------------------------------------------------------


def _sort(node: plan.Sort, context: ExecutionContext) -> Tuple[Scope, Iterator[Row]]:
    scope, child_rows = _execute(node.child, context)
    materialized = list(child_rows)

    def sort_key(row: Row):
        keys = []
        for item in node.keys:
            value = evaluate(item.expr, row, scope)
            keys.append(_Directional(SortKey(value), item.descending))
        return keys

    materialized.sort(key=sort_key)
    return scope, iter(materialized)


def _distinct(node: plan.Distinct, context: ExecutionContext) -> Tuple[Scope, Iterator[Row]]:
    scope, child_rows = _execute(node.child, context)

    def rows() -> Iterator[Row]:
        seen = set()
        for row in child_rows:
            if row not in seen:
                seen.add(row)
                yield row

    return scope, rows()


def _limit(node: plan.Limit, context: ExecutionContext) -> Tuple[Scope, Iterator[Row]]:
    # Materialize before slicing so the child's work counters reflect the
    # whole input, exactly like the always-eager columnar executor.
    scope, child_rows = _execute(node.child, context)
    materialized = list(child_rows)
    offset = node.offset or 0
    if node.limit is None:
        sliced = materialized[offset:]
    else:
        sliced = materialized[offset : offset + node.limit]
    return scope, iter(sliced)
