"""Heap table storage with stable row identifiers."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConstraintError
from repro.db.schema import TableSchema
from repro.db.types import Value

Row = Tuple[Value, ...]


class HeapTable:
    """A bag of rows keyed by monotonically increasing row ids.

    Row ids are never reused, which gives indexes and the update log a
    stable handle on rows across deletions.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: Dict[int, Row] = {}
        self._next_rowid = 1

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[Tuple[int, Row]]:
        """Iterate (rowid, row) pairs in insertion order."""
        return iter(self._rows.items())

    def get(self, rowid: int) -> Optional[Row]:
        return self._rows.get(rowid)

    def insert(self, values: Sequence[Value]) -> Tuple[int, Row]:
        """Validate and store one row; returns (rowid, stored row)."""
        row = self.schema.validate_row(values)
        self._check_unique(row, exclude_rowid=None)
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rows[rowid] = row
        return rowid, row

    def delete(self, rowid: int) -> Row:
        """Remove and return the row with ``rowid``."""
        try:
            return self._rows.pop(rowid)
        except KeyError as exc:
            raise ConstraintError(
                f"table {self.schema.name!r} has no row id {rowid}"
            ) from exc

    def restore(self, rowid: int, values: Sequence[Value]) -> Row:
        """Re-insert a previously deleted row under its original rowid.

        Used by transaction rollback: index entries reference rowids, so
        undoing a delete must bring the same identity back.
        """
        if rowid in self._rows:
            raise ConstraintError(
                f"table {self.schema.name!r} already has row id {rowid}"
            )
        row = self.schema.validate_row(values)
        self._rows[rowid] = row
        return row

    def update(self, rowid: int, values: Sequence[Value]) -> Tuple[Row, Row]:
        """Replace the row with ``rowid``; returns (old row, new row)."""
        if rowid not in self._rows:
            raise ConstraintError(
                f"table {self.schema.name!r} has no row id {rowid}"
            )
        new_row = self.schema.validate_row(values)
        self._check_unique(new_row, exclude_rowid=rowid)
        old_row = self._rows[rowid]
        self._rows[rowid] = new_row
        return old_row, new_row

    def _check_unique(self, row: Row, exclude_rowid: Optional[int]) -> None:
        """Enforce PRIMARY KEY / UNIQUE column constraints.

        A linear scan is acceptable here because unique columns are rare in
        the workloads and tables are modest; unique *indexes* (see
        :mod:`repro.db.index`) provide the fast path when declared.
        """
        positions = [
            index
            for index, column in enumerate(self.schema.columns)
            if column.primary_key or column.unique
        ]
        if not positions:
            return
        for position in positions:
            value = row[position]
            if value is None:
                continue  # NULLs never collide, as in standard SQL
            for rowid, existing in self._rows.items():
                if rowid == exclude_rowid:
                    continue
                if existing[position] == value:
                    column = self.schema.columns[position]
                    raise ConstraintError(
                        f"duplicate value {value!r} for unique column "
                        f"{self.schema.name}.{column.name}"
                    )

    def clear(self) -> List[Row]:
        """Delete every row, returning the removed rows."""
        removed = list(self._rows.values())
        self._rows.clear()
        return removed
