"""Heap table storage with stable row identifiers, stored column-wise.

The table keeps one Python list per column plus a parallel rowid list, so
scans hand the vectorized executor zero-copy-ish column slices instead of
row tuples.  The row-oriented API (``rows``/``get``/``insert``/``update``/
``delete``/``restore``) is preserved as a shim for the DML, constraint,
transaction-undo, and snapshot paths, which all think in rows.

Deletes tombstone their slot and the table compacts itself once the dead
fraction grows, so scan batches stay dense; the stable-rowid contract
(ids are never reused, deleted ids can be restored) is unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConstraintError
from repro.db.batch import BATCH_SIZE
from repro.db.schema import TableSchema
from repro.db.types import Value

Row = Tuple[Value, ...]

#: Compact once at least this many tombstones have accumulated *and* they
#: outnumber the live rows.  Small tables compact eagerly enough to stay
#: dense; large tables amortize the rebuild.
_COMPACT_MIN_DEAD = 64


class HeapTable:
    """A bag of rows keyed by monotonically increasing row ids.

    Row ids are never reused, which gives indexes and the update log a
    stable handle on rows across deletions.  Iteration order matches the
    previous dict-backed storage exactly: insertion order, with a restored
    row taking a fresh slot at the end.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._columns: List[List[Value]] = [[] for _ in schema.columns]
        self._rowids: List[int] = []
        self._live: List[bool] = []
        self._pos: Dict[int, int] = {}  # rowid -> physical slot
        self._dead = 0
        self._next_rowid = 1

    def __len__(self) -> int:
        return len(self._pos)

    # -- row-view shim --------------------------------------------------------

    def rows(self) -> Iterator[Tuple[int, Row]]:
        """Iterate (rowid, row) pairs in insertion order."""
        columns = self._columns
        live = self._live
        for slot, rowid in enumerate(self._rowids):
            if live[slot]:
                yield rowid, tuple(column[slot] for column in columns)

    def get(self, rowid: int) -> Optional[Row]:
        slot = self._pos.get(rowid)
        if slot is None:
            return None
        return tuple(column[slot] for column in self._columns)

    # -- columnar access ------------------------------------------------------

    def scan_batches(
        self,
        positions: Optional[Sequence[int]] = None,
        batch_size: int = BATCH_SIZE,
    ) -> Iterator[Tuple[List[int], List[List[Value]]]]:
        """Yield (rowids, columns) batches of live rows in insertion order.

        ``positions`` selects which schema columns to materialize — the
        projection-pushdown hook: unreferenced columns are never copied.
        When no rows are dead, batches are direct column slices.
        """
        if positions is None:
            positions = range(len(self._columns))
        wanted = [self._columns[position] for position in positions]
        total = len(self._rowids)
        if not self._dead:
            for start in range(0, total, batch_size):
                stop = min(start + batch_size, total)
                yield (
                    self._rowids[start:stop],
                    [column[start:stop] for column in wanted],
                )
            return
        live = self._live
        slots: List[int] = []
        for slot in range(total):
            if live[slot]:
                slots.append(slot)
                if len(slots) >= batch_size:
                    yield self._gather_slots(slots, wanted)
                    slots = []
        if slots:
            yield self._gather_slots(slots, wanted)

    def _gather_slots(
        self, slots: List[int], wanted: List[List[Value]]
    ) -> Tuple[List[int], List[List[Value]]]:
        rowids = self._rowids
        return (
            [rowids[slot] for slot in slots],
            [[column[slot] for slot in slots] for column in wanted],
        )

    def column_values(self, position: int) -> Iterator[Value]:
        """Live values of one column, in insertion order."""
        column = self._columns[position]
        live = self._live
        for slot in range(len(column)):
            if live[slot]:
                yield column[slot]

    # -- mutation -------------------------------------------------------------

    def insert(self, values: Sequence[Value]) -> Tuple[int, Row]:
        """Validate and store one row; returns (rowid, stored row)."""
        row = self.schema.validate_row(values)
        self._check_unique(row, exclude_rowid=None)
        rowid = self._next_rowid
        self._next_rowid += 1
        self._append(rowid, row)
        return rowid, row

    def delete(self, rowid: int) -> Row:
        """Remove and return the row with ``rowid``."""
        slot = self._pos.pop(rowid, None)
        if slot is None:
            raise ConstraintError(
                f"table {self.schema.name!r} has no row id {rowid}"
            )
        row = tuple(column[slot] for column in self._columns)
        self._live[slot] = False
        self._dead += 1
        self._maybe_compact()
        return row

    def restore(self, rowid: int, values: Sequence[Value]) -> Row:
        """Re-insert a previously deleted row under its original rowid.

        Used by transaction rollback: index entries reference rowids, so
        undoing a delete must bring the same identity back.
        """
        if rowid in self._pos:
            raise ConstraintError(
                f"table {self.schema.name!r} already has row id {rowid}"
            )
        row = self.schema.validate_row(values)
        self._append(rowid, row)
        return row

    def update(self, rowid: int, values: Sequence[Value]) -> Tuple[Row, Row]:
        """Replace the row with ``rowid``; returns (old row, new row)."""
        slot = self._pos.get(rowid)
        if slot is None:
            raise ConstraintError(
                f"table {self.schema.name!r} has no row id {rowid}"
            )
        new_row = self.schema.validate_row(values)
        self._check_unique(new_row, exclude_rowid=rowid)
        columns = self._columns
        old_row = tuple(column[slot] for column in columns)
        for column, value in zip(columns, new_row):
            column[slot] = value
        return old_row, new_row

    def clear(self) -> List[Row]:
        """Delete every row, returning the removed rows."""
        removed = [row for _rowid, row in self.rows()]
        for column in self._columns:
            column.clear()
        self._rowids.clear()
        self._live.clear()
        self._pos.clear()
        self._dead = 0
        return removed

    # -- internals ------------------------------------------------------------

    def _append(self, rowid: int, row: Row) -> None:
        slot = len(self._rowids)
        for column, value in zip(self._columns, row):
            column.append(value)
        self._rowids.append(rowid)
        self._live.append(True)
        self._pos[rowid] = slot

    def _maybe_compact(self) -> None:
        if self._dead < _COMPACT_MIN_DEAD or self._dead * 2 < len(self._rowids):
            return
        live = self._live
        keep = [slot for slot in range(len(self._rowids)) if live[slot]]
        self._columns = [[column[slot] for slot in keep] for column in self._columns]
        self._rowids = [self._rowids[slot] for slot in keep]
        self._live = [True] * len(keep)
        self._pos = {rowid: slot for slot, rowid in enumerate(self._rowids)}
        self._dead = 0

    def _check_unique(self, row: Row, exclude_rowid: Optional[int]) -> None:
        """Enforce PRIMARY KEY / UNIQUE column constraints.

        A linear column scan is acceptable here because unique columns are
        rare in the workloads and tables are modest; unique *indexes* (see
        :mod:`repro.db.index`) provide the fast path when declared.
        """
        positions = [
            index
            for index, column in enumerate(self.schema.columns)
            if column.primary_key or column.unique
        ]
        if not positions:
            return
        exclude_slot = (
            self._pos.get(exclude_rowid) if exclude_rowid is not None else None
        )
        live = self._live
        for position in positions:
            value = row[position]
            if value is None:
                continue  # NULLs never collide, as in standard SQL
            column = self._columns[position]
            for slot, existing in enumerate(column):
                if slot == exclude_slot or not live[slot]:
                    continue
                if existing == value:
                    spec = self.schema.columns[position]
                    raise ConstraintError(
                        f"duplicate value {value!r} for unique column "
                        f"{self.schema.name}.{spec.name}"
                    )
