"""Row-level triggers.

Triggers are one of the two *baseline* invalidation mechanisms the paper
argues against (§4, first paragraph): embedding update-sensitive triggers
in the DBMS that emit invalidation messages.  We implement them faithfully
so the benchmarks can quantify the trigger-management burden the paper
predicts.

A trigger fires synchronously inside the DML statement that caused it, so
its cost is charged to the database — exactly the property that makes the
approach expensive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.db.log import ChangeKind, UpdateRecord

TriggerCallback = Callable[[UpdateRecord], None]


@dataclass
class Trigger:
    """A registered trigger on one table and one event kind."""

    name: str
    table: str
    kind: ChangeKind
    callback: TriggerCallback
    fire_count: int = 0


class TriggerManager:
    """Registry and dispatcher for row-level triggers."""

    def __init__(self) -> None:
        self._triggers: Dict[str, List[Trigger]] = {}
        self._by_name: Dict[str, Trigger] = {}
        self.total_fires = 0

    def register(
        self, name: str, table: str, kind: ChangeKind, callback: TriggerCallback
    ) -> Trigger:
        """Register ``callback`` to run after each ``kind`` change to ``table``."""
        if name in self._by_name:
            raise ValueError(f"trigger {name!r} already registered")
        trigger = Trigger(name, table.lower(), kind, callback)
        self._triggers.setdefault(trigger.table, []).append(trigger)
        self._by_name[name] = trigger
        return trigger

    def unregister(self, name: str) -> None:
        trigger = self._by_name.pop(name, None)
        if trigger is None:
            return
        self._triggers[trigger.table].remove(trigger)

    def count_for(self, table: str) -> int:
        return len(self._triggers.get(table.lower(), []))

    def fire(self, record: UpdateRecord) -> int:
        """Dispatch one change record; returns the number of triggers fired."""
        fired = 0
        for trigger in self._triggers.get(record.table, ()):
            if trigger.kind is record.kind:
                trigger.callback(record)
                trigger.fire_count += 1
                fired += 1
        self.total_fires += fired
        return fired
