"""Subquery resolution: execute uncorrelated subqueries ahead of the plan.

The planner/executor pair operates on subquery-free expressions.  Before
planning, the engine runs this resolver over a SELECT: every
``EXISTS (…)``, ``IN (SELECT …)``, and scalar ``(SELECT …)`` whose inner
query references only its own tables (i.e. is *uncorrelated*) is executed
once and replaced by its value — a boolean literal, an IN-list of
literals, or a scalar literal.  Correlated subqueries are rejected with a
clear error; the paper's workloads do not need them and silently wrong
results would be worse than honesty.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.errors import ExecutionError
from repro.sql import ast
from repro.sql.analysis import alias_map


def contains_subquery(stmt: ast.Select) -> bool:
    """True when any expression in ``stmt`` embeds a subquery.

    Used by the engine's plan cache: subquery-free SELECTs plan
    deterministically from their text, so their plans are reusable.
    """
    return any(
        True
        for expr in ast._select_expressions(stmt)
        for _node in ast.subqueries(expr)
    )


class SubqueryResolver:
    """Rewrites one statement, executing its uncorrelated subqueries.

    Args:
        database: engine to run subqueries on (the same database).

    Attributes:
        rows_examined / index_probes: work done by subquery execution,
            added to the outer statement's accounting by the engine.
        subqueries_executed: how many subqueries actually ran.
    """

    def __init__(self, database) -> None:
        self.database = database
        self.rows_examined = 0
        self.index_probes = 0
        self.subqueries_executed = 0

    # -- entry point ------------------------------------------------------------

    def resolve_select(self, stmt: ast.Select) -> ast.Select:
        """Return ``stmt`` with every subquery replaced by its value."""
        if not self._contains_subquery(stmt):
            return stmt
        items = tuple(
            ast.SelectItem(self._rewrite(item.expr), item.alias)
            for item in stmt.items
        )
        where = self._rewrite(stmt.where) if stmt.where is not None else None
        having = self._rewrite(stmt.having) if stmt.having is not None else None
        group_by = tuple(self._rewrite(expr) for expr in stmt.group_by)
        order_by = tuple(
            ast.OrderItem(self._rewrite(item.expr), item.descending)
            for item in stmt.order_by
        )
        sources = tuple(self._rewrite_source(source) for source in stmt.sources)
        return ast.Select(
            items=items,
            sources=sources,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=stmt.limit,
            offset=stmt.offset,
            distinct=stmt.distinct,
        )

    # -- internals ---------------------------------------------------------------

    _contains_subquery = staticmethod(contains_subquery)

    def _rewrite_source(self, source: ast.FromSource) -> ast.FromSource:
        if isinstance(source, (ast.TableRef, ast.ValuesSource)):
            return source
        on = self._rewrite(source.on) if source.on is not None else None
        return ast.Join(
            source.kind,
            self._rewrite_source(source.left),
            self._rewrite_source(source.right),
            on,
        )

    def _rewrite(self, node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.Exists):
            rows = self._run(node.query)
            return ast.Literal(bool(rows) != node.negated)
        if isinstance(node, ast.InSelect):
            rows = self._run(node.query)
            items = tuple(ast.Literal(row[0]) for row in rows)
            return ast.InList(self._rewrite(node.expr), items, node.negated)
        if isinstance(node, ast.ScalarSubquery):
            rows = self._run(node.query)
            if len(rows) > 1:
                raise ExecutionError(
                    "scalar subquery returned more than one row"
                )
            value = rows[0][0] if rows else None
            return ast.Literal(value)
        if isinstance(node, ast.Binary):
            return ast.Binary(node.op, self._rewrite(node.left), self._rewrite(node.right))
        if isinstance(node, ast.Unary):
            return ast.Unary(node.op, self._rewrite(node.operand))
        if isinstance(node, ast.Between):
            return ast.Between(
                self._rewrite(node.expr),
                self._rewrite(node.low),
                self._rewrite(node.high),
                node.negated,
            )
        if isinstance(node, ast.InList):
            return ast.InList(
                self._rewrite(node.expr),
                tuple(self._rewrite(item) for item in node.items),
                node.negated,
            )
        if isinstance(node, ast.IsNull):
            return ast.IsNull(self._rewrite(node.expr), node.negated)
        if isinstance(node, ast.FunctionCall):
            return ast.FunctionCall(
                node.name,
                tuple(self._rewrite(arg) for arg in node.args),
                node.distinct,
            )
        if isinstance(node, ast.Case):
            whens = tuple(
                (self._rewrite(cond), self._rewrite(value))
                for cond, value in node.whens
            )
            default = (
                self._rewrite(node.default) if node.default is not None else None
            )
            return ast.Case(whens, default)
        return node

    def _run(self, query: ast.Select) -> List[Tuple]:
        # Inner subqueries first (innermost-out evaluation).
        resolved = self.resolve_select(query)
        self._reject_correlated(resolved)
        result = self.database.execute(resolved)
        self.subqueries_executed += 1
        self.rows_examined += result.rows_examined
        self.index_probes += result.index_probes
        return result.rows

    def _reject_correlated(self, query: ast.Select) -> None:
        """Raise for column references the subquery cannot resolve itself."""
        aliases = alias_map(query)
        own_columns: Set[str] = set()
        for table in set(aliases.values()):
            if self.database.has_table(table):
                own_columns |= {
                    column.lower_name
                    for column in self.database.schema(table).columns
                }
        for expr in ast._select_expressions(query):
            for node in ast.walk(expr):
                if not isinstance(node, ast.ColumnRef):
                    continue
                table = node.table.lower() if node.table else None
                if table is not None and table not in aliases:
                    raise ExecutionError(
                        f"correlated subqueries are not supported "
                        f"(outer reference {node.table}.{node.column})"
                    )
                if table is None and node.column.lower() not in own_columns:
                    raise ExecutionError(
                        f"correlated subqueries are not supported "
                        f"(unresolvable column {node.column!r})"
                    )
