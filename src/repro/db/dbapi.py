"""PEP-249-flavoured driver interface — the reproduction's "JDBC".

Application servlets never touch :class:`~repro.db.engine.Database`
directly; they open a :class:`Connection` through :func:`connect` (or
through a connection pool, see :class:`ConnectionPool`) and run statements
on a :class:`Cursor`.  This indirection is what makes the sniffer's
query-logger wrapper (:mod:`repro.db.wrapper`) non-invasive: it slots in
as just another driver.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import InterfaceError, PoolExhausted
from repro.db.engine import Database, StatementResult
from repro.db.types import Value

Row = Tuple[Value, ...]


class Cursor:
    """Statement execution handle, PEP-249 style."""

    def __init__(self, connection: "Connection") -> None:
        self._connection = connection
        self._result: Optional[StatementResult] = None
        self._fetch_position = 0
        self._closed = False
        self.arraysize = 1

    # -- properties -----------------------------------------------------------

    @property
    def description(self) -> Optional[List[Tuple[str, None, None, None, None, None, None]]]:
        """Column metadata of the last SELECT, or None."""
        if self._result is None or not self._result.columns:
            return None
        return [(name, None, None, None, None, None, None) for name in self._result.columns]

    @property
    def rowcount(self) -> int:
        if self._result is None:
            return -1
        return self._result.rowcount

    @property
    def last_result(self) -> Optional[StatementResult]:
        """The full engine result, including work counters (extension)."""
        return self._result

    # -- execution --------------------------------------------------------------

    def execute(self, sql: str, params: Optional[Sequence[Value]] = None) -> "Cursor":
        self._check_open()
        self._result = self._connection._run(sql, params)
        self._fetch_position = 0
        return self

    def executemany(
        self, sql: str, param_sets: Sequence[Sequence[Value]]
    ) -> "Cursor":
        self._check_open()
        for params in param_sets:
            self.execute(sql, params)
        return self

    # -- fetching ----------------------------------------------------------------

    def fetchone(self) -> Optional[Row]:
        rows = self._rows()
        if self._fetch_position >= len(rows):
            return None
        row = rows[self._fetch_position]
        self._fetch_position += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[Row]:
        rows = self._rows()
        count = size if size is not None else self.arraysize
        chunk = rows[self._fetch_position : self._fetch_position + count]
        self._fetch_position += len(chunk)
        return chunk

    def fetchall(self) -> List[Row]:
        rows = self._rows()
        chunk = rows[self._fetch_position :]
        self._fetch_position = len(rows)
        return chunk

    def __iter__(self):
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        self._result = None

    def _rows(self) -> List[Row]:
        self._check_open()
        if self._result is None:
            raise InterfaceError("no statement has been executed on this cursor")
        return self._result.rows

    def _check_open(self) -> None:
        if self._closed or self._connection.closed:
            raise InterfaceError("cursor is closed")


class Connection:
    """A session against one database, possibly via a wrapping driver."""

    def __init__(self, database: Database, driver: Optional["Driver"] = None) -> None:
        self._database = database
        self._driver = driver
        self.closed = False

    def cursor(self) -> Cursor:
        if self.closed:
            raise InterfaceError("connection is closed")
        return Cursor(self)

    def execute(self, sql: str, params: Optional[Sequence[Value]] = None) -> Cursor:
        """Shortcut: open a cursor and execute on it."""
        return self.cursor().execute(sql, params)

    def close(self) -> None:
        self.closed = True

    def begin(self) -> None:
        """Open a transaction on the underlying database."""
        self._database.begin()

    def commit(self) -> None:
        """Publish the open transaction; a no-op in auto-commit mode."""
        self._database.commit()

    def rollback(self) -> None:
        """Undo the open transaction.

        Raises:
            InterfaceError: when no transaction is open (the engine
                auto-commits individual statements).
        """
        if not self._database.in_transaction:
            raise InterfaceError("no open transaction to roll back")
        self._database.rollback()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _run(self, sql: str, params: Optional[Sequence[Value]]) -> StatementResult:
        if self.closed:
            raise InterfaceError("connection is closed")
        if self._driver is not None:
            return self._driver.run(self._database, sql, params)
        return self._database.execute(sql, params)


class Driver:
    """Extension point for drivers that intercept statement execution.

    The base driver executes directly; :class:`repro.db.wrapper.LoggingDriver`
    overrides :meth:`run` to record queries first.
    """

    def run(
        self, database: Database, sql: str, params: Optional[Sequence[Value]]
    ) -> StatementResult:
        return database.execute(sql, params)


#: Registry of named drivers, addressed via connect() URLs.
_DRIVERS: Dict[str, Driver] = {"native": Driver()}


def register_driver(name: str, driver: Driver) -> None:
    """Make ``driver`` addressable as ``repro:<name>:`` in connect URLs."""
    _DRIVERS[name] = driver


def connect(database: Database, url: str = "repro:native:") -> Connection:
    """Open a connection to ``database``.

    The URL selects the driver, mirroring JDBC's
    ``jdbc:weblogic:oracle``-style chaining: ``repro:<driver>:``.  The
    CachePortal deployment passes ``repro:cacheportal:`` after registering
    its logging wrapper, leaving application code untouched.
    """
    parts = url.split(":")
    if len(parts) < 2 or parts[0] != "repro":
        raise InterfaceError(f"malformed database URL {url!r}")
    driver_name = parts[1] or "native"
    driver = _DRIVERS.get(driver_name)
    if driver is None:
        raise InterfaceError(f"no driver registered under {driver_name!r}")
    return Connection(database, driver)


class ConnectionPool:
    """A named group of identical connections (BEA-style JDBC pool).

    The pool exists for fidelity with the paper's description of how
    servlets reach the database, and it is the back-pressure point of the
    async serving front end: the pool is **bounded** at ``max_size``
    connections (defaulting to ``size``), and an :meth:`acquire` that
    finds every connection loaned out blocks — up to ``acquire_timeout``
    seconds — for a release before raising
    :class:`~repro.errors.PoolExhausted`.  An unbounded pool would let a
    miss storm translate straight into unbounded database concurrency;
    bounding it here keeps overload visible as queueing (surfaced through
    ``acquire_waits`` / ``acquire_timeouts``) instead of silent growth.

    Thread safety: all public methods may be called from any thread; the
    pool serializes its book-keeping on an internal condition variable.
    """

    def __init__(
        self,
        name: str,
        database: Database,
        size: int = 4,
        url: str = "repro:native:",
        max_size: Optional[int] = None,
        acquire_timeout: Optional[float] = 5.0,
    ) -> None:
        if size < 1:
            raise InterfaceError("pool size must be positive")
        if max_size is not None and max_size < size:
            raise InterfaceError("pool max_size must be >= size")
        self.name = name
        self._database = database
        self._url = url
        self.max_size = max_size if max_size is not None else size
        self.acquire_timeout = acquire_timeout
        self._lock = threading.Condition()
        self._idle: List[Connection] = [connect(database, url) for _ in range(size)]
        self._loaned = 0
        self.acquisitions = 0
        #: Times an acquire found no idle connection and had to wait.
        self.acquire_waits = 0
        #: Times an acquire gave up waiting and raised PoolExhausted.
        self.acquire_timeouts = 0

    @property
    def size(self) -> int:
        with self._lock:
            return len(self._idle) + self._loaned

    @property
    def in_use(self) -> int:
        """Connections currently loaned out to callers."""
        with self._lock:
            return self._loaned

    @property
    def idle(self) -> int:
        with self._lock:
            return len(self._idle)

    def stats(self) -> Dict[str, Any]:
        """Operational counters, surfaced through ``portal.status()``."""
        with self._lock:
            return {
                "size": len(self._idle) + self._loaned,
                "max_size": self.max_size,
                "in_use": self._loaned,
                "idle": len(self._idle),
                "acquisitions": self.acquisitions,
                "acquire_waits": self.acquire_waits,
                "acquire_timeouts": self.acquire_timeouts,
            }

    def acquire(self, timeout: Optional[float] = None) -> Connection:
        """Borrow a connection, waiting up to ``timeout`` seconds.

        Grows the pool up to ``max_size`` when every connection is loaned
        out; past that, blocks for a release.  ``timeout`` defaults to
        the pool's ``acquire_timeout``; ``None`` there means wait forever.

        Raises:
            PoolExhausted: no connection became available in time.
        """
        deadline_timeout = timeout if timeout is not None else self.acquire_timeout
        with self._lock:
            self.acquisitions += 1
            if not self._idle and self._loaned >= self.max_size:
                self.acquire_waits += 1
                if not self._lock.wait_for(
                    lambda: bool(self._idle) or self._loaned < self.max_size,
                    timeout=deadline_timeout,
                ):
                    self.acquire_timeouts += 1
                    raise PoolExhausted(
                        f"pool {self.name!r}: all {self.max_size} connections in "
                        f"use; none released within {deadline_timeout}s"
                    )
            if self._idle:
                connection = self._idle.pop()
            else:
                connection = connect(self._database, self._url)
            self._loaned += 1
            return connection

    def release(self, connection: Connection) -> None:
        if connection.closed:
            connection = connect(self._database, self._url)
        with self._lock:
            self._loaned = max(0, self._loaned - 1)
            self._idle.append(connection)
            self._lock.notify()

    def retarget(self, url: str) -> None:
        """Re-point every pooled connection at a different driver URL.

        Idle connections are closed and rebuilt against the new driver.
        Connections currently loaned out cannot be retargeted in place —
        silently abandoning them (the old ``set_driver_url`` behaviour)
        would leave callers running statements that bypass the new
        driver, so in-flight loans fail loudly instead.

        Raises:
            InterfaceError: when connections are still loaned out.
        """
        with self._lock:
            if self._loaned:
                raise InterfaceError(
                    f"pool {self.name!r}: cannot retarget with {self._loaned} "
                    f"connection(s) in flight; drain the pool first"
                )
            for connection in self._idle:
                connection.close()
            count = len(self._idle)
            self._url = url
            self._idle = [connect(self._database, url) for _ in range(count)]
