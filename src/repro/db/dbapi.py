"""PEP-249-flavoured driver interface — the reproduction's "JDBC".

Application servlets never touch :class:`~repro.db.engine.Database`
directly; they open a :class:`Connection` through :func:`connect` (or
through a connection pool, see :class:`ConnectionPool`) and run statements
on a :class:`Cursor`.  This indirection is what makes the sniffer's
query-logger wrapper (:mod:`repro.db.wrapper`) non-invasive: it slots in
as just another driver.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import InterfaceError
from repro.db.engine import Database, StatementResult
from repro.db.types import Value

Row = Tuple[Value, ...]


class Cursor:
    """Statement execution handle, PEP-249 style."""

    def __init__(self, connection: "Connection") -> None:
        self._connection = connection
        self._result: Optional[StatementResult] = None
        self._fetch_position = 0
        self._closed = False
        self.arraysize = 1

    # -- properties -----------------------------------------------------------

    @property
    def description(self) -> Optional[List[Tuple[str, None, None, None, None, None, None]]]:
        """Column metadata of the last SELECT, or None."""
        if self._result is None or not self._result.columns:
            return None
        return [(name, None, None, None, None, None, None) for name in self._result.columns]

    @property
    def rowcount(self) -> int:
        if self._result is None:
            return -1
        return self._result.rowcount

    @property
    def last_result(self) -> Optional[StatementResult]:
        """The full engine result, including work counters (extension)."""
        return self._result

    # -- execution --------------------------------------------------------------

    def execute(self, sql: str, params: Optional[Sequence[Value]] = None) -> "Cursor":
        self._check_open()
        self._result = self._connection._run(sql, params)
        self._fetch_position = 0
        return self

    def executemany(
        self, sql: str, param_sets: Sequence[Sequence[Value]]
    ) -> "Cursor":
        self._check_open()
        for params in param_sets:
            self.execute(sql, params)
        return self

    # -- fetching ----------------------------------------------------------------

    def fetchone(self) -> Optional[Row]:
        rows = self._rows()
        if self._fetch_position >= len(rows):
            return None
        row = rows[self._fetch_position]
        self._fetch_position += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[Row]:
        rows = self._rows()
        count = size if size is not None else self.arraysize
        chunk = rows[self._fetch_position : self._fetch_position + count]
        self._fetch_position += len(chunk)
        return chunk

    def fetchall(self) -> List[Row]:
        rows = self._rows()
        chunk = rows[self._fetch_position :]
        self._fetch_position = len(rows)
        return chunk

    def __iter__(self):
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        self._result = None

    def _rows(self) -> List[Row]:
        self._check_open()
        if self._result is None:
            raise InterfaceError("no statement has been executed on this cursor")
        return self._result.rows

    def _check_open(self) -> None:
        if self._closed or self._connection.closed:
            raise InterfaceError("cursor is closed")


class Connection:
    """A session against one database, possibly via a wrapping driver."""

    def __init__(self, database: Database, driver: Optional["Driver"] = None) -> None:
        self._database = database
        self._driver = driver
        self.closed = False

    def cursor(self) -> Cursor:
        if self.closed:
            raise InterfaceError("connection is closed")
        return Cursor(self)

    def execute(self, sql: str, params: Optional[Sequence[Value]] = None) -> Cursor:
        """Shortcut: open a cursor and execute on it."""
        return self.cursor().execute(sql, params)

    def close(self) -> None:
        self.closed = True

    def begin(self) -> None:
        """Open a transaction on the underlying database."""
        self._database.begin()

    def commit(self) -> None:
        """Publish the open transaction; a no-op in auto-commit mode."""
        self._database.commit()

    def rollback(self) -> None:
        """Undo the open transaction.

        Raises:
            InterfaceError: when no transaction is open (the engine
                auto-commits individual statements).
        """
        if not self._database.in_transaction:
            raise InterfaceError("no open transaction to roll back")
        self._database.rollback()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _run(self, sql: str, params: Optional[Sequence[Value]]) -> StatementResult:
        if self.closed:
            raise InterfaceError("connection is closed")
        if self._driver is not None:
            return self._driver.run(self._database, sql, params)
        return self._database.execute(sql, params)


class Driver:
    """Extension point for drivers that intercept statement execution.

    The base driver executes directly; :class:`repro.db.wrapper.LoggingDriver`
    overrides :meth:`run` to record queries first.
    """

    def run(
        self, database: Database, sql: str, params: Optional[Sequence[Value]]
    ) -> StatementResult:
        return database.execute(sql, params)


#: Registry of named drivers, addressed via connect() URLs.
_DRIVERS: Dict[str, Driver] = {"native": Driver()}


def register_driver(name: str, driver: Driver) -> None:
    """Make ``driver`` addressable as ``repro:<name>:`` in connect URLs."""
    _DRIVERS[name] = driver


def connect(database: Database, url: str = "repro:native:") -> Connection:
    """Open a connection to ``database``.

    The URL selects the driver, mirroring JDBC's
    ``jdbc:weblogic:oracle``-style chaining: ``repro:<driver>:``.  The
    CachePortal deployment passes ``repro:cacheportal:`` after registering
    its logging wrapper, leaving application code untouched.
    """
    parts = url.split(":")
    if len(parts) < 2 or parts[0] != "repro":
        raise InterfaceError(f"malformed database URL {url!r}")
    driver_name = parts[1] or "native"
    driver = _DRIVERS.get(driver_name)
    if driver is None:
        raise InterfaceError(f"no driver registered under {driver_name!r}")
    return Connection(database, driver)


class ConnectionPool:
    """A named group of identical connections (BEA-style JDBC pool).

    The pool exists mostly for fidelity with the paper's description of
    how servlets reach the database; it also gives the simulator a place
    to model connection-establishment cost.
    """

    def __init__(self, name: str, database: Database, size: int = 4,
                 url: str = "repro:native:") -> None:
        if size < 1:
            raise InterfaceError("pool size must be positive")
        self.name = name
        self._database = database
        self._url = url
        self._idle: List[Connection] = [connect(database, url) for _ in range(size)]
        self._loaned = 0
        self.acquisitions = 0

    @property
    def size(self) -> int:
        return len(self._idle) + self._loaned

    def acquire(self) -> Connection:
        """Borrow a connection; grows the pool when all are loaned out."""
        self.acquisitions += 1
        if self._idle:
            connection = self._idle.pop()
        else:
            connection = connect(self._database, self._url)
        self._loaned += 1
        return connection

    def release(self, connection: Connection) -> None:
        if connection.closed:
            connection = connect(self._database, self._url)
        self._loaned = max(0, self._loaned - 1)
        self._idle.append(connection)
