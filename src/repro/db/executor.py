"""Vectorized plan execution over column batches.

Each plan node executes to a ``(scope, list-of-ColumnBatch)`` pair: rows
move through the tree as column slices (:mod:`repro.db.batch`) and
predicates/projections run as compiled batch kernels
(:mod:`repro.db.vector`), so per-tuple interpreter dispatch is amortized
over ~1024 rows.  The public contract is unchanged from the
row-at-a-time executor this replaces (retained in
:mod:`repro.db.rowexec` as the semantic oracle): ``execute`` returns the
output scope plus materialized row tuples, and the
``rows_examined``/``index_probes`` counters on :class:`ExecutionContext`
reach exactly the same totals — charging is batch-granular
(``charge_rows(n)``) but the arithmetic per operator replicates the
reference executor's per-row charges, including the semi-join
first-match early-out and the hash join's charge-per-bucket-row.

Kernels compile lazily on the first non-empty batch so that statements
over empty inputs raise exactly what the reference executor raises:
nothing.  Compiled kernels are cached on the plan node (plan objects are
reused by the engine's plan cache and dropped with it on DDL).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ExecutionError
from repro.sql import ast
from repro.db import planner as plan
from repro.db.batch import ColumnBatch, batches_to_rows, from_rows
from repro.db.expr import Scope, evaluate
from repro.db.types import SortKey, Value
from repro.db.vector import compile_mask, compile_value

Row = Tuple[Value, ...]
Batches = List[ColumnBatch]

_EMPTY = Scope([])

#: Cap on materialized cross-product cells per chunk: nested-loop and
#: outer joins expand ``left-chunk × right`` pairs at once, so the chunk
#: height shrinks as the right side grows.
_CROSS_CHUNK = 8192


@dataclass
class ExecutionContext:
    """Per-statement execution state and work accounting."""

    database: "Database"  # noqa: F821 - circular typing with engine
    rows_examined: int = 0
    index_probes: int = 0

    def charge_rows(self, count: int = 1) -> None:
        self.rows_examined += count

    def charge_probe(self) -> None:
        self.index_probes += 1


def execute(node: plan.PlanNode, context: ExecutionContext) -> Tuple[Scope, List[Row]]:
    """Execute a plan tree, returning its output scope and materialized rows."""
    scope, batches = _execute(node, context)
    return scope, batches_to_rows(batches)


def _execute(node: plan.PlanNode, context: ExecutionContext) -> Tuple[Scope, Batches]:
    if isinstance(node, plan.TableScan):
        return _table_scan(node, context)
    if isinstance(node, plan.ValuesScan):
        return _values_scan(node, context)
    if isinstance(node, plan.IndexEqLookup):
        return _index_eq(node, context)
    if isinstance(node, plan.IndexInLookup):
        return _index_in(node, context)
    if isinstance(node, plan.IndexRangeScan):
        return _index_range(node, context)
    if isinstance(node, plan.Filter):
        return _filter(node, context)
    if isinstance(node, plan.NestedLoopJoin):
        return _nested_loop(node, context)
    if isinstance(node, plan.HashJoin):
        return _hash_join(node, context)
    if isinstance(node, plan.LeftOuterJoin):
        return _left_join(node, context)
    if isinstance(node, plan.SemiJoin):
        return _semi_join(node, context)
    if isinstance(node, plan.HashSemiJoin):
        return _hash_semi_join(node, context)
    if isinstance(node, plan.Project):
        return _project(node, context)
    if isinstance(node, plan.Aggregate):
        return _aggregate(node, context)
    if isinstance(node, plan.Sort):
        return _sort(node, context)
    if isinstance(node, plan.Distinct):
        return _distinct(node, context)
    if isinstance(node, plan.Limit):
        return _limit(node, context)
    raise ExecutionError(f"unknown plan node {type(node).__name__}")


# -- kernel plumbing ----------------------------------------------------------


class _LazyKernel:
    """Compile on first use.

    The reference executor resolves columns and folds constants only when
    a row actually reaches the expression, so zero-row executions must
    not raise; deferring compilation to the first non-empty batch keeps
    error behavior identical.
    """

    __slots__ = ("_build", "_fn")

    def __init__(self, build: Callable[[], Callable]) -> None:
        self._build = build
        self._fn: Optional[Callable] = None

    def __call__(self, cols, n):
        fn = self._fn
        if fn is None:
            fn = self._fn = self._build()
        return fn(cols, n)


def _cached(node: plan.PlanNode, attr: str, factory: Callable[[], object]):
    value = getattr(node, attr, None)
    if value is None:
        value = factory()
        setattr(node, attr, value)
    return value


def _mask_for(node: plan.PlanNode, attr: str, predicate: ast.Expr, scope: Scope):
    return _cached(
        node, attr, lambda: _LazyKernel(lambda: compile_mask(predicate, scope))
    )


def _value_for(node: plan.PlanNode, attr: str, expr: ast.Expr, scope: Scope):
    return _cached(
        node, attr, lambda: _LazyKernel(lambda: compile_value(expr, scope))
    )


def _materialize(batches: Batches, width: int) -> Tuple[List[List[Value]], int]:
    """Concatenate a batch list into full columns plus a row count."""
    cols: List[List[Value]] = [[] for _ in range(width)]
    total = 0
    for batch in batches:
        total += batch.length
        for out_col, col in zip(cols, batch.columns):
            out_col.extend(col)
    return cols, total


def _chunks(batch: ColumnBatch, chunk_rows: int):
    if batch.length <= chunk_rows:
        yield batch
        return
    for start in range(0, batch.length, chunk_rows):
        stop = min(start + chunk_rows, batch.length)
        yield ColumnBatch(
            [col[start:stop] for col in batch.columns], stop - start
        )


def _cross_columns(
    left_cols: List[List[Value]], lcount: int, right_cols: List[List[Value]], r: int
) -> List[List[Value]]:
    """Columns of the cross product, pairs ordered (l0,r0), (l0,r1), …"""
    expanded = [[v for v in col for _ in range(r)] for col in left_cols]
    tiled = [col * lcount for col in right_cols]
    return expanded + tiled


# -- leaf access paths -------------------------------------------------------


def _scan_scope(node, table) -> Tuple[Scope, Optional[List[int]], int]:
    """Scope + schema positions for a (possibly projected) base-table scan."""
    if node.columns is None:
        names = table.schema.column_names
        return Scope([(node.binding, names)]), None, len(names)
    positions = [table.schema.position(name) for name in node.columns]
    return Scope([(node.binding, list(node.columns))]), positions, len(node.columns)


def _table_scan(node: plan.TableScan, context: ExecutionContext) -> Tuple[Scope, Batches]:
    if not node.table:
        # Source-less SELECT: one zero-width row.
        return Scope([]), [ColumnBatch([], 1)]
    table = context.database.heap(node.table)
    scope, positions, _width = _scan_scope(node, table)
    batches: Batches = []
    for rowids, cols in table.scan_batches(positions):
        context.charge_rows(len(rowids))
        batches.append(ColumnBatch(cols, len(rowids), rowids))
    return scope, batches


def _values_scan(node: plan.ValuesScan, context: ExecutionContext) -> Tuple[Scope, Batches]:
    scope = Scope([(node.binding, list(node.columns))])
    context.charge_rows(len(node.rows))
    rows = [
        tuple(evaluate(value, (), _EMPTY) for value in row) for row in node.rows
    ]
    if not rows:
        return scope, []
    return scope, [from_rows(rows, len(node.columns))]


def _rows_by_id(table, rowids, positions, width: int) -> Batches:
    rows = []
    for rowid in rowids:
        row = table.get(rowid)
        if row is None:
            continue
        rows.append(row if positions is None else tuple(row[p] for p in positions))
    if not rows:
        return []
    return [from_rows(rows, width)]


def _index_eq(node: plan.IndexEqLookup, context: ExecutionContext) -> Tuple[Scope, Batches]:
    database = context.database
    table = database.heap(node.table)
    scope, positions, width = _scan_scope(node, table)
    index = database.index(node.index_name)
    value = evaluate(node.value, (), _EMPTY)
    context.charge_probe()
    rowids = sorted(index.lookup((value,)))
    context.charge_rows(len(rowids))
    return scope, _rows_by_id(table, rowids, positions, width)


def _index_in(node: plan.IndexInLookup, context: ExecutionContext) -> Tuple[Scope, Batches]:
    database = context.database
    table = database.heap(node.table)
    scope, positions, width = _scan_scope(node, table)
    index = database.index(node.index_name)
    distinct: List[Value] = []
    seen: set = set()
    for value_expr in node.values:
        value = evaluate(value_expr, (), _EMPTY)
        if value is None:  # IN never matches NULL list entries
            continue
        if value in seen:
            continue
        seen.add(value)
        distinct.append(value)
        context.charge_probe()
    ordered = sorted(index.lookup_many(distinct))
    context.charge_rows(len(ordered))
    return scope, _rows_by_id(table, ordered, positions, width)


def _index_range(node: plan.IndexRangeScan, context: ExecutionContext) -> Tuple[Scope, Batches]:
    database = context.database
    table = database.heap(node.table)
    scope, positions, width = _scan_scope(node, table)
    index = database.index(node.index_name)
    low = evaluate(node.low, (), _EMPTY) if node.low is not None else None
    high = evaluate(node.high, (), _EMPTY) if node.high is not None else None
    context.charge_probe()
    rowids = sorted(
        index.range_lookup(low=low, high=high, low_open=node.low_open, high_open=node.high_open)
    )
    context.charge_rows(len(rowids))
    return scope, _rows_by_id(table, rowids, positions, width)


# -- relational operators ----------------------------------------------------


def _filter(node: plan.Filter, context: ExecutionContext) -> Tuple[Scope, Batches]:
    scope, batches = _execute(node.child, context)
    mask_fn = _mask_for(node, "_vec_predicate", node.predicate, scope)
    out: Batches = []
    for batch in batches:
        if not batch.length:
            continue
        filtered = batch.filter(mask_fn(batch.columns, batch.length))
        if filtered.length:
            out.append(filtered)
    return scope, out


def _combined_scope(left: Scope, right: Scope) -> Scope:
    return Scope(
        [(binding, columns) for binding, columns in left.parts]
        + [(binding, columns) for binding, columns in right.parts]
    )


def _nested_loop(node: plan.NestedLoopJoin, context: ExecutionContext) -> Tuple[Scope, Batches]:
    left_scope, left_batches = _execute(node.left, context)
    right_scope, right_batches = _execute(node.right, context)
    scope = _combined_scope(left_scope, right_scope)
    rcols, r = _materialize(right_batches, right_scope.width)
    if r == 0:
        return scope, []
    mask_fn = None if node.on is None else _mask_for(node, "_vec_on", node.on, scope)
    chunk_rows = max(1, _CROSS_CHUNK // r)
    out: Batches = []
    for batch in left_batches:
        for chunk in _chunks(batch, chunk_rows):
            pairs = chunk.length * r
            context.charge_rows(pairs)
            combined = ColumnBatch(
                _cross_columns(chunk.columns, chunk.length, rcols, r), pairs
            )
            if mask_fn is not None:
                combined = combined.filter(mask_fn(combined.columns, pairs))
            if combined.length:
                out.append(combined)
    return scope, out


def _build_buckets(node, right_batches, right_scope, key_expr, attr):
    """Materialize the right side and bucket its row indices by join key."""
    right_key = _value_for(node, attr, key_expr, right_scope)
    rcols: List[List[Value]] = [[] for _ in range(right_scope.width)]
    buckets: Dict[Value, List[int]] = {}
    base = 0
    for batch in right_batches:
        if not batch.length:
            continue
        keys = right_key(batch.columns, batch.length)
        for out_col, col in zip(rcols, batch.columns):
            out_col.extend(col)
        setdefault = buckets.setdefault
        for i, key in enumerate(keys):
            if key is not None:  # NULL keys never join
                setdefault(key, []).append(base + i)
        base += batch.length
    # Unique join keys — every bucket a singleton — enable a flat-dict
    # probe that skips the per-row inner loop and list allocation.
    flat = None
    if all(len(bucket) == 1 for bucket in buckets.values()):
        flat = {key: bucket[0] for key, bucket in buckets.items()}
    return rcols, buckets, flat


def _probe_buckets(keys, flat):
    """Probe a unique-key build side with one batch of left keys.

    Returns (left indices, right indices, matched-pair count — the charge
    the row engine would accumulate one ``charge_rows(len(bucket))`` at a
    time, every bucket here being a singleton).
    """
    out_left: List[int] = []
    out_right: List[int] = []
    get = flat.get
    append_left = out_left.append
    append_right = out_right.append
    for i, key in enumerate(keys):
        j = get(key, -1)  # NULL keys are never bucketed, so miss here
        if j >= 0:
            append_left(i)
            append_right(j)
    return out_left, out_right, len(out_left)


def _hash_join(node: plan.HashJoin, context: ExecutionContext) -> Tuple[Scope, Batches]:
    left_scope, left_batches = _execute(node.left, context)
    right_scope, right_batches = _execute(node.right, context)
    scope = _combined_scope(left_scope, right_scope)
    rcols, buckets, flat = _build_buckets(
        node, right_batches, right_scope, node.right_key, "_vec_right_key"
    )
    left_key = _value_for(node, "_vec_left_key", node.left_key, left_scope)
    residual_fn = (
        None
        if node.residual is None
        else _mask_for(node, "_vec_residual", node.residual, scope)
    )
    out: Batches = []
    # Per-key gathered right segments, shared across left batches: left
    # rows with equal keys re-emit the same right rows, so the gather runs
    # once per distinct key and repeats via C-level list.extend.
    segments: Dict[Value, List[List[Value]]] = {}
    for batch in left_batches:
        if not batch.length:
            continue
        keys = left_key(batch.columns, batch.length)
        if flat is not None:
            out_left, out_right, charged = _probe_buckets(keys, flat)
            context.charge_rows(charged)
            if not out_left:
                continue
            lcols = [
                list(map(col.__getitem__, out_left)) for col in batch.columns
            ]
            rgath = [list(map(col.__getitem__, out_right)) for col in rcols]
            length = len(out_left)
        else:
            lcols = [[] for _ in batch.columns]
            rgath = [[] for _ in rcols]
            bucket_get = buckets.get
            segment_get = segments.get
            charged = 0
            length = 0
            for i, key in enumerate(keys):
                if key is None:
                    continue
                bucket = bucket_get(key)
                if not bucket:
                    continue
                matches = len(bucket)
                charged += matches
                length += matches
                segment = segment_get(key)
                if segment is None:
                    segment = segments[key] = [
                        list(map(col.__getitem__, bucket)) for col in rcols
                    ]
                for out_col, seg_col in zip(rgath, segment):
                    out_col.extend(seg_col)
                for out_col, col in zip(lcols, batch.columns):
                    out_col.extend([col[i]] * matches)
            context.charge_rows(charged)
            if not length:
                continue
        combined = ColumnBatch(lcols + rgath, length)
        if residual_fn is not None:
            combined = combined.filter(residual_fn(combined.columns, combined.length))
        if combined.length:
            out.append(combined)
    return scope, out


def _semi_join(node: plan.SemiJoin, context: ExecutionContext) -> Tuple[Scope, Batches]:
    left_scope, left_batches = _execute(node.left, context)
    right_scope, right_batches = _execute(node.right, context)
    combined_scope = _combined_scope(left_scope, right_scope)
    rcols, r = _materialize(right_batches, right_scope.width)
    if r == 0:
        return left_scope, []
    if node.on is None:
        # Any right row witnesses existence: one probed pair per left row.
        out = [batch for batch in left_batches if batch.length]
        for batch in out:
            context.charge_rows(batch.length)
        return left_scope, out
    mask_fn = _mask_for(node, "_vec_on", node.on, combined_scope)
    chunk_rows = max(1, _CROSS_CHUNK // r)
    out = []
    for batch in left_batches:
        for chunk in _chunks(batch, chunk_rows):
            pairs = chunk.length * r
            mask = mask_fn(
                _cross_columns(chunk.columns, chunk.length, rcols, r), pairs
            )
            keep: List[int] = []
            charged = 0
            for i in range(chunk.length):
                base = i * r
                hit = -1
                for j in range(r):
                    if mask[base + j]:
                        hit = j
                        break
                if hit >= 0:
                    charged += hit + 1  # pairs probed up to the first match
                    keep.append(i)
                else:
                    charged += r
            context.charge_rows(charged)
            if keep:
                out.append(chunk.take(keep))
    return left_scope, out


def _hash_semi_join(node: plan.HashSemiJoin, context: ExecutionContext) -> Tuple[Scope, Batches]:
    left_scope, left_batches = _execute(node.left, context)
    right_scope, right_batches = _execute(node.right, context)
    combined_scope = _combined_scope(left_scope, right_scope)
    rcols, buckets, _flat = _build_buckets(
        node, right_batches, right_scope, node.right_key, "_vec_right_key"
    )
    left_key = _value_for(node, "_vec_left_key", node.left_key, left_scope)
    residual_fn = (
        None
        if node.residual is None
        else _mask_for(node, "_vec_residual", node.residual, combined_scope)
    )
    out: Batches = []
    for batch in left_batches:
        if not batch.length:
            continue
        keys = left_key(batch.columns, batch.length)
        keep: List[int] = []
        charged = 0
        if residual_fn is None:
            for i, key in enumerate(keys):
                if key is None:
                    continue
                if buckets.get(key):
                    charged += 1  # first bucket row witnesses existence
                    keep.append(i)
        else:
            spans: List[Tuple[int, int]] = []  # (left row, bucket size)
            pair_left: List[int] = []
            pair_right: List[int] = []
            for i, key in enumerate(keys):
                if key is None:
                    continue
                bucket = buckets.get(key)
                if not bucket:
                    continue
                spans.append((i, len(bucket)))
                pair_left.extend([i] * len(bucket))
                pair_right.extend(bucket)
            if pair_left:
                lcols = [list(map(col.__getitem__, pair_left)) for col in batch.columns]
                rgath = [list(map(col.__getitem__, pair_right)) for col in rcols]
                mask = residual_fn(lcols + rgath, len(pair_left))
                position = 0
                for i, size in spans:
                    hit = -1
                    for j in range(size):
                        if mask[position + j]:
                            hit = j
                            break
                    if hit >= 0:
                        charged += hit + 1
                        keep.append(i)
                    else:
                        charged += size
                    position += size
        context.charge_rows(charged)
        if keep:
            out.append(batch.take(keep))
    return left_scope, out


def _left_join(node: plan.LeftOuterJoin, context: ExecutionContext) -> Tuple[Scope, Batches]:
    left_scope, left_batches = _execute(node.left, context)
    right_scope, right_batches = _execute(node.right, context)
    scope = _combined_scope(left_scope, right_scope)
    rcols, r = _materialize(right_batches, right_scope.width)
    rwidth = right_scope.width
    out: Batches = []
    if r == 0:
        for batch in left_batches:
            if not batch.length:
                continue
            out.append(
                ColumnBatch(
                    list(batch.columns) + [[None] * batch.length for _ in range(rwidth)],
                    batch.length,
                )
            )
        return scope, out
    mask_fn = None if node.on is None else _mask_for(node, "_vec_on", node.on, scope)
    chunk_rows = max(1, _CROSS_CHUNK // r)
    for batch in left_batches:
        for chunk in _chunks(batch, chunk_rows):
            pairs = chunk.length * r
            context.charge_rows(pairs)
            if mask_fn is None:
                mask = None
            else:
                mask = mask_fn(
                    _cross_columns(chunk.columns, chunk.length, rcols, r), pairs
                )
            left_idx: List[int] = []
            right_idx: List[Optional[int]] = []  # None -> NULL-padded right
            for i in range(chunk.length):
                base = i * r
                matched = False
                for j in range(r):
                    if mask is None or mask[base + j]:
                        left_idx.append(i)
                        right_idx.append(j)
                        matched = True
                if not matched:
                    left_idx.append(i)
                    right_idx.append(None)
            lcols = [list(map(col.__getitem__, left_idx)) for col in chunk.columns]
            rout = [
                [col[j] if j is not None else None for j in right_idx] for col in rcols
            ]
            out.append(ColumnBatch(lcols + rout, len(left_idx)))
    return scope, out


# -- projection ---------------------------------------------------------------


def _project(node: plan.Project, context: ExecutionContext) -> Tuple[Scope, Batches]:
    child_scope, child_batches = _execute(node.child, context)
    labels, entries = _cached(
        node, "_vec_projection", lambda: _build_vec_projection(node.items, child_scope)
    )
    out_scope = Scope([("", labels)])
    out: Batches = []
    for batch in child_batches:
        if not batch.length:
            continue
        cols: List[List[Value]] = []
        for kind, payload in entries:
            if kind == "offset":
                cols.append(batch.columns[payload])
            else:
                cols.append(payload(batch.columns, batch.length))
        out.append(ColumnBatch(cols, batch.length))
    return out_scope, out


def _build_vec_projection(items: Tuple[ast.SelectItem, ...], scope: Scope):
    """Labels plus per-item column producers (offset passthrough or kernel).

    Star offsets resolve eagerly — the reference executor resolves them
    before pulling any rows, so e.g. ``SELECT missing.* …`` errors even
    on empty inputs.  Expression kernels stay lazy.
    """
    labels: List[str] = []
    entries: List[Tuple[str, object]] = []
    child_labels = scope.column_labels()
    for item in items:
        if isinstance(item.expr, ast.Star):
            for offset in scope.star_offsets(item.expr.table):
                labels.append(child_labels[offset].split(".", 1)[-1])
                entries.append(("offset", offset))
        else:
            labels.append(item.alias or _default_label(item.expr))
            entries.append(
                (
                    "expr",
                    _LazyKernel(
                        lambda e=item.expr, s=scope: compile_value(e, s)
                    ),
                )
            )
    return labels, entries


def _default_label(expr: ast.Expr) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.column.lower()
    from repro.sql.printer import to_sql

    return to_sql(expr)


# -- aggregation --------------------------------------------------------------


class _AggState:
    """Accumulator for one aggregate call within one group."""

    def __init__(self, call: ast.FunctionCall) -> None:
        self.call = call
        self.count = 0
        self.total: Value = None
        self.minimum: Value = None
        self.maximum: Value = None
        self.distinct_seen = set() if call.distinct else None

    def add(self, value: Value) -> None:
        if isinstance(self.call.args[0], ast.Star):
            self.count += 1
            return
        if value is None:
            return
        if self.distinct_seen is not None:
            if value in self.distinct_seen:
                return
            self.distinct_seen.add(value)
        self.count += 1
        if self.call.name in ("SUM", "AVG"):
            self.total = value if self.total is None else self.total + value
        if self.call.name == "MIN":
            if self.minimum is None or SortKey(value) < SortKey(self.minimum):
                self.minimum = value
        if self.call.name == "MAX":
            if self.maximum is None or SortKey(self.maximum) < SortKey(value):
                self.maximum = value

    def result(self) -> Value:
        name = self.call.name
        if name == "COUNT":
            return self.count
        if name == "SUM":
            return self.total
        if name == "AVG":
            if self.count == 0:
                return None
            return self.total / self.count
        if name == "MIN":
            return self.minimum
        return self.maximum  # MAX


def _collect_aggregates(items: Tuple[ast.SelectItem, ...], having: Optional[ast.Expr]):
    calls: List[ast.FunctionCall] = []
    seen = set()
    sources: List[Optional[ast.Expr]] = [item.expr for item in items]
    if having is not None:
        sources.append(having)
    for source in sources:
        for sub in ast.walk(source):
            if isinstance(sub, ast.FunctionCall) and sub.is_aggregate and sub not in seen:
                seen.add(sub)
                calls.append(sub)
    return calls


def _aggregate(node: plan.Aggregate, context: ExecutionContext) -> Tuple[Scope, Batches]:
    child_scope, child_batches = _execute(node.child, context)
    calls = _collect_aggregates(node.items, node.having)
    group_kernels, arg_kernels = _cached(
        node,
        "_vec_agg_kernels",
        lambda: (
            [
                _LazyKernel(lambda e=expr, s=child_scope: compile_value(e, s))
                for expr in node.group_by
            ],
            [
                None
                if isinstance(call.args[0], ast.Star)
                else _LazyKernel(
                    lambda e=call.args[0], s=child_scope: compile_value(e, s)
                )
                for call in calls
            ],
        ),
    )

    groups: Dict[Tuple, List[_AggState]] = {}
    group_samples: Dict[Tuple, Row] = {}
    saw_rows = False
    for batch in child_batches:
        n = batch.length
        if not n:
            continue
        saw_rows = True
        key_cols = [kernel(batch.columns, n) for kernel in group_kernels]
        val_cols = [
            None if kernel is None else kernel(batch.columns, n)
            for kernel in arg_kernels
        ]
        bcols = batch.columns
        for i in range(n):
            key = tuple(col[i] for col in key_cols)
            states = groups.get(key)
            if states is None:
                states = groups[key] = [_AggState(call) for call in calls]
                group_samples[key] = tuple(col[i] for col in bcols)
            for state, col in zip(states, val_cols):
                state.add(None if col is None else col[i])

    if not node.group_by and not saw_rows:
        # Global aggregate over an empty input still yields one row.
        groups[()] = [_AggState(call) for call in calls]
        group_samples[()] = (None,) * child_scope.width

    labels = [item.alias or _default_label(item.expr) for item in node.items]
    out_scope = Scope([("", labels)])

    # Per-group output and HAVING go through the scalar evaluator against
    # a sample row — same code path as the reference executor.
    out_rows: List[Row] = []
    for key, states in groups.items():
        sample = group_samples[key]
        computed: Dict[ast.Expr, Value] = {}
        for state in states:
            computed[state.call] = state.result()
        for group_expr, group_value in zip(node.group_by, key):
            computed[group_expr] = group_value
        if node.having is not None:
            verdict = evaluate(node.having, sample, child_scope, computed)
            if verdict is not True:
                continue
        out_rows.append(
            tuple(
                evaluate(item.expr, sample, child_scope, computed)
                for item in node.items
            )
        )
    if not out_rows:
        return out_scope, []
    return out_scope, [from_rows(out_rows, len(labels))]


# -- ordering and limits -------------------------------------------------------


def _sort(node: plan.Sort, context: ExecutionContext) -> Tuple[Scope, Batches]:
    scope, batches = _execute(node.child, context)
    cols, n = _materialize(batches, scope.width)
    if n == 0:
        return scope, []
    kernels = _cached(
        node,
        "_vec_sort_keys",
        lambda: [
            _LazyKernel(lambda e=item.expr, s=scope: compile_value(e, s))
            for item in node.keys
        ],
    )
    key_cols = [kernel(cols, n) for kernel in kernels]
    descending = [item.descending for item in node.keys]

    def sort_key(i: int):
        return [
            _Directional(SortKey(col[i]), desc)
            for col, desc in zip(key_cols, descending)
        ]

    order = sorted(range(n), key=sort_key)
    return scope, [ColumnBatch([list(map(col.__getitem__, order)) for col in cols], n)]


class _Directional:
    """Wraps a SortKey to invert its order for DESC keys."""

    __slots__ = ("key", "descending")

    def __init__(self, key: SortKey, descending: bool) -> None:
        self.key = key
        self.descending = descending

    def __lt__(self, other: "_Directional") -> bool:
        if self.descending:
            return other.key < self.key
        return self.key < other.key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _Directional):
            return NotImplemented
        return self.key == other.key


def _distinct(node: plan.Distinct, context: ExecutionContext) -> Tuple[Scope, Batches]:
    scope, batches = _execute(node.child, context)
    seen = set()
    out_rows: List[Row] = []
    for batch in batches:
        for row in batch.rows():
            if row not in seen:
                seen.add(row)
                out_rows.append(row)
    if not out_rows:
        return scope, []
    return scope, [from_rows(out_rows, scope.width)]


def _limit(node: plan.Limit, context: ExecutionContext) -> Tuple[Scope, Batches]:
    scope, batches = _execute(node.child, context)
    rows = batches_to_rows(batches)
    offset = node.offset or 0
    if node.limit is None:
        sliced = rows[offset:]
    else:
        sliced = rows[offset : offset + node.limit]
    if not sliced:
        return scope, []
    return scope, [from_rows(sliced, scope.width)]
