"""Expression evaluation over executor rows.

The executor represents an intermediate row as a flat tuple of values and a
:class:`Scope` describing which (binding, column) pair lives at which
offset.  ``evaluate`` walks an AST expression against such a row using SQL
three-valued logic: comparisons involving NULL yield NULL, and a WHERE
clause passes a row only when its predicate evaluates to exactly TRUE.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CatalogError, ExecutionError
from repro.sql import ast
from repro.db.types import Value, like_match, sql_compare, sql_equal


class Scope:
    """Column-name resolution for a flat executor row.

    A scope is built from an ordered list of (binding, column_names)
    pairs.  Offsets are assigned left to right, so a combined row for
    ``car, mileage`` is ``car's columns ++ mileage's columns``.
    """

    def __init__(self, parts: Sequence[Tuple[str, Sequence[str]]]) -> None:
        self.parts = [
            (binding.lower(), [column.lower() for column in columns])
            for binding, columns in parts
        ]
        self._qualified: Dict[Tuple[str, str], int] = {}
        self._unqualified: Dict[str, List[int]] = {}
        offset = 0
        for binding, columns in self.parts:
            for column in columns:
                self._qualified[(binding, column)] = offset
                self._unqualified.setdefault(column, []).append(offset)
                offset += 1
        self.width = offset

    def resolve(self, table: Optional[str], column: str) -> int:
        """Offset of ``table.column`` (or bare ``column``) in the row."""
        column = column.lower()
        if table is not None:
            key = (table.lower(), column)
            if key not in self._qualified:
                raise CatalogError(f"unknown column {table}.{column}")
            return self._qualified[key]
        offsets = self._unqualified.get(column)
        if not offsets:
            raise CatalogError(f"unknown column {column!r}")
        if len(offsets) > 1:
            raise CatalogError(f"ambiguous column {column!r}")
        return offsets[0]

    def star_offsets(self, table: Optional[str] = None) -> List[int]:
        """Offsets covered by ``*`` or ``table.*``."""
        if table is None:
            return list(range(self.width))
        table = table.lower()
        offsets: List[int] = []
        position = 0
        for binding, columns in self.parts:
            if binding == table:
                offsets.extend(range(position, position + len(columns)))
            position += len(columns)
        if not offsets:
            raise CatalogError(f"unknown table {table!r} in select list")
        return offsets

    def column_labels(self) -> List[str]:
        """Qualified labels for every offset, e.g. ``['car.maker', ...]``."""
        labels: List[str] = []
        for binding, columns in self.parts:
            labels.extend(f"{binding}.{column}" for column in columns)
        return labels


_SCALAR_FUNCTIONS = {
    "LENGTH": lambda args: None if args[0] is None else len(str(args[0])),
    "UPPER": lambda args: None if args[0] is None else str(args[0]).upper(),
    "LOWER": lambda args: None if args[0] is None else str(args[0]).lower(),
    "ABS": lambda args: None if args[0] is None else abs(args[0]),
    "COALESCE": lambda args: next((a for a in args if a is not None), None),
}

#: Functions whose value depends on *when* the statement runs, not on the
#: row.  They only evaluate inside an :func:`execution_context` — which
#: ``Database.execute`` establishes around statement dispatch — so any
#: context-free evaluation (notably the invalidator's static independence
#: check re-evaluating WHERE conjuncts against an update tuple) raises and
#: the caller must fall back to a conservative verdict.
NONDETERMINISTIC_FUNCTIONS = frozenset(
    {"NOW", "CURRENT_TIMESTAMP", "RAND", "RANDOM"}
)


class _ExecState(threading.local):
    """Per-thread statement-execution context (``None`` outside execute)."""

    def __init__(self) -> None:
        self.now: Optional[Value] = None
        self.rand: Optional[Callable[[], float]] = None
        self.active: bool = False
        self.params: Optional[Tuple[Value, ...]] = None


_EXEC_STATE = _ExecState()


@contextmanager
def execution_context(
    now: Value,
    rand: Callable[[], float],
    params: Optional[Tuple[Value, ...]] = None,
) -> Iterator[None]:
    """Make NOW()/RAND() evaluable for the duration of one statement.

    ``now`` is the engine's logical DML clock (the update log's last LSN),
    so repeated page generations between updates are deterministic; ``rand``
    draws from the database's seeded generator.  Contexts nest (polling
    queries issued while a cycle holds the outer context simply shadow it
    — including ``params``, so a nested parameter-free execute never sees
    the outer statement's bindings).

    ``params`` backs runtime resolution of ``$n`` placeholders when the
    engine executes a cached plan built from a numbered statement.
    """
    state = _EXEC_STATE
    previous = (state.now, state.rand, state.active, state.params)
    state.now, state.rand, state.active, state.params = now, rand, True, params
    try:
        yield
    finally:
        state.now, state.rand, state.active, state.params = previous


def _nondeterministic(name: str, args: Sequence[Value]) -> Value:
    if args:
        raise ExecutionError(f"{name} takes no arguments")
    state = _EXEC_STATE
    if not state.active:
        raise ExecutionError(
            f"non-deterministic function {name} evaluated outside "
            "statement execution"
        )
    if name in ("NOW", "CURRENT_TIMESTAMP"):
        return state.now
    assert state.rand is not None
    return state.rand()


def evaluate(
    expr: ast.Expr,
    row: Sequence[Value],
    scope: Scope,
    computed: Optional[Dict[ast.Expr, Value]] = None,
) -> Value:
    """Evaluate ``expr`` against one row.

    ``computed`` maps pre-computed sub-expressions (aggregates) to their
    values; it is consulted before structural evaluation so that HAVING
    and post-GROUP-BY select items can reference aggregate results.
    """
    if computed is not None and expr in computed:
        return computed[expr]
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        return row[scope.resolve(expr.table, expr.column)]
    if isinstance(expr, ast.Parameter):
        state = _EXEC_STATE
        if state.params is not None and expr.index is not None:
            if 1 <= expr.index <= len(state.params):
                return state.params[expr.index - 1]
            raise ExecutionError(
                f"parameter ${expr.index} has no binding "
                f"(got {len(state.params)} values)"
            )
        raise ExecutionError("unbound parameter reached the executor")
    if isinstance(expr, ast.Binary):
        return _binary(expr, row, scope, computed)
    if isinstance(expr, ast.Unary):
        return _unary(expr, row, scope, computed)
    if isinstance(expr, ast.Between):
        value = evaluate(expr.expr, row, scope, computed)
        low = evaluate(expr.low, row, scope, computed)
        high = evaluate(expr.high, row, scope, computed)
        low_cmp = sql_compare(value, low)
        high_cmp = sql_compare(value, high)
        if low_cmp is None or high_cmp is None:
            return None
        inside = low_cmp >= 0 and high_cmp <= 0
        return (not inside) if expr.negated else inside
    if isinstance(expr, ast.InList):
        return _in_list(expr, row, scope, computed)
    if isinstance(expr, ast.IsNull):
        value = evaluate(expr.expr, row, scope, computed)
        result = value is None
        return (not result) if expr.negated else result
    if isinstance(expr, ast.FunctionCall):
        if expr.is_aggregate:
            raise ExecutionError(
                f"aggregate {expr.name} outside GROUP BY evaluation"
            )
        if expr.name in NONDETERMINISTIC_FUNCTIONS:
            args = [evaluate(arg, row, scope, computed) for arg in expr.args]
            return _nondeterministic(expr.name, args)
        handler = _SCALAR_FUNCTIONS.get(expr.name)
        if handler is None:
            raise ExecutionError(f"unknown function {expr.name}")
        args = [evaluate(arg, row, scope, computed) for arg in expr.args]
        return handler(args)
    if isinstance(expr, ast.Case):
        for cond, value in expr.whens:
            if evaluate(cond, row, scope, computed) is True:
                return evaluate(value, row, scope, computed)
        if expr.default is not None:
            return evaluate(expr.default, row, scope, computed)
        return None
    if isinstance(expr, ast.Star):
        raise ExecutionError("'*' is only valid in a select list or COUNT(*)")
    raise ExecutionError(f"cannot evaluate expression {expr!r}")


def _binary(
    expr: ast.Binary,
    row: Sequence[Value],
    scope: Scope,
    computed: Optional[Dict[ast.Expr, Value]],
) -> Value:
    op = expr.op
    if op is ast.BinaryOp.AND:
        left = evaluate(expr.left, row, scope, computed)
        if left is False:
            return False
        right = evaluate(expr.right, row, scope, computed)
        if right is False:
            return False
        if left is None or right is None:
            return None
        return _truthy(left) and _truthy(right)
    if op is ast.BinaryOp.OR:
        left = evaluate(expr.left, row, scope, computed)
        if left is True or (left is not None and _truthy(left)):
            return True
        right = evaluate(expr.right, row, scope, computed)
        if right is True or (right is not None and _truthy(right)):
            return True
        if left is None or right is None:
            return None
        return False
    left = evaluate(expr.left, row, scope, computed)
    right = evaluate(expr.right, row, scope, computed)
    if op is ast.BinaryOp.LIKE:
        return like_match(left, right)
    if op in ast.COMPARISONS:
        cmp = sql_compare(left, right)
        if cmp is None:
            return None
        if op is ast.BinaryOp.EQ:
            return cmp == 0
        if op is ast.BinaryOp.NE:
            return cmp != 0
        if op is ast.BinaryOp.LT:
            return cmp < 0
        if op is ast.BinaryOp.LE:
            return cmp <= 0
        if op is ast.BinaryOp.GT:
            return cmp > 0
        return cmp >= 0  # GE
    if left is None or right is None:
        return None
    if op is ast.BinaryOp.CONCAT:
        return f"{left}{right}"
    try:
        if op is ast.BinaryOp.ADD:
            return left + right
        if op is ast.BinaryOp.SUB:
            return left - right
        if op is ast.BinaryOp.MUL:
            return left * right
        if op is ast.BinaryOp.DIV:
            if right == 0:
                return None  # SQL: division by zero yields NULL here
            result = left / right
            if isinstance(left, int) and isinstance(right, int) and left % right == 0:
                return left // right
            return result
        if op is ast.BinaryOp.MOD:
            if right == 0:
                return None
            return left % right
    except TypeError as exc:
        raise ExecutionError(f"type error in {op.value}: {exc}") from exc
    raise ExecutionError(f"unsupported binary operator {op}")


def _unary(
    expr: ast.Unary,
    row: Sequence[Value],
    scope: Scope,
    computed: Optional[Dict[ast.Expr, Value]],
) -> Value:
    value = evaluate(expr.operand, row, scope, computed)
    if expr.op is ast.UnaryOp.NOT:
        if value is None:
            return None
        return not _truthy(value)
    if value is None:
        return None
    if expr.op is ast.UnaryOp.NEG:
        return -value
    return +value


def _in_list(
    expr: ast.InList,
    row: Sequence[Value],
    scope: Scope,
    computed: Optional[Dict[ast.Expr, Value]],
) -> Value:
    value = evaluate(expr.expr, row, scope, computed)
    if value is None:
        return None
    saw_null = False
    for item in expr.items:
        candidate = evaluate(item, row, scope, computed)
        equal = sql_equal(value, candidate)
        if equal is None:
            saw_null = True
        elif equal:
            return False if expr.negated else True
    if saw_null:
        return None
    return True if expr.negated else False


def _truthy(value: Value) -> bool:
    """SQL truthiness of a non-NULL value."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    return bool(value)


def passes(predicate: Optional[ast.Expr], row: Sequence[Value], scope: Scope) -> bool:
    """WHERE semantics: a row passes only when the predicate is TRUE."""
    if predicate is None:
        return True
    value = evaluate(predicate, row, scope)
    if value is None:
        return False
    return _truthy(value)
