"""EXPLAIN: render a SELECT's physical plan as an indented tree.

``EXPLAIN SELECT ...`` returns one row per plan node instead of running
the query — the standard tool for verifying that an index is actually
used or that a join was upgraded to a hash join.  The output is stable
text, so tests can assert on plan shapes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sql import ast
from repro.sql.printer import to_sql
from repro.db import planner as plan

#: Scan-shaped nodes that carry a projection-pushdown column list.
_PROJECTED_SCANS = (
    plan.TableScan,
    plan.IndexEqLookup,
    plan.IndexInLookup,
    plan.IndexRangeScan,
)


def _describe(node: plan.PlanNode) -> str:
    if isinstance(node, plan.TableScan):
        if not node.table:
            return "ConstantRow"
        label = f"TableScan({node.table}"
        if node.binding != node.table:
            label += f" AS {node.binding}"
        return label + ")"
    if isinstance(node, plan.ValuesScan):
        return (
            f"ValuesScan({node.binding}: {len(node.rows)} rows x "
            f"{len(node.columns)} cols)"
        )
    if isinstance(node, plan.IndexEqLookup):
        return (
            f"IndexEqLookup({node.table}.{node.column} = {to_sql(node.value)} "
            f"USING {node.index_name})"
        )
    if isinstance(node, plan.IndexInLookup):
        return (
            f"IndexInLookup({node.table}.{node.column} IN "
            f"[{len(node.values)} values] USING {node.index_name})"
        )
    if isinstance(node, plan.IndexRangeScan):
        bounds = []
        if node.low is not None:
            op = ">" if node.low_open else ">="
            bounds.append(f"{node.column} {op} {to_sql(node.low)}")
        if node.high is not None:
            op = "<" if node.high_open else "<="
            bounds.append(f"{node.column} {op} {to_sql(node.high)}")
        return (
            f"IndexRangeScan({node.table}: {' AND '.join(bounds)} "
            f"USING {node.index_name})"
        )
    if isinstance(node, plan.Filter):
        return f"Filter({to_sql(node.predicate)})"
    if isinstance(node, plan.NestedLoopJoin):
        condition = to_sql(node.on) if node.on is not None else "TRUE"
        return f"NestedLoopJoin(on {condition})"
    if isinstance(node, plan.HashJoin):
        label = f"HashJoin({to_sql(node.left_key)} = {to_sql(node.right_key)}"
        if node.residual is not None:
            label += f", residual {to_sql(node.residual)}"
        return label + ")"
    if isinstance(node, plan.LeftOuterJoin):
        condition = to_sql(node.on) if node.on is not None else "TRUE"
        return f"LeftOuterJoin(on {condition})"
    if isinstance(node, plan.SemiJoin):
        condition = to_sql(node.on) if node.on is not None else "TRUE"
        return f"SemiJoin(on {condition})"
    if isinstance(node, plan.HashSemiJoin):
        label = f"HashSemiJoin({to_sql(node.left_key)} = {to_sql(node.right_key)}"
        if node.residual is not None:
            label += f", residual {to_sql(node.residual)}"
        return label + ")"
    if isinstance(node, plan.Project):
        items = ", ".join(
            to_sql(item.expr) + (f" AS {item.alias}" if item.alias else "")
            for item in node.items
        )
        return f"Project({items})"
    if isinstance(node, plan.Aggregate):
        keys = ", ".join(to_sql(expr) for expr in node.group_by) or "<global>"
        return f"Aggregate(group by {keys})"
    if isinstance(node, plan.Sort):
        keys = ", ".join(
            to_sql(item.expr) + (" DESC" if item.descending else "")
            for item in node.keys
        )
        return f"Sort({keys})"
    if isinstance(node, plan.Distinct):
        return "Distinct"
    if isinstance(node, plan.Limit):
        parts = []
        if node.limit is not None:
            parts.append(f"limit {node.limit}")
        if node.offset is not None:
            parts.append(f"offset {node.offset}")
        return f"Limit({', '.join(parts)})"
    return type(node).__name__


def _children(node: plan.PlanNode) -> List[plan.PlanNode]:
    if isinstance(
        node,
        (
            plan.NestedLoopJoin,
            plan.HashJoin,
            plan.LeftOuterJoin,
            plan.SemiJoin,
            plan.HashSemiJoin,
        ),
    ):
        return [node.left, node.right]
    child = getattr(node, "child", None)
    return [child] if child is not None else []


def render_plan(node: plan.PlanNode, batched: Optional[bool] = None) -> List[str]:
    """Depth-first indented description, one line per plan node.

    When ``batched`` is set, each node is annotated with
    ``[batched=yes|no]`` (does this engine run it through the columnar
    executor?) and projected scans with ``cols=…``, making projection
    pushdown observable from ``repro cycle`` and lint repros.  Both are
    additive suffixes so existing shape assertions keep matching.
    """
    lines: List[str] = []

    def visit(current: plan.PlanNode, depth: int) -> None:
        label = _describe(current)
        if isinstance(current, _PROJECTED_SCANS) and current.columns is not None:
            label += f" cols={','.join(current.columns)}"
        if batched is not None:
            label += f" [batched={'yes' if batched else 'no'}]"
        lines.append("  " * depth + label)
        for child in _children(current):
            visit(child, depth + 1)

    visit(node, 0)
    return lines


def explain(database, statement: ast.Statement) -> List[str]:
    """Plan ``statement`` against ``database`` and render the tree.

    UNIONs render each part's plan under a ``Union`` header.  Subqueries
    are resolved (executed) first, exactly as real execution would, so
    the plan shows what the outer query will actually run.
    """
    if isinstance(statement, ast.Union):
        lines = [f"Union({'ALL' if all(statement.all_flags) else 'DISTINCT'})"]
        for part in statement.parts:
            lines.extend("  " + line for line in explain(database, part))
        return lines
    from repro.db.subquery import SubqueryResolver

    resolved = SubqueryResolver(database).resolve_select(statement)
    tree = database._planner.plan(resolved)
    return render_plan(tree, batched=database.executor_mode == "columnar")
