"""Static analysis helpers over SQL ASTs.

These utilities back the invalidator's independence check (paper §4.2):
splitting WHERE clauses into conjuncts, discovering which tables and
columns a query touches, and building alias maps so that conditions can be
attributed to base tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.sql import ast
from repro.sql.params import parameterize
from repro.sql.printer import to_sql


def conjuncts(expr: Optional[ast.Expr]) -> List[ast.Expr]:
    """Split ``expr`` at top-level ANDs into a flat list of conjuncts.

    ``None`` (no WHERE clause) yields the empty list, i.e. "no conditions".
    """
    if expr is None:
        return []
    result: List[ast.Expr] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Binary) and node.op is ast.BinaryOp.AND:
            stack.append(node.right)
            stack.append(node.left)
        else:
            result.append(node)
    # The stack discipline above yields left-to-right order already, but a
    # final reverse keeps the implementation honest if that changes.
    return result


def disjuncts(expr: Optional[ast.Expr]) -> List[ast.Expr]:
    """Split ``expr`` at top-level ORs into a flat list of disjuncts."""
    if expr is None:
        return []
    result: List[ast.Expr] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Binary) and node.op is ast.BinaryOp.OR:
            stack.append(node.right)
            stack.append(node.left)
        else:
            result.append(node)
    return result


def conjoin(parts: List[ast.Expr]) -> Optional[ast.Expr]:
    """Combine expressions with AND; the empty list means "always true"."""
    if not parts:
        return None
    combined = parts[0]
    for part in parts[1:]:
        combined = ast.Binary(ast.BinaryOp.AND, combined, part)
    return combined


def _collect_sources(source: ast.FromSource, refs: List[ast.TableRef]) -> None:
    if isinstance(source, ast.TableRef):
        refs.append(source)
    elif isinstance(source, ast.Join):
        _collect_sources(source.left, refs)
        _collect_sources(source.right, refs)
    # ValuesSource: an inline derived table, not a base-table reference.


def values_sources(stmt: ast.Select) -> List[ast.ValuesSource]:
    """All inline VALUES derived tables in FROM, in source order."""
    found: List[ast.ValuesSource] = []

    def visit(source: ast.FromSource) -> None:
        if isinstance(source, ast.ValuesSource):
            found.append(source)
        elif isinstance(source, ast.Join):
            visit(source.left)
            visit(source.right)

    for source in stmt.sources:
        visit(source)
    return found


def table_refs(stmt: ast.Select) -> List[ast.TableRef]:
    """All table references in FROM, in source order."""
    refs: List[ast.TableRef] = []
    for source in stmt.sources:
        _collect_sources(source, refs)
    return refs


def alias_map(stmt: ast.Select) -> Dict[str, str]:
    """Map of visible binding name (lower-case) → base table name (lower-case)."""
    mapping: Dict[str, str] = {}
    for ref in table_refs(stmt):
        mapping[ref.binding.lower()] = ref.name.lower()
    return mapping


def referenced_tables(stmt: ast.Statement) -> Set[str]:
    """Base table names (lower-case) a statement reads or writes.

    For SELECTs this includes tables referenced only inside subqueries —
    the invalidator's dependency tracking must see through EXISTS/IN.
    """
    if isinstance(stmt, ast.Select):
        tables = {ref.name.lower() for ref in table_refs(stmt)}
        for expr in ast._select_expressions(stmt):
            for node in ast.subqueries(expr):
                tables |= referenced_tables(node.query)
        return tables
    if isinstance(stmt, ast.Union):
        tables: Set[str] = set()
        for part in stmt.parts:
            tables |= referenced_tables(part)
        return tables
    if isinstance(stmt, (ast.Insert, ast.Update, ast.Delete)):
        return {stmt.table.lower()}
    if isinstance(stmt, (ast.CreateTable, ast.DropTable)):
        return {stmt.table.lower()}
    if isinstance(stmt, ast.CreateIndex):
        return {stmt.table.lower()}
    return set()


def referenced_columns(
    expr: Optional[ast.Expr], aliases: Optional[Dict[str, str]] = None
) -> Set[Tuple[Optional[str], str]]:
    """(table, column) pairs referenced in ``expr``, all lower-case.

    When ``aliases`` is given, alias qualifiers are resolved to base table
    names, and unqualified columns are resolved through the alias map too:
    a single-source query attributes them to its one base table; with
    several sources (no schema to disambiguate) one pair per distinct base
    table is emitted — conservative, never invisible.  Without ``aliases``
    unqualified columns appear with table ``None``.
    """
    columns: Set[Tuple[Optional[str], str]] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.ColumnRef):
            table = node.table.lower() if node.table else None
            if aliases is not None:
                if table is not None:
                    table = aliases.get(table, table)
                    columns.add((table, node.column.lower()))
                else:
                    bases = set(aliases.values()) or {None}
                    for base in sorted(bases, key=str):
                        columns.add((base, node.column.lower()))
                continue
            columns.add((table, node.column.lower()))
    return columns


def has_left_join(stmt: ast.Select) -> bool:
    """True when any FROM source involves a LEFT (outer) join.

    Outer joins make the *absence* of matches observable, which defeats
    the invalidator's local reasoning — callers treat such statements
    conservatively.
    """

    def visit(source: ast.FromSource) -> bool:
        if isinstance(source, ast.Join):
            if source.kind is ast.JoinKind.LEFT:
                return True
            return visit(source.left) or visit(source.right)
        return False

    return any(visit(source) for source in stmt.sources)


def join_on_conditions(stmt: ast.Select) -> List[ast.Expr]:
    """All ON conditions from explicit joins, flattened into conjuncts."""
    conditions: List[ast.Expr] = []

    def visit(source: ast.FromSource) -> None:
        if isinstance(source, ast.Join):
            visit(source.left)
            visit(source.right)
            if source.on is not None:
                conditions.extend(conjuncts(source.on))

    for source in stmt.sources:
        visit(source)
    return conditions


def all_conditions(stmt: ast.Select) -> List[ast.Expr]:
    """WHERE conjuncts plus all explicit-join ON conjuncts."""
    return conjuncts(stmt.where) + join_on_conditions(stmt)


def tables_of_condition(
    condition: ast.Expr, aliases: Dict[str, str]
) -> Set[str]:
    """Which base tables a single condition mentions.

    Column references (qualified or not) are resolved through ``aliases``
    by :func:`referenced_columns`: unqualified names belong to the single
    source when there is one, and conservatively to every source table
    otherwise (no schema is available to disambiguate).
    """
    return {
        table
        for table, _column in referenced_columns(condition, aliases)
        if table is not None
    }


def has_parameters(expr: Optional[ast.Expr]) -> bool:
    """True when the expression still contains unbound parameters."""
    return any(isinstance(node, ast.Parameter) for node in ast.walk(expr))


def query_signature(stmt: ast.Select) -> str:
    """Canonical query-type signature: parameterized template SQL text.

    Two query instances that differ only in their constants map to the same
    signature, which is the key used by the invalidator's registration
    module (§4.1).
    """
    return parameterize(stmt).signature


def statement_kind(stmt: ast.Statement) -> str:
    """Short lower-case tag for logging: 'select', 'insert', ..."""
    return type(stmt).__name__.lower()


def is_read_only(stmt: ast.Statement) -> bool:
    """True for statements that cannot modify table contents."""
    return isinstance(stmt, ast.Select)


def normalized_sql(stmt: ast.Statement) -> str:
    """Round-trip a statement through the printer for canonical text."""
    return to_sql(stmt)
