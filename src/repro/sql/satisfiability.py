"""Satisfiability and disjointness of conjunctive SQL predicates.

The runtime invalidation stack (paper §4 plus the predicate index and
the version-key fast path) decides freshness per (instance, update)
pair.  A large fraction of those pairs is decidable *statically*: when
the conjunctive conditions a query places on a table cannot be
satisfied together with the predicate class of an update, no binding of
either can ever conflict.  This module is the decision procedure that
layer rests on:

* :func:`extract` normalizes a list of WHERE conjuncts into
  :class:`Atom` records — per-column constants, intervals, IN-lists,
  IS [NOT] NULL facts, and parameter equalities — with an explicit
  ``complete`` flag whenever information had to be discarded.  The atom
  region always *over-approximates* the rows a predicate selects, which
  is the sound direction for disjointness proofs.
* :func:`check_disjoint` compares two extractions and returns a
  three-valued :class:`Verdict`: ``DISJOINT`` (with a machine-checkable
  proof certificate), ``MAY_OVERLAP`` (the recognized regions really do
  intersect), or ``UNKNOWN`` (analysis incomplete) — callers treat the
  last two identically, as overlap.
* :func:`verify_certificate` is a small, independent re-validation of a
  ``DISJOINT`` certificate: it re-checks the cited atoms exist and that
  the claimed region conflict actually holds, using its own
  straight-line emptiness test rather than the folding machinery above.
  A certificate that fails verification must never be acted on.

Value comparisons mirror ``repro.db.types.sql_compare`` (numbers before
strings, NULL incomparable) so every verdict here agrees with what the
engine's evaluator — and therefore the independence checker — would
compute.  The function is reimplemented rather than imported: the sql
layer must not depend on the db layer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import DatabaseError, ReproError
from repro.sql import ast

#: A constant SQL value as extraction produces it.
Const = Union[int, float, str, bool, None]
#: Atom payloads: a constant, an IN-list tuple, or a parameter key.
AtomValue = Union[Const, Tuple[Const, ...]]

#: Sentinel: an expression that could not be folded to a constant.
_UNEVALUABLE = object()

#: Atom operators that constrain the column to a non-NULL value.
_VALUE_OPS = frozenset({"eq", "lt", "le", "gt", "ge", "in"})

_RANGE_OPS: Dict[ast.BinaryOp, str] = {
    ast.BinaryOp.EQ: "eq",
    ast.BinaryOp.LT: "lt",
    ast.BinaryOp.LE: "le",
    ast.BinaryOp.GT: "gt",
    ast.BinaryOp.GE: "ge",
}


class Verdict(enum.Enum):
    """Three-valued disjointness verdict.

    ``UNKNOWN`` and ``MAY_OVERLAP`` are both treated as overlap by
    callers; they differ only in provenance (incomplete analysis vs a
    genuine intersection of the recognized regions).
    """

    DISJOINT = "disjoint"
    MAY_OVERLAP = "may_overlap"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class Atom:
    """One normalized fact about one column.

    Operators: ``eq``/``lt``/``le``/``gt``/``ge`` (value is a non-NULL
    constant), ``in`` (value is a tuple of non-NULL constants),
    ``isnull``/``notnull`` (value is None), ``eqparam`` (value is the
    parameter key, e.g. ``"$1"``), and ``false`` — a pseudo-atom on the
    empty column recording a constant-false conjunct (value is its SQL).
    """

    column: str
    op: str
    value: AtomValue = None

    def to_dict(self) -> Dict[str, object]:
        value: object = self.value
        if isinstance(value, tuple):
            value = list(value)
        return {"column": self.column, "op": self.op, "value": value}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Atom":
        value = data.get("value")
        if isinstance(value, list):
            value = tuple(value)
        column = data.get("column")
        op = data.get("op")
        if not isinstance(column, str) or not isinstance(op, str):
            raise ValueError(f"malformed atom: {data!r}")
        return cls(column=column, op=op, value=value)  # type: ignore[arg-type]


@dataclass
class Extraction:
    """Atoms recognized in a conjunct list, plus what was given up on.

    ``origins[i]`` is the source conjunct of ``atoms[i]``.  ``complete``
    is False whenever any conjunct contributed less than its exact
    region — the resulting over-approximation is still sound for
    disjointness, but a non-verdict degrades to ``UNKNOWN`` rather than
    ``MAY_OVERLAP``.
    """

    atoms: List[Atom] = field(default_factory=list)
    origins: List[Optional[ast.Expr]] = field(default_factory=list)
    complete: bool = True

    def add(self, atom: Atom, origin: Optional[ast.Expr]) -> None:
        self.atoms.append(atom)
        self.origins.append(origin)

    @property
    def contradiction(self) -> bool:
        return any(atom.op == "false" for atom in self.atoms)


@dataclass(frozen=True)
class Decision:
    """Outcome of a disjointness check."""

    verdict: Verdict
    certificate: Optional[Dict[str, object]] = None
    reason: str = ""


def default_resolver(ref: ast.ColumnRef) -> Optional[str]:
    """Column resolution when no scope information is available: the
    canonical key (``table.column`` or bare ``column``)."""
    return ref.key()


def scoped_resolver(binding: str) -> Callable[[ast.ColumnRef], Optional[str]]:
    """Column resolution inside one table binding: unqualified names and
    names qualified by the binding resolve to the bare column; anything
    else — including the base-table name when the table is bound under
    an alias, which the grouped checker's scope cannot evaluate either —
    stays opaque, keeping static verdicts aligned with runtime checks."""

    def resolve(ref: ast.ColumnRef) -> Optional[str]:
        if ref.table is None or ref.table.lower() == binding:
            return ref.column.lower()
        return None

    return resolve


# -- extraction: conjuncts → atoms -----------------------------------------------


def _fold_constant(
    expr: ast.Expr, bindings: Optional[Sequence[Const]]
) -> object:
    """Fold a column-free expression to a constant, or ``_UNEVALUABLE``.

    Without bindings, any parameter reference makes the expression
    unevaluable (a template-level extraction must hold for *every*
    binding).  The evaluator is imported lazily, mirroring
    ``repro.sql.lint``: the sql layer must not import the db layer at
    module load.
    """
    has_params = any(isinstance(node, ast.Parameter) for node in ast.walk(expr))
    if bindings is None and has_params:
        return _UNEVALUABLE
    try:
        from repro.db.expr import Scope, evaluate
        from repro.sql.params import bind_expression

        bound = bind_expression(expr, tuple(bindings or ()))
        return evaluate(bound, (), Scope([]))
    except (DatabaseError, ReproError):
        return _UNEVALUABLE


def _plain_column(
    expr: ast.Expr, resolve: Callable[[ast.ColumnRef], Optional[str]]
) -> Optional[str]:
    if isinstance(expr, ast.ColumnRef):
        return resolve(expr)
    return None


def _column_free(expr: ast.Expr) -> bool:
    return not any(
        isinstance(
            node, (ast.ColumnRef, ast.Exists, ast.InSelect, ast.ScalarSubquery)
        )
        for node in ast.walk(expr)
    )


def _has_subquery(expr: ast.Expr) -> bool:
    return any(
        isinstance(node, (ast.Exists, ast.InSelect, ast.ScalarSubquery))
        for node in ast.walk(expr)
    )


def extract(
    conditions: Sequence[ast.Expr],
    bindings: Optional[Sequence[Const]] = None,
    resolve: Optional[Callable[[ast.ColumnRef], Optional[str]]] = None,
) -> Extraction:
    """Normalize a list of conjuncts into an :class:`Extraction`.

    ``bindings`` supplies parameter values (instance-level extraction);
    ``None`` restricts the result to facts valid for every binding
    (template-level).  ``resolve`` maps column references into the
    extraction's column namespace; references it returns ``None`` for
    make the owning conjunct opaque.
    """
    resolver = resolve if resolve is not None else default_resolver
    result = Extraction()
    for condition in conditions:
        _extract_one(condition, bindings, resolver, result)
    return result


def _extract_one(
    conjunct: ast.Expr,
    bindings: Optional[Sequence[Const]],
    resolve: Callable[[ast.ColumnRef], Optional[str]],
    out: Extraction,
) -> None:
    if _has_subquery(conjunct):
        out.complete = False
        return
    refs = [node for node in ast.walk(conjunct) if isinstance(node, ast.ColumnRef)]
    if not refs:
        value = _fold_constant(conjunct, bindings)
        if value is _UNEVALUABLE:
            out.complete = False
        elif value is not True:
            # Constant False — or NULL, which WHERE treats the same way.
            out.add(Atom("", "false", _sql_of(conjunct, bindings)), conjunct)
        return
    resolved = {resolve(ref) for ref in refs}
    if None in resolved:
        out.complete = False
        return
    columns = {name for name in resolved if name is not None}
    if len(columns) == 1:
        _extract_single_column(conjunct, next(iter(columns)), bindings, out)
        return
    # Multi-column conjunct: a plain equality between two columns proves
    # both non-NULL; everything else is opaque.
    if (
        isinstance(conjunct, ast.Binary)
        and conjunct.op is ast.BinaryOp.EQ
        and isinstance(conjunct.left, ast.ColumnRef)
        and isinstance(conjunct.right, ast.ColumnRef)
    ):
        for ref in (conjunct.left, conjunct.right):
            name = resolve(ref)
            if name is not None:
                out.add(Atom(name, "notnull"), conjunct)
    out.complete = False


def _extract_single_column(
    conjunct: ast.Expr,
    column: str,
    bindings: Optional[Sequence[Const]],
    out: Extraction,
) -> None:
    def resolve_here(ref: ast.ColumnRef) -> Optional[str]:
        return column

    def notnull_fallback() -> None:
        # Exact region unknown, but truth still requires a defined
        # comparison: the column cannot be NULL.  Over-approximate.
        out.add(Atom(column, "notnull"), conjunct)
        out.complete = False

    if isinstance(conjunct, ast.IsNull):
        op = "notnull" if conjunct.negated else "isnull"
        out.add(Atom(column, op), conjunct)
        return
    if isinstance(conjunct, ast.Binary) and (
        conjunct.op in ast.COMPARISONS or conjunct.op is ast.BinaryOp.LIKE
    ):
        col_side = _plain_column(conjunct.left, resolve_here)
        if col_side is not None and _column_free(conjunct.right):
            op, other = conjunct.op, conjunct.right
        else:
            col_side = _plain_column(conjunct.right, resolve_here)
            if col_side is None or not _column_free(conjunct.left):
                out.complete = False
                return
            flipped = ast.FLIPPED.get(conjunct.op)
            if flipped is None:  # LIKE has no mirror image
                notnull_fallback()
                return
            op, other = flipped, conjunct.left
        if op not in _RANGE_OPS:
            # NE and LIKE: truth requires non-NULL, region stays open.
            notnull_fallback()
            return
        if (
            op is ast.BinaryOp.EQ
            and bindings is None
            and isinstance(other, ast.Parameter)
            and other.index is not None
        ):
            out.add(Atom(column, "eqparam", f"${other.index}"), conjunct)
            return
        value = _fold_constant(other, bindings)
        if value is _UNEVALUABLE:
            notnull_fallback()
            return
        if value is None:
            # Comparison against NULL is never true: the conjunct alone
            # empties the region.  The column rides along so consumers
            # know which tuple slot the runtime checker would consult.
            out.add(Atom(column, "false", _sql_of(conjunct, bindings)), conjunct)
            return
        out.add(Atom(column, _RANGE_OPS[op], _as_const(value)), conjunct)
        return
    if isinstance(conjunct, ast.Between):
        if conjunct.negated:
            notnull_fallback()
            return
        if _plain_column(conjunct.expr, resolve_here) is None:
            out.complete = False
            return
        low = _fold_constant(conjunct.low, bindings)
        high = _fold_constant(conjunct.high, bindings)
        if low is _UNEVALUABLE or high is _UNEVALUABLE:
            notnull_fallback()
            return
        if low is None or high is None:
            out.add(Atom(column, "false", _sql_of(conjunct, bindings)), conjunct)
            return
        out.add(Atom(column, "ge", _as_const(low)), conjunct)
        out.add(Atom(column, "le", _as_const(high)), conjunct)
        return
    if isinstance(conjunct, ast.InList):
        if conjunct.negated:
            notnull_fallback()
            return
        if _plain_column(conjunct.expr, resolve_here) is None:
            out.complete = False
            return
        members: List[Const] = []
        for item in conjunct.items:
            value = _fold_constant(item, bindings)
            if value is _UNEVALUABLE:
                notnull_fallback()
                return
            if value is not None:  # NULL members never match: drop, exactly
                members.append(_as_const(value))
        if not members:
            out.add(Atom(column, "false", _sql_of(conjunct, bindings)), conjunct)
            return
        out.add(Atom(column, "in", tuple(members)), conjunct)
        return
    # Arithmetic over the column, disjunctions, function calls, …
    out.complete = False


def _as_const(value: object) -> Const:
    if value is None or isinstance(value, (int, float, str, bool)):
        return value
    raise ReproError(f"non-constant fold result: {value!r}")


def _sql_of(expr: ast.Expr, bindings: Optional[Sequence[Const]]) -> str:
    from repro.sql.printer import to_sql

    if bindings:
        try:
            from repro.sql.params import bind_expression

            return to_sql(bind_expression(expr, tuple(bindings)))
        except (DatabaseError, ReproError):
            pass
    return to_sql(expr)


def atoms_for_tuple(values: Dict[str, Const]) -> List[Atom]:
    """Atoms describing one concrete tuple: ``col = v`` per column, or
    ``col IS NULL`` where the tuple carries NULL."""
    atoms = []
    for column, value in values.items():
        key = column.lower()
        if value is None:
            atoms.append(Atom(key, "isnull"))
        else:
            atoms.append(Atom(key, "eq", value))
    return atoms


# -- value model (keep in sync with repro.db.types.sql_compare) ------------------


def _compare(left: Const, right: Const) -> Optional[int]:
    """SQL comparison: -1 / 0 / +1, or None when either side is NULL.

    Mirror of ``repro.db.types.sql_compare`` — numbers order before
    strings in a deterministic total order — so static verdicts agree
    with the engine's evaluator.  Not imported: the sql layer must not
    depend on the db layer.
    """
    if left is None or right is None:
        return None
    numeric = (int, float, bool)
    left_is_num = isinstance(left, numeric)
    right_is_num = isinstance(right, numeric)
    if left_is_num and right_is_num:
        lf, rf = float(left), float(right)  # type: ignore[arg-type]
        return -1 if lf < rf else (1 if lf > rf else 0)
    if left_is_num != right_is_num:
        return -1 if left_is_num else 1
    assert isinstance(left, str) and isinstance(right, str)
    return -1 if left < right else (1 if left > right else 0)


# -- per-column region folding ---------------------------------------------------


class _ColumnState:
    """The folded region of one column: an optional member set, an
    interval over the SQL total order, and NULL feasibility."""

    __slots__ = ("members", "lower", "upper", "null_ok", "has_value_atom", "empty")

    def __init__(self) -> None:
        self.members: Optional[Set[Const]] = None
        self.lower: Optional[Tuple[Const, bool]] = None  # (bound, strict)
        self.upper: Optional[Tuple[Const, bool]] = None
        self.null_ok = True
        self.has_value_atom = False
        self.empty = False  # non-NULL region forced empty (IS NULL atom)

    def fold(self, atom: Atom) -> None:
        if atom.op == "isnull":
            self.empty = True
            return
        if atom.op == "notnull":
            self.null_ok = False
            return
        if atom.op == "eqparam":
            # The value is unknown, but equality with *any* value
            # requires the column to be non-NULL.
            self.null_ok = False
            return
        self.null_ok = False
        self.has_value_atom = True
        if atom.op == "eq":
            self._intersect_members({atom.value})
        elif atom.op == "in":
            values = atom.value if isinstance(atom.value, tuple) else (atom.value,)
            self._intersect_members(set(values))
        elif atom.op in ("lt", "le"):
            self._tighten_upper((atom.value, atom.op == "lt"))
        elif atom.op in ("gt", "ge"):
            self._tighten_lower((atom.value, atom.op == "gt"))

    def _intersect_members(self, values: Set[Const]) -> None:
        values = {v for v in values if v is not None}
        if self.members is None:
            self.members = values
        else:
            self.members &= values

    def _tighten_lower(self, bound: Tuple[Const, bool]) -> None:
        if self.lower is None:
            self.lower = bound
            return
        cmp = _compare(bound[0], self.lower[0])
        if cmp is None:
            self.lower = (None, True)  # bound vs NULL: empty interval
        elif cmp > 0 or (cmp == 0 and bound[1]):
            self.lower = bound

    def _tighten_upper(self, bound: Tuple[Const, bool]) -> None:
        if self.upper is None:
            self.upper = bound
            return
        cmp = _compare(bound[0], self.upper[0])
        if cmp is None:
            self.upper = (None, True)
        elif cmp < 0 or (cmp == 0 and bound[1]):
            self.upper = bound

    def _in_interval(self, value: Const) -> bool:
        if self.lower is not None:
            cmp = _compare(value, self.lower[0])
            if cmp is None or cmp < 0 or (cmp == 0 and self.lower[1]):
                return False
        if self.upper is not None:
            cmp = _compare(value, self.upper[0])
            if cmp is None or cmp > 0 or (cmp == 0 and self.upper[1]):
                return False
        return True

    def region_empty(self) -> bool:
        """True when no non-NULL value satisfies every folded atom.

        The value domain is treated as dense (REAL/TEXT): an open
        interval between distinct bounds is assumed inhabited even
        though an INT column might make it empty — the conservative
        direction for both disjointness and unsatisfiability claims.
        """
        if self.empty:
            return True
        if self.members is not None:
            return not any(self._in_interval(value) for value in self.members)
        if self.lower is not None and self.upper is not None:
            if self.lower[0] is None or self.upper[0] is None:
                return True
            cmp = _compare(self.lower[0], self.upper[0])
            assert cmp is not None
            return cmp > 0 or (cmp == 0 and (self.lower[1] or self.upper[1]))
        if self.lower is not None and self.lower[0] is None:
            return True
        if self.upper is not None and self.upper[0] is None:
            return True
        return False

    def unsatisfiable(self) -> bool:
        return (not self.null_ok) and self.region_empty()


def _fold_states(atoms: Sequence[Atom]) -> Dict[str, _ColumnState]:
    states: Dict[str, _ColumnState] = {}
    for atom in atoms:
        if atom.op == "false":
            continue  # handled by callers via Extraction.contradiction
        state = states.get(atom.column)
        if state is None:
            state = states[atom.column] = _ColumnState()
        state.fold(atom)
    return states


def unsatisfiable_columns(
    extraction: Extraction,
) -> Optional[Tuple[str, List[Atom], List[ast.Expr]]]:
    """First column whose folded atoms admit no value (NULL included),
    with the contributing atoms and their source conjuncts — or None.

    Used by the ``unsatisfiable-conjunction`` lint rule; constant-false
    conjuncts are *not* reported here (the ``contradictory-predicate``
    rule owns those).
    """
    states = _fold_states(extraction.atoms)
    for column, state in sorted(states.items()):
        if column and state.unsatisfiable():
            atoms = [a for a in extraction.atoms if a.column == column]
            origins = [
                origin
                for atom, origin in zip(extraction.atoms, extraction.origins)
                if atom.column == column and origin is not None
            ]
            return column, atoms, origins
    return None


# -- the disjointness decision ---------------------------------------------------


def _atom_dicts(atoms: Sequence[Atom]) -> List[Dict[str, object]]:
    return [atom.to_dict() for atom in atoms]


def _cited(atoms: Sequence[Atom], column: str) -> List[Atom]:
    return [atom for atom in atoms if atom.column == column]


def check_disjoint(query: Extraction, update: Extraction) -> Decision:
    """Decide whether two conjunctive predicates can select a common row.

    Both extractions over-approximate their predicates, so ``DISJOINT``
    is sound regardless of completeness.  The certificate cites the
    exact atoms the proof rests on; re-validate it with
    :func:`verify_certificate` before acting on the verdict.
    """
    for side_name, side in (("query", query), ("update", update)):
        false_atoms = [a for a in side.atoms if a.op == "false"]
        if false_atoms:
            return _disjoint(
                why="empty-side",
                side=side_name,
                column="",
                query_atoms=false_atoms if side_name == "query" else [],
                update_atoms=false_atoms if side_name == "update" else [],
                reason=f"{side_name} predicate is constant-false",
            )
    query_states = _fold_states(query.atoms)
    update_states = _fold_states(update.atoms)
    for side_name, side, states in (
        ("query", query, query_states),
        ("update", update, update_states),
    ):
        for column, state in sorted(states.items()):
            if state.unsatisfiable():
                cited = _cited(side.atoms, column)
                return _disjoint(
                    why="empty-side",
                    side=side_name,
                    column=column,
                    query_atoms=cited if side_name == "query" else [],
                    update_atoms=cited if side_name == "update" else [],
                    reason=f"{side_name} constraints on {column} are unsatisfiable",
                )
    for column in sorted(set(query_states) & set(update_states)):
        merged = _ColumnState()
        query_cited = _cited(query.atoms, column)
        update_cited = _cited(update.atoms, column)
        for atom in query_cited + update_cited:
            merged.fold(atom)
        if merged.unsatisfiable():
            return _disjoint(
                why="column-disjoint",
                column=column,
                query_atoms=query_cited,
                update_atoms=update_cited,
                reason=f"constraints on {column} cannot intersect",
            )
    # Equality unification: columns equated to one parameter must all
    # hold the parameter's (non-NULL) value, so their merged regions
    # must share at least one point.
    groups: Dict[str, List[str]] = {}
    for atom in query.atoms:
        if atom.op == "eqparam" and isinstance(atom.value, str):
            groups.setdefault(atom.value, []).append(atom.column)
    for param, columns in sorted(groups.items()):
        distinct = sorted(set(columns))
        if len(distinct) < 2:
            continue
        shared = _ColumnState()
        query_cited = [a for a in query.atoms if a.column in distinct]
        update_cited = [a for a in update.atoms if a.column in distinct]
        for atom in query_cited + update_cited:
            if atom.op != "eqparam":
                shared.fold(atom)
        shared.null_ok = False  # the parameter's value must be non-NULL
        if shared.region_empty():
            return _disjoint(
                why="param-unification",
                param=param,
                columns=distinct,
                query_atoms=query_cited,
                update_atoms=update_cited,
                reason=(
                    f"columns {', '.join(distinct)} are unified by {param} "
                    "but their regions share no value"
                ),
            )
    if query.complete and update.complete:
        return Decision(Verdict.MAY_OVERLAP, reason="recognized regions intersect")
    return Decision(Verdict.UNKNOWN, reason="analysis incomplete")


def _disjoint(
    why: str,
    query_atoms: Sequence[Atom],
    update_atoms: Sequence[Atom],
    reason: str,
    column: Optional[str] = None,
    side: Optional[str] = None,
    param: Optional[str] = None,
    columns: Optional[Sequence[str]] = None,
) -> Decision:
    certificate: Dict[str, object] = {
        "kind": "disjoint",
        "why": why,
        "query_atoms": _atom_dicts(query_atoms),
        "update_atoms": _atom_dicts(update_atoms),
    }
    if column is not None:
        certificate["column"] = column
    if side is not None:
        certificate["side"] = side
    if param is not None:
        certificate["param"] = param
    if columns is not None:
        certificate["columns"] = list(columns)
    return Decision(Verdict.DISJOINT, certificate=certificate, reason=reason)


# -- the independent certificate checker -----------------------------------------
#
# Deliberately *not* built on _ColumnState: a straight-line second
# implementation of region emptiness, so a bug in the folding machinery
# above cannot silently vouch for its own proofs.


def _region_empty_independent(atoms: Sequence[Atom]) -> bool:
    """True when no row value (NULL included) satisfies all ``atoms``."""
    if any(atom.op == "false" for atom in atoms):
        return True
    null_allowed = not any(
        atom.op in _VALUE_OPS or atom.op in ("notnull", "eqparam")
        for atom in atoms
    )
    if any(atom.op == "isnull" for atom in atoms):
        # Only NULL can satisfy an IS NULL atom; any value-requiring
        # atom then empties the region.
        return not null_allowed
    allowed: Optional[Set[Const]] = None
    lows: List[Tuple[Const, bool]] = []
    highs: List[Tuple[Const, bool]] = []
    for atom in atoms:
        if atom.op == "eq":
            values = {atom.value}
        elif atom.op == "in":
            raw = atom.value if isinstance(atom.value, tuple) else (atom.value,)
            values = set(raw)
        elif atom.op == "lt":
            highs.append((atom.value, True))
            continue
        elif atom.op == "le":
            highs.append((atom.value, False))
            continue
        elif atom.op == "gt":
            lows.append((atom.value, True))
            continue
        elif atom.op == "ge":
            lows.append((atom.value, False))
            continue
        else:
            continue
        values = {v for v in values if v is not None}
        allowed = values if allowed is None else (allowed & values)
    if any(bound is None for bound, _ in lows + highs):
        return not null_allowed  # comparison against NULL never holds

    def satisfies_bounds(value: Const) -> bool:
        for bound, strict in lows:
            cmp = _compare(value, bound)
            if cmp is None or cmp < 0 or (cmp == 0 and strict):
                return False
        for bound, strict in highs:
            cmp = _compare(value, bound)
            if cmp is None or cmp > 0 or (cmp == 0 and strict):
                return False
        return True

    if allowed is not None:
        region_empty = not any(satisfies_bounds(value) for value in allowed)
    else:
        # Empty iff some (low, high) bound pair is incompatible.
        region_empty = False
        for low, low_strict in lows:
            for high, high_strict in highs:
                cmp = _compare(low, high)
                if cmp is None:
                    continue
                if cmp > 0 or (cmp == 0 and (low_strict or high_strict)):
                    region_empty = True
    return region_empty and not null_allowed


def _contains_all(
    cited: Sequence[Dict[str, object]], available: Sequence[Atom]
) -> Optional[str]:
    pool = [atom.to_dict() for atom in available]
    for entry in cited:
        if entry not in pool:
            return f"cited atom not present in input: {entry!r}"
    return None


def verify_certificate(
    certificate: Dict[str, object],
    query_atoms: Sequence[Atom],
    update_atoms: Sequence[Atom],
) -> List[str]:
    """Re-validate a ``DISJOINT`` certificate; returns the (empty when
    valid) list of verification errors.

    Checks that every cited atom is really present in the corresponding
    input, then re-establishes the claimed conflict with the
    independent region test.  Certificates that fail here must be
    discarded — callers fall back to ``MAY_OVERLAP`` behavior.
    """
    errors: List[str] = []
    if certificate.get("kind") != "disjoint":
        return [f"unknown certificate kind: {certificate.get('kind')!r}"]
    why = certificate.get("why")
    cited_query = certificate.get("query_atoms")
    cited_update = certificate.get("update_atoms")
    if not isinstance(cited_query, list) or not isinstance(cited_update, list):
        return ["malformed certificate: missing cited atom lists"]
    for cited, pool, label in (
        (cited_query, query_atoms, "query"),
        (cited_update, update_atoms, "update"),
    ):
        problem = _contains_all(cited, pool)
        if problem is not None:
            errors.append(f"{label}: {problem}")
    if errors:
        return errors
    try:
        parsed_query = [Atom.from_dict(entry) for entry in cited_query]
        parsed_update = [Atom.from_dict(entry) for entry in cited_update]
    except (ValueError, TypeError) as exc:
        return [f"malformed cited atom: {exc}"]
    if why == "empty-side":
        side = certificate.get("side")
        cited = parsed_query if side == "query" else parsed_update
        if side not in ("query", "update"):
            return [f"empty-side certificate names no side: {side!r}"]
        if not cited:
            return ["empty-side certificate cites no atoms"]
        if not _region_empty_independent(cited):
            errors.append(
                f"cited {side} atoms do not empty the region: "
                f"{_atom_dicts(cited)!r}"
            )
        return errors
    if why == "column-disjoint":
        column = certificate.get("column")
        cited = parsed_query + parsed_update
        if not isinstance(column, str) or not column:
            return ["column-disjoint certificate names no column"]
        if any(atom.column != column for atom in cited):
            return [f"cited atoms stray from column {column!r}"]
        if not parsed_query or not parsed_update:
            return ["column-disjoint certificate must cite both sides"]
        if not _region_empty_independent(cited):
            errors.append(
                f"cited atoms on {column!r} still admit a common value"
            )
        return errors
    if why == "param-unification":
        param = certificate.get("param")
        columns = certificate.get("columns")
        if not isinstance(param, str) or not isinstance(columns, list):
            return ["param-unification certificate is malformed"]
        if len(set(columns)) < 2:
            return ["param-unification needs at least two columns"]
        for column in columns:
            if not any(
                atom.op == "eqparam"
                and atom.column == column
                and atom.value == param
                for atom in parsed_query
            ):
                errors.append(
                    f"no cited {param} equality for column {column!r}"
                )
        if errors:
            return errors
        # All group columns hold one shared non-NULL value: merge their
        # value atoms into a single pseudo-column and test emptiness.
        merged = [
            Atom("*", atom.op, atom.value)
            for atom in parsed_query + parsed_update
            if atom.op != "eqparam" and atom.column in set(columns)
        ]
        merged.append(Atom("*", "notnull"))
        if not _region_empty_independent(merged):
            errors.append(
                f"columns unified by {param} still share a feasible value"
            )
        return errors
    return [f"unknown certificate claim: {why!r}"]
