"""Render AST nodes back to canonical SQL text.

The printer produces deterministic output (keywords upper-case, minimal
whitespace, literals normalized) so that two structurally identical
statements print identically.  The sniffer and invalidator rely on this to
key their maps by SQL text.
"""

from __future__ import annotations

from typing import Union

from repro.sql import ast

# Binding powers used to decide where parentheses are required.
_PRECEDENCE = {
    ast.BinaryOp.OR: 1,
    ast.BinaryOp.AND: 2,
    ast.BinaryOp.EQ: 4,
    ast.BinaryOp.NE: 4,
    ast.BinaryOp.LT: 4,
    ast.BinaryOp.LE: 4,
    ast.BinaryOp.GT: 4,
    ast.BinaryOp.GE: 4,
    ast.BinaryOp.LIKE: 4,
    ast.BinaryOp.ADD: 5,
    ast.BinaryOp.SUB: 5,
    ast.BinaryOp.CONCAT: 5,
    ast.BinaryOp.MUL: 6,
    ast.BinaryOp.DIV: 6,
    ast.BinaryOp.MOD: 6,
}


def _literal(value: Union[int, float, str, bool, None]) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _expr(node: ast.Expr, parent_precedence: int = 0) -> str:
    if isinstance(node, ast.Literal):
        return _literal(node.value)
    if isinstance(node, ast.ColumnRef):
        if node.table:
            return f"{node.table}.{node.column}"
        return node.column
    if isinstance(node, ast.Parameter):
        return "?" if node.index is None else f"${node.index}"
    if isinstance(node, ast.Star):
        return f"{node.table}.*" if node.table else "*"
    if isinstance(node, ast.Binary):
        precedence = _PRECEDENCE[node.op]
        # Comparisons and LIKE are non-associative: a nested comparison on
        # either side must be parenthesized to survive a re-parse.
        non_associative = node.op in ast.COMPARISONS or node.op is ast.BinaryOp.LIKE
        left = _expr(node.left, precedence + 1 if non_associative else precedence)
        right = _expr(node.right, precedence + 1)
        text = f"{left} {node.op.value} {right}"
        if precedence < parent_precedence:
            return f"({text})"
        return text
    if isinstance(node, ast.Unary):
        operand = _expr(node.operand, 7)
        if node.op is ast.UnaryOp.NOT:
            text = f"NOT {operand}"
            return f"({text})" if parent_precedence > 3 else text
        return f"{node.op.value}{operand}"
    if isinstance(node, ast.Between):
        negation = "NOT " if node.negated else ""
        text = (
            f"{_expr(node.expr, 5)} {negation}BETWEEN "
            f"{_expr(node.low, 5)} AND {_expr(node.high, 5)}"
        )
        return f"({text})" if parent_precedence >= 4 else text
    if isinstance(node, ast.InList):
        negation = "NOT " if node.negated else ""
        items = ", ".join(_expr(item) for item in node.items)
        text = f"{_expr(node.expr, 5)} {negation}IN ({items})"
        return f"({text})" if parent_precedence >= 4 else text
    if isinstance(node, ast.IsNull):
        negation = "NOT " if node.negated else ""
        text = f"{_expr(node.expr, 5)} IS {negation}NULL"
        return f"({text})" if parent_precedence >= 4 else text
    if isinstance(node, ast.FunctionCall):
        distinct = "DISTINCT " if node.distinct else ""
        args = ", ".join(_expr(arg) for arg in node.args)
        return f"{node.name}({distinct}{args})"
    if isinstance(node, ast.Case):
        parts = ["CASE"]
        for cond, value in node.whens:
            parts.append(f"WHEN {_expr(cond)} THEN {_expr(value)}")
        if node.default is not None:
            parts.append(f"ELSE {_expr(node.default)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(node, ast.Exists):
        negation = "NOT " if node.negated else ""
        text = f"{negation}EXISTS ({_select(node.query)})"
        return f"({text})" if parent_precedence >= 4 else text
    if isinstance(node, ast.InSelect):
        negation = "NOT " if node.negated else ""
        text = f"{_expr(node.expr, 5)} {negation}IN ({_select(node.query)})"
        return f"({text})" if parent_precedence >= 4 else text
    if isinstance(node, ast.ScalarSubquery):
        return f"({_select(node.query)})"
    raise TypeError(f"cannot print expression node {node!r}")


def _table_ref(ref: ast.TableRef) -> str:
    if ref.alias:
        return f"{ref.name} AS {ref.alias}"
    return ref.name


def _values_source(source: ast.ValuesSource) -> str:
    rows = ", ".join(
        "(" + ", ".join(_expr(value) for value in row) + ")" for row in source.rows
    )
    columns = ", ".join(source.columns)
    return f"(VALUES {rows}) AS {source.name} ({columns})"


def _from_source(source: ast.FromSource) -> str:
    if isinstance(source, ast.TableRef):
        return _table_ref(source)
    if isinstance(source, ast.ValuesSource):
        return _values_source(source)
    left = _from_source(source.left)
    right = _from_source(source.right)
    if source.kind is ast.JoinKind.CROSS:
        return f"{left} CROSS JOIN {right}"
    keyword = "JOIN" if source.kind is ast.JoinKind.INNER else "LEFT JOIN"
    return f"{left} {keyword} {right} ON {_expr(source.on)}"


def _select(stmt: ast.Select) -> str:
    parts = ["SELECT"]
    if stmt.distinct:
        parts.append("DISTINCT")
    items = []
    for item in stmt.items:
        text = _expr(item.expr)
        if item.alias:
            text += f" AS {item.alias}"
        items.append(text)
    parts.append(", ".join(items))
    if stmt.sources:
        parts.append("FROM")
        parts.append(", ".join(_from_source(source) for source in stmt.sources))
    if stmt.where is not None:
        parts.append(f"WHERE {_expr(stmt.where)}")
    if stmt.group_by:
        parts.append("GROUP BY " + ", ".join(_expr(e) for e in stmt.group_by))
    if stmt.having is not None:
        parts.append(f"HAVING {_expr(stmt.having)}")
    if stmt.order_by:
        rendered = []
        for item in stmt.order_by:
            text = _expr(item.expr)
            if item.descending:
                text += " DESC"
            rendered.append(text)
        parts.append("ORDER BY " + ", ".join(rendered))
    if stmt.limit is not None:
        parts.append(f"LIMIT {stmt.limit}")
        if stmt.offset is not None:
            parts.append(f"OFFSET {stmt.offset}")
    return " ".join(parts)


def _insert(stmt: ast.Insert) -> str:
    parts = [f"INSERT INTO {stmt.table}"]
    if stmt.columns:
        parts.append("(" + ", ".join(stmt.columns) + ")")
    rows = ", ".join(
        "(" + ", ".join(_expr(value) for value in row) + ")" for row in stmt.rows
    )
    parts.append(f"VALUES {rows}")
    return " ".join(parts)


def _update(stmt: ast.Update) -> str:
    assignments = ", ".join(f"{col} = {_expr(value)}" for col, value in stmt.assignments)
    text = f"UPDATE {stmt.table} SET {assignments}"
    if stmt.where is not None:
        text += f" WHERE {_expr(stmt.where)}"
    return text


def _delete(stmt: ast.Delete) -> str:
    text = f"DELETE FROM {stmt.table}"
    if stmt.where is not None:
        text += f" WHERE {_expr(stmt.where)}"
    return text


def _create_table(stmt: ast.CreateTable) -> str:
    columns = []
    for col in stmt.columns:
        text = f"{col.name} {col.type_name}"
        if col.primary_key:
            text += " PRIMARY KEY"
        if col.unique:
            text += " UNIQUE"
        if col.not_null:
            text += " NOT NULL"
        columns.append(text)
    exists = "IF NOT EXISTS " if stmt.if_not_exists else ""
    return f"CREATE TABLE {exists}{stmt.table} (" + ", ".join(columns) + ")"


def _create_index(stmt: ast.CreateIndex) -> str:
    unique = "UNIQUE " if stmt.unique else ""
    columns = ", ".join(stmt.columns)
    return f"CREATE {unique}INDEX {stmt.name} ON {stmt.table} ({columns})"


def _union(stmt: ast.Union) -> str:
    parts = [_select(stmt.parts[0])]
    for all_flag, select in zip(stmt.all_flags, stmt.parts[1:]):
        parts.append("UNION ALL" if all_flag else "UNION")
        parts.append(_select(select))
    text = " ".join(parts)
    if stmt.order_by:
        rendered = []
        for item in stmt.order_by:
            piece = _expr(item.expr)
            if item.descending:
                piece += " DESC"
            rendered.append(piece)
        text += " ORDER BY " + ", ".join(rendered)
    if stmt.limit is not None:
        text += f" LIMIT {stmt.limit}"
        if stmt.offset is not None:
            text += f" OFFSET {stmt.offset}"
    return text


def to_sql(node: Union[ast.Statement, ast.Expr]) -> str:
    """Render a statement or expression node as canonical SQL text."""
    if isinstance(node, ast.Select):
        return _select(node)
    if isinstance(node, ast.Union):
        return _union(node)
    if isinstance(node, ast.Insert):
        return _insert(node)
    if isinstance(node, ast.Update):
        return _update(node)
    if isinstance(node, ast.Delete):
        return _delete(node)
    if isinstance(node, ast.CreateTable):
        return _create_table(node)
    if isinstance(node, ast.CreateIndex):
        return _create_index(node)
    if isinstance(node, ast.DropTable):
        exists = "IF EXISTS " if node.if_exists else ""
        return f"DROP TABLE {exists}{node.table}"
    if isinstance(node, ast.Explain):
        return f"EXPLAIN {to_sql(node.statement)}"
    if isinstance(node, ast.BeginTransaction):
        return "BEGIN TRANSACTION"
    if isinstance(node, ast.CommitTransaction):
        return "COMMIT TRANSACTION"
    if isinstance(node, ast.RollbackTransaction):
        return "ROLLBACK TRANSACTION"
    if isinstance(node, ast.Expr):
        return _expr(node)
    raise TypeError(f"cannot print node {node!r}")
