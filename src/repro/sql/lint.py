"""Invalidation-safety lint: structured diagnostics over the SQL AST.

CachePortal's invalidation is only as safe as its static analysis of
WHERE clauses (paper §4).  This module walks a SELECT (or UNION) and
emits :class:`Finding` records for every construct the independence
checker cannot reason about precisely — non-deterministic functions,
subqueries, disjunctions spanning tables, LEFT JOIN null extension —
plus hygiene rules for predicates that waste index slots or hint at
type confusion.  Findings carry a rule id, severity, character span
into the normalized SQL, the offending snippet, and a fix hint.

:mod:`repro.core.invalidator.safety` folds these findings into the
SAFE / POLL_ONLY / ALWAYS_EJECT enforcement verdict; the ``repro lint``
CLI surfaces them to humans and CI.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import ReproError
from repro.sql import ast
from repro.sql.analysis import (
    alias_map,
    all_conditions,
    conjuncts,
    disjuncts,
    has_left_join,
    tables_of_condition,
)
from repro.sql.printer import to_sql

Statement = Union[ast.Select, ast.Union]

#: Function names whose value depends on evaluation time, not the row.
#: Must stay in sync with ``repro.db.expr.NONDETERMINISTIC_FUNCTIONS``
#: (not imported: sql must not depend on the db layer).
NONDETERMINISTIC_FUNCTIONS = frozenset(
    {"NOW", "CURRENT_TIMESTAMP", "RAND", "RANDOM"}
)


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering is meaningful (ERROR > WARNING)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            valid = ", ".join(s.name.lower() for s in cls)
            raise ValueError(
                f"unknown severity {name!r} (expected one of: {valid})"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule that fired at a location in the query."""

    rule: str
    severity: Severity
    message: str
    #: ``(start, end)`` character offsets into :attr:`LintReport.sql`.
    span: Tuple[int, int]
    #: The text at ``span`` — the offending construct, printer-normalized.
    snippet: str
    hint: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.name.lower(),
            "message": self.message,
            "span": list(self.span),
            "snippet": self.snippet,
            "hint": self.hint,
        }


@dataclass(frozen=True)
class LintReport:
    """All findings for one statement, against its normalized SQL."""

    sql: str
    findings: Tuple[Finding, ...]

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.findings:
            return None
        return max(finding.severity for finding in self.findings)

    def at_or_above(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity >= severity]

    def to_dict(self) -> Dict[str, object]:
        return {
            "sql": self.sql,
            "findings": [finding.to_dict() for finding in self.findings],
            "max_severity": (
                self.max_severity.name.lower() if self.findings else None
            ),
        }


class _Linter:
    """Single-statement rule runner; collects findings against the
    printer-normalized SQL so spans are stable across formatting."""

    def __init__(self, stmt: Statement) -> None:
        self.stmt = stmt
        self.sql = to_sql(stmt)
        self.findings: List[Finding] = []

    # -- span helpers ---------------------------------------------------------

    def _span_of(self, fragment: str) -> Tuple[int, int]:
        start = self.sql.find(fragment)
        if start < 0:
            return (0, len(self.sql))
        return (start, start + len(fragment))

    def emit(
        self,
        rule: str,
        severity: Severity,
        message: str,
        node: Optional[ast.Expr] = None,
        fragment: Optional[str] = None,
        hint: str = "",
    ) -> None:
        if fragment is None:
            fragment = to_sql(node) if node is not None else self.sql
        span = self._span_of(fragment)
        self.findings.append(
            Finding(
                rule=rule,
                severity=severity,
                message=message,
                span=span,
                snippet=self.sql[span[0] : span[1]],
                hint=hint,
            )
        )

    # -- driver ---------------------------------------------------------------

    def run(self) -> LintReport:
        if isinstance(self.stmt, ast.Union):
            self.emit(
                "union-coarse-analysis",
                Severity.WARNING,
                "UNION queries get table-level analysis only: any update "
                "to a referenced table invalidates every instance",
                fragment=self.sql,
                hint="split the page into one query per UNION part",
            )
            for part in self.stmt.parts:
                self._lint_select(part)
        else:
            self._lint_select(self.stmt)
        ordered = sorted(
            self.findings, key=lambda f: (f.span[0], f.rule, f.message)
        )
        return LintReport(sql=self.sql, findings=tuple(ordered))

    def _lint_select(self, select: ast.Select) -> None:
        aliases = alias_map(select)
        conditions = all_conditions(select)
        self._check_nondeterministic(select)
        self._check_subqueries(select, aliases)
        self._check_left_join(select)
        seen_types: Dict[Tuple[Optional[str], str], Set[type]] = {}
        for condition in conditions:
            self._check_mixed_disjunction(condition, aliases)
            self._check_constant_predicate(condition)
            self._check_cross_type(condition, seen_types)
            self._check_unindexable(condition, aliases)
        self._check_unsatisfiable(conditions)

    # -- rules ----------------------------------------------------------------

    def _check_nondeterministic(self, select: ast.Select) -> None:
        for expr in ast._select_expressions(select):
            for node in ast.walk(expr):
                if (
                    isinstance(node, ast.FunctionCall)
                    and node.name in NONDETERMINISTIC_FUNCTIONS
                ):
                    self.emit(
                        "nondeterministic-function",
                        Severity.ERROR,
                        f"{node.name}() is evaluated at page-generation "
                        "time; the independence check cannot re-evaluate "
                        "it, so staleness is undetectable",
                        node=node,
                        hint="bind the value in the application and pass "
                        "it as a parameter",
                    )

    def _check_subqueries(
        self, select: ast.Select, aliases: Dict[str, str]
    ) -> None:
        for expr in ast._select_expressions(select):
            for node in ast.walk(expr):
                query: Optional[ast.Select] = None
                if isinstance(node, (ast.Exists, ast.InSelect)):
                    query = node.query
                elif isinstance(node, ast.ScalarSubquery):
                    query = node.query
                if query is None:
                    continue
                if self._is_correlated(query, aliases):
                    self.emit(
                        "correlated-subquery",
                        Severity.ERROR,
                        "correlated subquery: the inner result depends on "
                        "the outer row, which the per-tuple independence "
                        "check cannot model",
                        node=query,
                        hint="rewrite as a join, or accept conservative "
                        "ejection",
                    )
                else:
                    self.emit(
                        "uncorrelated-subquery",
                        Severity.WARNING,
                        "subquery forces conservative treatment: updates "
                        "to inner tables cannot be checked precisely "
                        "against the outer predicate",
                        node=query,
                        hint="rewrite as a join so both sides get local "
                        "predicate analysis",
                    )

    @staticmethod
    def _is_correlated(query: ast.Select, outer: Dict[str, str]) -> bool:
        inner = alias_map(query)
        for expr in ast._select_expressions(query):
            for node in ast.walk(expr):
                if (
                    isinstance(node, ast.ColumnRef)
                    and node.table is not None
                    and node.table.lower() not in inner
                    and node.table.lower() in outer
                ):
                    return True
        return False

    def _check_left_join(self, select: ast.Select) -> None:
        if not has_left_join(select):
            return
        self.emit(
            "left-join-null-extension",
            Severity.WARNING,
            "LEFT JOIN null-extends unmatched rows: deleting an inner-side "
            "row changes results without satisfying any join predicate, "
            "so per-predicate analysis is unsound",
            fragment="LEFT JOIN",
            hint="use an inner join when unmatched rows are not needed",
        )

    def _check_mixed_disjunction(
        self, condition: ast.Expr, aliases: Dict[str, str]
    ) -> None:
        parts = disjuncts(condition)
        if len(parts) < 2:
            return
        table_sets = [tables_of_condition(part, aliases) for part in parts]
        mixes_join = any(len(tables) > 1 for tables in table_sets)
        spans_tables = len({frozenset(tables) for tables in table_sets}) > 1
        if mixes_join or spans_tables:
            self.emit(
                "mixed-disjunction",
                Severity.WARNING,
                "OR mixes predicates over different tables: the disjunction "
                "cannot be split into local per-table conditions",
                node=condition,
                hint="split the page query per disjunct or denormalize",
            )

    def _check_constant_predicate(self, condition: ast.Expr) -> None:
        for conjunct in conjuncts(condition):
            if not self._is_constant(conjunct):
                continue
            value = self._constant_value(conjunct)
            if value is _UNEVALUABLE:
                continue
            if value is True:
                self.emit(
                    "tautological-predicate",
                    Severity.INFO,
                    "predicate is always true: it filters nothing but "
                    "still occupies analysis and index slots",
                    node=conjunct,
                    hint="drop the predicate",
                )
            else:
                self.emit(
                    "contradictory-predicate",
                    Severity.WARNING,
                    "predicate can never be true: the instance matches no "
                    "rows yet pins registry and cache entries",
                    node=conjunct,
                    hint="remove the query or fix the predicate",
                )

    @staticmethod
    def _is_constant(expr: ast.Expr) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, (ast.ColumnRef, ast.Parameter, ast.Star)):
                return False
            if isinstance(
                node, (ast.Exists, ast.InSelect, ast.ScalarSubquery)
            ):
                return False
            if (
                isinstance(node, ast.FunctionCall)
                and node.name in NONDETERMINISTIC_FUNCTIONS
            ):
                return False
        return True

    @staticmethod
    def _constant_value(expr: ast.Expr) -> object:
        from repro.db.expr import Scope, evaluate

        try:
            return evaluate(expr, (), Scope([]))
        except ReproError:
            return _UNEVALUABLE

    def _check_unsatisfiable(self, conditions: Sequence[ast.Expr]) -> None:
        """Flag WHERE conjunctions no row can ever satisfy (e.g.
        ``x > 5 AND x < 3``): the interval arithmetic of
        :mod:`repro.sql.satisfiability` folds every per-column atom and
        reports the first column whose region is empty.  Column-free
        contradictions are owned by ``contradictory-predicate``."""
        from repro.sql.satisfiability import extract, unsatisfiable_columns

        flat = [
            conjunct
            for condition in conditions
            for conjunct in conjuncts(condition)
        ]
        found = unsatisfiable_columns(extract(flat))
        if found is None:
            return
        column, atoms, origins = found
        parts = " AND ".join(
            to_sql(origin) for origin in origins
        ) or f"constraints on {column!r}"
        self.emit(
            "unsatisfiable-conjunction",
            Severity.WARNING,
            f"conjunction admits no value of {column!r} ({parts}): the "
            "query matches no rows for any binding, yet pins registry "
            "and cache entries",
            node=origins[0] if origins else None,
            hint="fix the contradictory bounds or drop the query",
        )

    def _check_cross_type(
        self,
        condition: ast.Expr,
        seen: Dict[Tuple[Optional[str], str], Set[type]],
    ) -> None:
        for conjunct in conjuncts(condition):
            for node in ast.walk(conjunct):
                for column, literal in _column_literal_pairs(node):
                    if literal.value is None:
                        continue
                    kind = (
                        str if isinstance(literal.value, str) else float
                    )
                    key = (
                        column.table.lower() if column.table else None,
                        column.column.lower(),
                    )
                    kinds = seen.setdefault(key, set())
                    if kinds and kind not in kinds:
                        self.emit(
                            "cross-type-comparison",
                            Severity.WARNING,
                            f"column {column.column!r} is compared with "
                            "both numeric and string literals; SQL total "
                            "order makes one branch vacuous",
                            node=node,
                            hint="fix the literal type",
                        )
                    kinds.add(kind)

    def _check_unindexable(
        self, condition: ast.Expr, aliases: Dict[str, str]
    ) -> None:
        if any(
            isinstance(node, (ast.Exists, ast.InSelect, ast.ScalarSubquery))
            for node in ast.walk(condition)
        ):
            return  # covered by the subquery rules
        tables = tables_of_condition(condition, aliases)
        if len(tables) != 1:
            return
        if self._indexable_shape(condition):
            return
        if self._is_constant(condition):
            return  # covered by the constant-predicate rules
        self.emit(
            "unindexable-local-conjunct",
            Severity.INFO,
            "local predicate has no index-friendly shape: every update to "
            f"{next(iter(tables))!r} falls back to a residual scan of "
            "this instance",
            node=condition,
            hint="prefer =, IN, range, or IS NULL on a bare column",
        )

    @staticmethod
    def _indexable_shape(condition: ast.Expr) -> bool:
        if isinstance(condition, ast.Binary):
            if condition.op not in ast.COMPARISONS:
                return False
            if condition.op is ast.BinaryOp.NE:
                return False
            sides = (condition.left, condition.right)
            return any(
                isinstance(side, ast.ColumnRef)
                and _column_free(other)
                for side, other in (sides, sides[::-1])
            )
        if isinstance(condition, ast.Between):
            return (
                not condition.negated
                and isinstance(condition.expr, ast.ColumnRef)
                and _column_free(condition.low)
                and _column_free(condition.high)
            )
        if isinstance(condition, ast.InList):
            return (
                not condition.negated
                and isinstance(condition.expr, ast.ColumnRef)
                and all(_column_free(item) for item in condition.items)
            )
        if isinstance(condition, ast.IsNull):
            return isinstance(condition.expr, ast.ColumnRef)
        return False


_UNEVALUABLE = object()


def _column_free(expr: ast.Expr) -> bool:
    return not any(
        isinstance(node, (ast.ColumnRef, ast.Star)) for node in ast.walk(expr)
    )


def _column_literal_pairs(
    node: ast.Expr,
) -> List[Tuple[ast.ColumnRef, ast.Literal]]:
    """Direct column-vs-literal comparisons inside one node."""
    pairs: List[Tuple[ast.ColumnRef, ast.Literal]] = []
    if isinstance(node, ast.Binary) and node.op in ast.COMPARISONS:
        left, right = node.left, node.right
        if isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal):
            pairs.append((left, right))
        if isinstance(right, ast.ColumnRef) and isinstance(left, ast.Literal):
            pairs.append((right, left))
    elif isinstance(node, ast.Between):
        if isinstance(node.expr, ast.ColumnRef):
            for bound in (node.low, node.high):
                if isinstance(bound, ast.Literal):
                    pairs.append((node.expr, bound))
    elif isinstance(node, ast.InList):
        if isinstance(node.expr, ast.ColumnRef):
            for item in node.items:
                if isinstance(item, ast.Literal):
                    pairs.append((node.expr, item))
    return pairs


def lint_statement(stmt: Statement) -> LintReport:
    """Lint one parsed SELECT or UNION."""
    return _Linter(stmt).run()


def lint_sql(sql: str) -> LintReport:
    """Parse and lint one SQL string.

    Parse failures and non-SELECT statements become findings themselves
    (rules ``parse-error`` / ``not-a-select``) so workload audits never
    abort half way.
    """
    from repro.sql.parser import parse_statement

    try:
        stmt = parse_statement(sql)
    except ReproError as exc:
        finding = Finding(
            rule="parse-error",
            severity=Severity.ERROR,
            message=str(exc),
            span=(0, len(sql)),
            snippet=sql,
            hint="fix the statement syntax",
        )
        return LintReport(sql=sql, findings=(finding,))
    if not isinstance(stmt, (ast.Select, ast.Union)):
        finding = Finding(
            rule="not-a-select",
            severity=Severity.ERROR,
            message="only SELECT (or UNION of SELECTs) page queries are "
            "cacheable; DML/DDL cannot be registered as a query type",
            span=(0, len(sql)),
            snippet=sql,
            hint="remove the statement from the page workload",
        )
        return LintReport(sql=sql, findings=(finding,))
    return lint_statement(stmt)
