"""Query-instance ↔ query-type conversion (paper §2.3.2 and §4.1.2).

A *query instance* is a fully bound SELECT as issued by the application
server, e.g.::

    SELECT * FROM car WHERE car.price < 25000

Its *query type* replaces the constants that vary across instances with
positional parameters::

    SELECT * FROM car WHERE car.price < $1        -- bindings: (25000,)

The invalidator registers query types once and keeps one binding tuple per
instance, which is what makes grouping "related instances" (§4.1.2)
possible: two instances of the same type share all analysis work.

Only literals inside the WHERE/HAVING clauses and join ON conditions are
parameterized; constants in the select list are part of the page structure,
not of the data selection, and stay inline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

from repro.errors import ExecutionError, SQLError
from repro.sql import ast
from repro.sql.printer import to_sql

Value = Union[int, float, str, bool, None]


@dataclass(frozen=True)
class ParameterizedQuery:
    """A query type plus the bindings extracted from one instance.

    Attributes:
        template: the SELECT with :class:`~repro.sql.ast.Parameter` nodes.
        bindings: constants extracted, ordered by parameter index.
        signature: canonical SQL text of the template — the query-type key.
    """

    template: Union[ast.Select, "ast.Union"]
    bindings: Tuple[Value, ...]
    signature: str


class _Extractor:
    """Rewrites literals to parameters while collecting their values."""

    def __init__(self) -> None:
        self.bindings: List[Value] = []
        #: Pre-existing placeholders seen while extracting.  They collide
        #: with the indexes handed to lifted literals and print in whatever
        #: style (``?`` vs ``$n``) the template author used, so the caller
        #: canonicalizes the whole statement when this is set.
        self.saw_parameters = False

    def rewrite(self, node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.Parameter):
            self.saw_parameters = True
            return node
        if isinstance(node, ast.Literal):
            self.bindings.append(node.value)
            return ast.Parameter(len(self.bindings))
        if isinstance(node, ast.Binary):
            return ast.Binary(node.op, self.rewrite(node.left), self.rewrite(node.right))
        if isinstance(node, ast.Unary):
            return ast.Unary(node.op, self.rewrite(node.operand))
        if isinstance(node, ast.Between):
            return ast.Between(
                self.rewrite(node.expr),
                self.rewrite(node.low),
                self.rewrite(node.high),
                node.negated,
            )
        if isinstance(node, ast.InList):
            return ast.InList(
                self.rewrite(node.expr),
                tuple(self.rewrite(item) for item in node.items),
                node.negated,
            )
        if isinstance(node, ast.IsNull):
            return ast.IsNull(self.rewrite(node.expr), node.negated)
        if isinstance(node, ast.FunctionCall):
            return ast.FunctionCall(
                node.name, tuple(self.rewrite(arg) for arg in node.args), node.distinct
            )
        if isinstance(node, ast.Case):
            whens = tuple(
                (self.rewrite(cond), self.rewrite(value)) for cond, value in node.whens
            )
            default = self.rewrite(node.default) if node.default is not None else None
            return ast.Case(whens, default)
        if isinstance(node, ast.Exists):
            return ast.Exists(
                _rewrite_select_conditions(node.query, self.rewrite), node.negated
            )
        if isinstance(node, ast.InSelect):
            return ast.InSelect(
                self.rewrite(node.expr),
                _rewrite_select_conditions(node.query, self.rewrite),
                node.negated,
            )
        if isinstance(node, ast.ScalarSubquery):
            return ast.ScalarSubquery(
                _rewrite_select_conditions(node.query, self.rewrite)
            )
        # ColumnRef, Parameter, Star: nothing to extract.
        return node


class _Renumberer:
    """Canonicalizes placeholders to sequential ``$1..$n``.

    Applied to the *original* statement (literals still inline) when it
    mixes placeholders with constants: literals and anonymous ``?``
    markers each take the next index, while a repeated ``$k`` keeps
    mapping to the same new index so value-sharing semantics (``a = $1 OR
    b = $1``) survive.  The walk order matches :class:`_Extractor`
    exactly, which is what makes ``price < ?``, ``price < $3`` and
    ``price < 20000`` all canonicalize to the same ``price < $1``
    signature.
    """

    def __init__(self) -> None:
        self._mapping: dict = {}
        self._next = 0

    def rewrite(self, node: ast.Expr) -> ast.Expr:
        if isinstance(node, (ast.Literal, ast.Parameter)):
            if isinstance(node, ast.Parameter) and node.index is not None:
                if node.index not in self._mapping:
                    self._next += 1
                    self._mapping[node.index] = self._next
                return ast.Parameter(self._mapping[node.index])
            self._next += 1
            return ast.Parameter(self._next)
        if isinstance(node, ast.Binary):
            return ast.Binary(node.op, self.rewrite(node.left), self.rewrite(node.right))
        if isinstance(node, ast.Unary):
            return ast.Unary(node.op, self.rewrite(node.operand))
        if isinstance(node, ast.Between):
            return ast.Between(
                self.rewrite(node.expr),
                self.rewrite(node.low),
                self.rewrite(node.high),
                node.negated,
            )
        if isinstance(node, ast.InList):
            return ast.InList(
                self.rewrite(node.expr),
                tuple(self.rewrite(item) for item in node.items),
                node.negated,
            )
        if isinstance(node, ast.IsNull):
            return ast.IsNull(self.rewrite(node.expr), node.negated)
        if isinstance(node, ast.FunctionCall):
            return ast.FunctionCall(
                node.name, tuple(self.rewrite(arg) for arg in node.args), node.distinct
            )
        if isinstance(node, ast.Case):
            whens = tuple(
                (self.rewrite(cond), self.rewrite(value)) for cond, value in node.whens
            )
            default = self.rewrite(node.default) if node.default is not None else None
            return ast.Case(whens, default)
        if isinstance(node, ast.Exists):
            return ast.Exists(
                _rewrite_select_conditions(node.query, self.rewrite), node.negated
            )
        if isinstance(node, ast.InSelect):
            return ast.InSelect(
                self.rewrite(node.expr),
                _rewrite_select_conditions(node.query, self.rewrite),
                node.negated,
            )
        if isinstance(node, ast.ScalarSubquery):
            return ast.ScalarSubquery(
                _rewrite_select_conditions(node.query, self.rewrite)
            )
        return node


def _rewrite_source(source: ast.FromSource, rewrite: Callable[[ast.Expr], ast.Expr]) -> ast.FromSource:
    if isinstance(source, (ast.TableRef, ast.ValuesSource)):
        # VALUES rows are instance payload (probe parameters), never part
        # of the query type's selection structure — leave them inline.
        return source
    on = rewrite(source.on) if source.on is not None else None
    return ast.Join(
        source.kind,
        _rewrite_source(source.left, rewrite),
        _rewrite_source(source.right, rewrite),
        on,
    )


def _rewrite_select_conditions(
    stmt: ast.Select, rewrite: Callable[[ast.Expr], ast.Expr]
) -> ast.Select:
    """Rewrite a (sub)query's WHERE/HAVING/ON with ``rewrite``.

    The select list and grouping keys stay untouched — like top-level
    parameterization, only data-selection constants are lifted.
    """
    where = rewrite(stmt.where) if stmt.where is not None else None
    having = rewrite(stmt.having) if stmt.having is not None else None
    sources = tuple(_rewrite_source(source, rewrite) for source in stmt.sources)
    return ast.Select(
        items=stmt.items,
        sources=sources,
        where=where,
        group_by=stmt.group_by,
        having=having,
        order_by=stmt.order_by,
        limit=stmt.limit,
        offset=stmt.offset,
        distinct=stmt.distinct,
    )


def _rewrite_statement(
    stmt: Union[ast.Select, ast.Union],
    rewrite: Callable[[ast.Expr], ast.Expr],
) -> Union[ast.Select, ast.Union]:
    """Rewrite the data-selection expressions of a SELECT or UNION."""
    if isinstance(stmt, ast.Union):
        parts = tuple(
            _rewrite_select_conditions(part, rewrite) for part in stmt.parts
        )
        return ast.Union(
            parts, stmt.all_flags, stmt.order_by, stmt.limit, stmt.offset
        )
    return _rewrite_select_conditions(stmt, rewrite)


def parameterize(stmt) -> ParameterizedQuery:
    """Turn a bound SELECT (or UNION) into its query type plus bindings.

    A statement that already contains ``?``/``$n`` placeholders (offline
    template registration rather than a sniffed instance) is renumbered to
    canonical sequential ``$1..$n`` in a second pass, so that ``price <
    ?``, ``price < $3`` and ``price < 20000`` all produce one signature
    instead of registering as distinct query types.  Such templates carry
    no bindings; fully bound instances never contain placeholders and
    keep the identity mapping between bindings and parameter indexes.
    """
    extractor = _Extractor()
    template = _rewrite_statement(stmt, extractor.rewrite)
    bindings: Tuple[Value, ...] = tuple(extractor.bindings)
    if extractor.saw_parameters:
        template = _rewrite_statement(stmt, _Renumberer().rewrite)
        bindings = ()
    return ParameterizedQuery(
        template=template,
        bindings=bindings,
        signature=to_sql(template),
    )


def polling_key(stmt: Union[ast.Select, ast.Union]) -> Tuple[str, Tuple[Value, ...]]:
    """Canonical identity of a *bound* query: (type signature, bindings).

    Two polling queries coalesce exactly when they select the same data —
    same parameterized template AND same constants.  Keying a cycle's
    result memo by printed SQL misses equivalent spellings (``price <
    20000`` vs ``price < 20000.0`` print differently; alias or literal
    formatting differences likewise), while keying by signature alone
    would wrongly merge different constants.  This key recovers the former
    without the latter: bindings are compared with Python equality, which
    matches SQL numeric equality for the int/float values that reach the
    invalidator.
    """
    parameterized = parameterize(stmt)
    return parameterized.signature, parameterized.bindings


class _Binder:
    """Substitutes parameters with their bound values."""

    def __init__(self, bindings: Tuple[Value, ...]) -> None:
        self.bindings = bindings
        self._anonymous_next = 0

    def rewrite(self, node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.Parameter):
            if node.index is None:
                index = self._anonymous_next
                self._anonymous_next += 1
            else:
                index = node.index - 1
            if index < 0 or index >= len(self.bindings):
                raise ExecutionError(
                    f"parameter ${index + 1} has no binding "
                    f"(got {len(self.bindings)} values)"
                )
            return ast.Literal(self.bindings[index])
        if isinstance(node, ast.Binary):
            return ast.Binary(node.op, self.rewrite(node.left), self.rewrite(node.right))
        if isinstance(node, ast.Unary):
            return ast.Unary(node.op, self.rewrite(node.operand))
        if isinstance(node, ast.Between):
            return ast.Between(
                self.rewrite(node.expr),
                self.rewrite(node.low),
                self.rewrite(node.high),
                node.negated,
            )
        if isinstance(node, ast.InList):
            return ast.InList(
                self.rewrite(node.expr),
                tuple(self.rewrite(item) for item in node.items),
                node.negated,
            )
        if isinstance(node, ast.IsNull):
            return ast.IsNull(self.rewrite(node.expr), node.negated)
        if isinstance(node, ast.FunctionCall):
            return ast.FunctionCall(
                node.name, tuple(self.rewrite(arg) for arg in node.args), node.distinct
            )
        if isinstance(node, ast.Case):
            whens = tuple(
                (self.rewrite(cond), self.rewrite(value)) for cond, value in node.whens
            )
            default = self.rewrite(node.default) if node.default is not None else None
            return ast.Case(whens, default)
        if isinstance(node, ast.Exists):
            return ast.Exists(
                _rewrite_select_conditions(node.query, self.rewrite), node.negated
            )
        if isinstance(node, ast.InSelect):
            return ast.InSelect(
                self.rewrite(node.expr),
                _rewrite_select_conditions(node.query, self.rewrite),
                node.negated,
            )
        if isinstance(node, ast.ScalarSubquery):
            return ast.ScalarSubquery(
                _rewrite_select_conditions(node.query, self.rewrite)
            )
        return node


class _Numberer(_Binder):
    """Rewrites anonymous ``?`` markers to explicit ``$n`` parameters.

    Walks exactly like :class:`_Binder` (it reuses the traversal), so the
    k-th anonymous marker receives the index ``_Binder`` would have bound
    it with.  Explicit ``$n`` parameters pass through unchanged.  Used by
    the engine's plan cache: a numbered statement plans once and executes
    under any bindings, with parameters resolved at runtime.
    """

    def __init__(self) -> None:
        super().__init__(())

    def rewrite(self, node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.Parameter):
            if node.index is None:
                index = self._anonymous_next
                self._anonymous_next += 1
                return ast.Parameter(index + 1)
            return node
        return super().rewrite(node)


def number_parameters(stmt: ast.Statement) -> ast.Statement:
    """Return ``stmt`` with anonymous ``?`` parameters numbered ``$1..$n``.

    Statement kinds without bindable expressions are returned unchanged.
    """
    numberer = _Numberer()
    if isinstance(stmt, ast.Select):
        return _bind_select(stmt, numberer)
    if isinstance(stmt, ast.Union):
        parts = tuple(_bind_select(part, numberer) for part in stmt.parts)
        return ast.Union(
            parts, stmt.all_flags, stmt.order_by, stmt.limit, stmt.offset
        )
    return stmt


def _bind_select(stmt: ast.Select, binder: "_Binder") -> ast.Select:
    where = binder.rewrite(stmt.where) if stmt.where is not None else None
    having = binder.rewrite(stmt.having) if stmt.having is not None else None
    sources = tuple(_rewrite_source(source, binder.rewrite) for source in stmt.sources)
    items = tuple(
        ast.SelectItem(binder.rewrite(item.expr), item.alias) for item in stmt.items
    )
    group_by = tuple(binder.rewrite(expr) for expr in stmt.group_by)
    order_by = tuple(
        ast.OrderItem(binder.rewrite(item.expr), item.descending)
        for item in stmt.order_by
    )
    return ast.Select(
        items=items,
        sources=sources,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=stmt.limit,
        offset=stmt.offset,
        distinct=stmt.distinct,
    )


def bind_expression(expr: Optional[ast.Expr], bindings: Tuple[Value, ...]) -> Optional[ast.Expr]:
    """Substitute the parameters of a bare expression with ``bindings``."""
    if expr is None:
        return None
    return _Binder(bindings).rewrite(expr)


def bind_parameters(stmt: ast.Statement, bindings: Tuple[Value, ...]) -> ast.Statement:
    """Substitute all parameters in ``stmt`` with the given ``bindings``.

    Anonymous ``?`` placeholders consume bindings left to right; ``$n``
    placeholders index into ``bindings`` directly (1-based).  Mixing both
    styles in one statement is allowed but rarely wise.
    """
    binder = _Binder(tuple(bindings))
    if isinstance(stmt, ast.Select):
        return _bind_select(stmt, binder)
    if isinstance(stmt, ast.Union):
        parts = tuple(_bind_select(part, binder) for part in stmt.parts)
        return ast.Union(
            parts, stmt.all_flags, stmt.order_by, stmt.limit, stmt.offset
        )
    if isinstance(stmt, ast.Insert):
        rows = tuple(
            tuple(binder.rewrite(value) for value in row) for row in stmt.rows
        )
        return ast.Insert(stmt.table, stmt.columns, rows)
    if isinstance(stmt, ast.Update):
        assignments = tuple(
            (column, binder.rewrite(value)) for column, value in stmt.assignments
        )
        where = binder.rewrite(stmt.where) if stmt.where is not None else None
        return ast.Update(stmt.table, assignments, where)
    if isinstance(stmt, ast.Delete):
        where = binder.rewrite(stmt.where) if stmt.where is not None else None
        return ast.Delete(stmt.table, where)
    raise SQLError(f"cannot bind parameters in {type(stmt).__name__}")
