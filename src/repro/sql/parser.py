"""Recursive-descent parser for the SQL dialect.

Grammar (informal)::

    statement   := select | insert | update | delete
                 | create_table | create_index | drop_table
    select      := SELECT [DISTINCT] items FROM sources
                   [WHERE expr] [GROUP BY exprs [HAVING expr]]
                   [ORDER BY order_items] [LIMIT n [OFFSET m]]
    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | predicate
    predicate   := additive [comparison | BETWEEN | IN | LIKE | IS NULL]
    additive    := multiplicative ((+|-|'||') multiplicative)*
    multiplicative := unary ((*|/|%) unary)*
    unary       := [-|+] primary
    primary     := literal | parameter | column | function | '(' expr ')'
                 | CASE ... END
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenKind

_COMPARISON_OPS = {
    "=": ast.BinaryOp.EQ,
    "<>": ast.BinaryOp.NE,
    "!=": ast.BinaryOp.NE,
    "<": ast.BinaryOp.LT,
    "<=": ast.BinaryOp.LE,
    ">": ast.BinaryOp.GT,
    ">=": ast.BinaryOp.GE,
}

_ADDITIVE_OPS = {
    "+": ast.BinaryOp.ADD,
    "-": ast.BinaryOp.SUB,
    "||": ast.BinaryOp.CONCAT,
}

_MULTIPLICATIVE_OPS = {
    "*": ast.BinaryOp.MUL,
    "/": ast.BinaryOp.DIV,
    "%": ast.BinaryOp.MOD,
}

_TYPE_KEYWORDS = {"INT": "INT", "INTEGER": "INT", "REAL": "REAL", "TEXT": "TEXT"}

_FUNCTION_KEYWORDS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


class Parser:
    """Parses one SQL statement (or a bare expression) from source text."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens: List[Token] = tokenize(source)
        self.pos = 0
        self._anonymous_params = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _check(self, kind: TokenKind, value: Optional[str] = None) -> bool:
        return self._peek().matches(kind, value)

    def _accept(self, kind: TokenKind, value: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, value: Optional[str] = None) -> Token:
        token = self._accept(kind, value)
        if token is None:
            actual = self._peek()
            wanted = value or kind.value
            raise ParseError(
                f"expected {wanted}, found {actual.value or 'end of input'!r} "
                f"at offset {actual.position} in {self.source!r}"
            )
        return token

    def _keyword(self, word: str) -> bool:
        return self._accept(TokenKind.KEYWORD, word) is not None

    # -- entry points -------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        """Parse a single statement and require end of input (``;`` allowed)."""
        statement = self._statement()
        self._accept(TokenKind.PUNCT, ";")
        self._expect(TokenKind.EOF)
        return statement

    def parse_expression(self) -> ast.Expr:
        """Parse a bare expression and require end of input."""
        expr = self._expr()
        self._expect(TokenKind.EOF)
        return expr

    # -- statements ---------------------------------------------------------

    def _statement(self) -> ast.Statement:
        token = self._peek()
        if token.kind is not TokenKind.KEYWORD:
            raise ParseError(f"expected a statement, found {token.value!r}")
        if token.value == "SELECT":
            return self._select()
        if token.value == "INSERT":
            return self._insert()
        if token.value == "UPDATE":
            return self._update()
        if token.value == "DELETE":
            return self._delete()
        if token.value == "CREATE":
            return self._create()
        if token.value == "DROP":
            return self._drop()
        if token.value == "EXPLAIN":
            self._advance()
            return ast.Explain(self._select())
        if token.value == "BEGIN":
            self._advance()
            self._keyword("TRANSACTION")
            return ast.BeginTransaction()
        if token.value == "COMMIT":
            self._advance()
            self._keyword("TRANSACTION")
            return ast.CommitTransaction()
        if token.value == "ROLLBACK":
            self._advance()
            self._keyword("TRANSACTION")
            return ast.RollbackTransaction()
        raise ParseError(f"unsupported statement starting with {token.value}")

    def _select(self) -> ast.Statement:
        """A possibly-compound select: cores joined by UNION [ALL], with
        one trailing ORDER BY / LIMIT applying to the whole."""
        parts = [self._select_core()]
        all_flags: List[bool] = []
        while self._keyword("UNION"):
            all_flags.append(self._keyword("ALL"))
            parts.append(self._select_core())
        order_by, limit, offset = self._select_tail()
        if len(parts) == 1:
            core = parts[0]
            if order_by or limit is not None or offset is not None:
                return ast.Select(
                    items=core.items,
                    sources=core.sources,
                    where=core.where,
                    group_by=core.group_by,
                    having=core.having,
                    order_by=order_by,
                    limit=limit,
                    offset=offset,
                    distinct=core.distinct,
                )
            return core
        return ast.Union(
            parts=tuple(parts),
            all_flags=tuple(all_flags),
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    def _select_core(self) -> ast.Select:
        """One SELECT without its trailing ORDER BY / LIMIT."""
        self._expect(TokenKind.KEYWORD, "SELECT")
        distinct = self._keyword("DISTINCT")
        if not distinct:
            self._keyword("ALL")
        items = [self._select_item()]
        while self._accept(TokenKind.PUNCT, ","):
            items.append(self._select_item())

        sources: Tuple[ast.FromSource, ...] = ()
        if self._keyword("FROM"):
            sources = tuple(self._from_sources())

        where = self._expr() if self._keyword("WHERE") else None

        group_by: Tuple[ast.Expr, ...] = ()
        having = None
        if self._keyword("GROUP"):
            self._expect(TokenKind.KEYWORD, "BY")
            exprs = [self._expr()]
            while self._accept(TokenKind.PUNCT, ","):
                exprs.append(self._expr())
            group_by = tuple(exprs)
            if self._keyword("HAVING"):
                having = self._expr()

        return ast.Select(
            items=tuple(items),
            sources=sources,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

    def _select_tail(self):
        order_by: Tuple[ast.OrderItem, ...] = ()
        if self._keyword("ORDER"):
            self._expect(TokenKind.KEYWORD, "BY")
            order_items = [self._order_item()]
            while self._accept(TokenKind.PUNCT, ","):
                order_items.append(self._order_item())
            order_by = tuple(order_items)
        limit = offset = None
        if self._keyword("LIMIT"):
            limit = self._integer()
            if self._keyword("OFFSET"):
                offset = self._integer()
        return order_by, limit, offset

    def _parenthesized_select(self) -> ast.Select:
        """``( SELECT ... )`` — a subquery; tail clauses are allowed."""
        self._expect(TokenKind.PUNCT, "(")
        core = self._select_core()
        order_by, limit, offset = self._select_tail()
        self._expect(TokenKind.PUNCT, ")")
        if order_by or limit is not None or offset is not None:
            core = ast.Select(
                items=core.items,
                sources=core.sources,
                where=core.where,
                group_by=core.group_by,
                having=core.having,
                order_by=order_by,
                limit=limit,
                offset=offset,
                distinct=core.distinct,
            )
        return core

    def _select_item(self) -> ast.SelectItem:
        if self._check(TokenKind.OPERATOR, "*"):
            self._advance()
            return ast.SelectItem(ast.Star())
        # table.* form
        if (
            self._check(TokenKind.IDENTIFIER)
            and self._peek(1).matches(TokenKind.PUNCT, ".")
            and self._peek(2).matches(TokenKind.OPERATOR, "*")
        ):
            table = self._advance().value
            self._advance()  # .
            self._advance()  # *
            return ast.SelectItem(ast.Star(table=table))
        expr = self._expr()
        alias = None
        if self._keyword("AS"):
            alias = self._expect(TokenKind.IDENTIFIER).value
        elif self._check(TokenKind.IDENTIFIER):
            alias = self._advance().value
        return ast.SelectItem(expr, alias)

    def _order_item(self) -> ast.OrderItem:
        expr = self._expr()
        descending = False
        if self._keyword("DESC"):
            descending = True
        else:
            self._keyword("ASC")
        return ast.OrderItem(expr, descending)

    def _from_sources(self) -> List[ast.FromSource]:
        sources = [self._join_chain()]
        while self._accept(TokenKind.PUNCT, ","):
            sources.append(self._join_chain())
        return sources

    def _join_chain(self) -> ast.FromSource:
        left: ast.FromSource = self._from_item()
        while True:
            if self._keyword("CROSS"):
                self._expect(TokenKind.KEYWORD, "JOIN")
                right = self._from_item()
                left = ast.Join(ast.JoinKind.CROSS, left, right)
                continue
            kind = None
            if self._keyword("INNER"):
                kind = ast.JoinKind.INNER
            elif self._keyword("LEFT"):
                self._keyword("OUTER")
                kind = ast.JoinKind.LEFT
            elif self._check(TokenKind.KEYWORD, "JOIN"):
                kind = ast.JoinKind.INNER
            if kind is None:
                return left
            self._expect(TokenKind.KEYWORD, "JOIN")
            right = self._from_item()
            self._expect(TokenKind.KEYWORD, "ON")
            on = self._expr()
            left = ast.Join(kind, left, right, on)

    def _from_item(self) -> ast.FromSource:
        if self._check(TokenKind.PUNCT, "(") and self._peek(1).matches(
            TokenKind.KEYWORD, "VALUES"
        ):
            return self._values_source()
        return self._table_ref()

    def _values_source(self) -> ast.ValuesSource:
        """``( VALUES (expr, ...), ... ) AS name (col, ...)``."""
        self._expect(TokenKind.PUNCT, "(")
        self._expect(TokenKind.KEYWORD, "VALUES")
        rows = [self._value_row()]
        while self._accept(TokenKind.PUNCT, ","):
            rows.append(self._value_row())
        self._expect(TokenKind.PUNCT, ")")
        self._keyword("AS")
        name = self._expect(TokenKind.IDENTIFIER).value
        self._expect(TokenKind.PUNCT, "(")
        columns = [self._expect(TokenKind.IDENTIFIER).value]
        while self._accept(TokenKind.PUNCT, ","):
            columns.append(self._expect(TokenKind.IDENTIFIER).value)
        self._expect(TokenKind.PUNCT, ")")
        width = len(columns)
        for row in rows:
            if len(row) != width:
                raise ParseError(
                    f"VALUES row has {len(row)} values but {name} declares "
                    f"{width} columns"
                )
        return ast.ValuesSource(tuple(rows), name, tuple(columns))

    def _table_ref(self) -> ast.TableRef:
        name = self._expect(TokenKind.IDENTIFIER).value
        alias = None
        if self._keyword("AS"):
            alias = self._expect(TokenKind.IDENTIFIER).value
        elif self._check(TokenKind.IDENTIFIER):
            alias = self._advance().value
        return ast.TableRef(name, alias)

    def _insert(self) -> ast.Insert:
        self._expect(TokenKind.KEYWORD, "INSERT")
        self._expect(TokenKind.KEYWORD, "INTO")
        table = self._expect(TokenKind.IDENTIFIER).value
        columns: Tuple[str, ...] = ()
        if self._accept(TokenKind.PUNCT, "("):
            names = [self._expect(TokenKind.IDENTIFIER).value]
            while self._accept(TokenKind.PUNCT, ","):
                names.append(self._expect(TokenKind.IDENTIFIER).value)
            self._expect(TokenKind.PUNCT, ")")
            columns = tuple(names)
        self._expect(TokenKind.KEYWORD, "VALUES")
        rows = [self._value_row()]
        while self._accept(TokenKind.PUNCT, ","):
            rows.append(self._value_row())
        return ast.Insert(table, columns, tuple(rows))

    def _value_row(self) -> Tuple[ast.Expr, ...]:
        self._expect(TokenKind.PUNCT, "(")
        values = [self._expr()]
        while self._accept(TokenKind.PUNCT, ","):
            values.append(self._expr())
        self._expect(TokenKind.PUNCT, ")")
        return tuple(values)

    def _update(self) -> ast.Update:
        self._expect(TokenKind.KEYWORD, "UPDATE")
        table = self._expect(TokenKind.IDENTIFIER).value
        self._expect(TokenKind.KEYWORD, "SET")
        assignments = [self._assignment()]
        while self._accept(TokenKind.PUNCT, ","):
            assignments.append(self._assignment())
        where = self._expr() if self._keyword("WHERE") else None
        return ast.Update(table, tuple(assignments), where)

    def _assignment(self) -> Tuple[str, ast.Expr]:
        column = self._expect(TokenKind.IDENTIFIER).value
        self._expect(TokenKind.OPERATOR, "=")
        return column, self._expr()

    def _delete(self) -> ast.Delete:
        self._expect(TokenKind.KEYWORD, "DELETE")
        self._expect(TokenKind.KEYWORD, "FROM")
        table = self._expect(TokenKind.IDENTIFIER).value
        where = self._expr() if self._keyword("WHERE") else None
        return ast.Delete(table, where)

    def _create(self) -> ast.Statement:
        self._expect(TokenKind.KEYWORD, "CREATE")
        unique = self._keyword("UNIQUE")
        if self._keyword("INDEX"):
            name = self._expect(TokenKind.IDENTIFIER).value
            self._expect(TokenKind.KEYWORD, "ON")
            table = self._expect(TokenKind.IDENTIFIER).value
            self._expect(TokenKind.PUNCT, "(")
            columns = [self._expect(TokenKind.IDENTIFIER).value]
            while self._accept(TokenKind.PUNCT, ","):
                columns.append(self._expect(TokenKind.IDENTIFIER).value)
            self._expect(TokenKind.PUNCT, ")")
            return ast.CreateIndex(name, table, tuple(columns), unique)
        if unique:
            raise ParseError("UNIQUE is only supported for CREATE INDEX")
        self._expect(TokenKind.KEYWORD, "TABLE")
        if_not_exists = False
        if self._keyword("IF"):
            self._expect(TokenKind.KEYWORD, "NOT")
            self._expect(TokenKind.KEYWORD, "EXISTS")
            if_not_exists = True
        table = self._expect(TokenKind.IDENTIFIER).value
        self._expect(TokenKind.PUNCT, "(")
        columns = [self._column_def()]
        while self._accept(TokenKind.PUNCT, ","):
            columns.append(self._column_def())
        self._expect(TokenKind.PUNCT, ")")
        return ast.CreateTable(table, tuple(columns), if_not_exists)

    def _column_def(self) -> ast.ColumnDef:
        name = self._expect(TokenKind.IDENTIFIER).value
        type_token = self._peek()
        if type_token.kind is not TokenKind.KEYWORD or type_token.value not in _TYPE_KEYWORDS:
            raise ParseError(
                f"expected a column type (INT, REAL, TEXT), found {type_token.value!r}"
            )
        self._advance()
        type_name = _TYPE_KEYWORDS[type_token.value]
        primary = unique = not_null = False
        while True:
            if self._keyword("PRIMARY"):
                self._expect(TokenKind.KEYWORD, "KEY")
                primary = True
            elif self._keyword("UNIQUE"):
                unique = True
            elif self._check(TokenKind.KEYWORD, "NOT") and self._peek(1).matches(
                TokenKind.KEYWORD, "NULL"
            ):
                self._advance()
                self._advance()
                not_null = True
            else:
                break
        return ast.ColumnDef(name, type_name, primary, unique, not_null)

    def _drop(self) -> ast.DropTable:
        self._expect(TokenKind.KEYWORD, "DROP")
        self._expect(TokenKind.KEYWORD, "TABLE")
        if_exists = False
        if self._keyword("IF"):
            self._expect(TokenKind.KEYWORD, "EXISTS")
            if_exists = True
        table = self._expect(TokenKind.IDENTIFIER).value
        return ast.DropTable(table, if_exists)

    # -- expressions --------------------------------------------------------

    def _expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self._keyword("OR"):
            right = self._and_expr()
            left = ast.Binary(ast.BinaryOp.OR, left, right)
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self._keyword("AND"):
            right = self._not_expr()
            left = ast.Binary(ast.BinaryOp.AND, left, right)
        return left

    def _not_expr(self) -> ast.Expr:
        if self._keyword("NOT"):
            return ast.Unary(ast.UnaryOp.NOT, self._not_expr())
        return self._predicate()

    def _predicate(self) -> ast.Expr:
        left = self._additive()
        token = self._peek()
        if token.kind is TokenKind.OPERATOR and token.value in _COMPARISON_OPS:
            self._advance()
            right = self._additive()
            return ast.Binary(_COMPARISON_OPS[token.value], left, right)
        negated = False
        if self._check(TokenKind.KEYWORD, "NOT") and self._peek(1).kind is TokenKind.KEYWORD and self._peek(1).value in (
            "BETWEEN",
            "IN",
            "LIKE",
        ):
            self._advance()
            negated = True
        if self._keyword("BETWEEN"):
            low = self._additive()
            self._expect(TokenKind.KEYWORD, "AND")
            high = self._additive()
            return ast.Between(left, low, high, negated)
        if self._keyword("IN"):
            if self._peek(1).matches(TokenKind.KEYWORD, "SELECT"):
                query = self._parenthesized_select()
                return ast.InSelect(left, query, negated)
            self._expect(TokenKind.PUNCT, "(")
            items = [self._expr()]
            while self._accept(TokenKind.PUNCT, ","):
                items.append(self._expr())
            self._expect(TokenKind.PUNCT, ")")
            return ast.InList(left, tuple(items), negated)
        if self._keyword("LIKE"):
            pattern = self._additive()
            like = ast.Binary(ast.BinaryOp.LIKE, left, pattern)
            if negated:
                return ast.Unary(ast.UnaryOp.NOT, like)
            return like
        if negated:
            raise ParseError("expected BETWEEN, IN, or LIKE after NOT")
        if self._keyword("IS"):
            is_negated = self._keyword("NOT")
            self._expect(TokenKind.KEYWORD, "NULL")
            return ast.IsNull(left, is_negated)
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.kind is TokenKind.OPERATOR and token.value in _ADDITIVE_OPS:
                self._advance()
                right = self._multiplicative()
                left = ast.Binary(_ADDITIVE_OPS[token.value], left, right)
            else:
                return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind is TokenKind.OPERATOR and token.value in _MULTIPLICATIVE_OPS:
                self._advance()
                right = self._unary()
                left = ast.Binary(_MULTIPLICATIVE_OPS[token.value], left, right)
            else:
                return left

    def _unary(self) -> ast.Expr:
        if self._accept(TokenKind.OPERATOR, "-"):
            return ast.Unary(ast.UnaryOp.NEG, self._unary())
        if self._accept(TokenKind.OPERATOR, "+"):
            return ast.Unary(ast.UnaryOp.POS, self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.kind is TokenKind.PARAMETER:
            self._advance()
            if token.value == "?":
                self._anonymous_params += 1
                return ast.Parameter(None)
            return ast.Parameter(int(token.value[1:]))
        if token.kind is TokenKind.KEYWORD:
            if token.value == "NULL":
                self._advance()
                return ast.Literal(None)
            if token.value == "TRUE":
                self._advance()
                return ast.Literal(True)
            if token.value == "FALSE":
                self._advance()
                return ast.Literal(False)
            if token.value in _FUNCTION_KEYWORDS:
                return self._function_call(token.value)
            if token.value == "CASE":
                return self._case()
            if token.value == "EXISTS":
                self._advance()
                return ast.Exists(self._parenthesized_select())
        if token.kind is TokenKind.IDENTIFIER:
            return self._column_or_function()
        if self._check(TokenKind.PUNCT, "(") and self._peek(1).matches(
            TokenKind.KEYWORD, "SELECT"
        ):
            return ast.ScalarSubquery(self._parenthesized_select())
        if self._accept(TokenKind.PUNCT, "("):
            expr = self._expr()
            self._expect(TokenKind.PUNCT, ")")
            return expr
        raise ParseError(
            f"unexpected token {token.value or 'end of input'!r} at offset "
            f"{token.position} in {self.source!r}"
        )

    def _function_call(self, name: str) -> ast.FunctionCall:
        self._advance()  # function keyword
        self._expect(TokenKind.PUNCT, "(")
        distinct = self._keyword("DISTINCT")
        if self._check(TokenKind.OPERATOR, "*"):
            self._advance()
            args: Tuple[ast.Expr, ...] = (ast.Star(),)
        else:
            arg_list = [self._expr()]
            while self._accept(TokenKind.PUNCT, ","):
                arg_list.append(self._expr())
            args = tuple(arg_list)
        self._expect(TokenKind.PUNCT, ")")
        return ast.FunctionCall(name, args, distinct)

    def _column_or_function(self) -> ast.Expr:
        name = self._advance().value
        if self._check(TokenKind.PUNCT, "("):
            # A non-aggregate function call, e.g. LENGTH(x).
            self._advance()
            args: List[ast.Expr] = []
            if not self._check(TokenKind.PUNCT, ")"):
                args.append(self._expr())
                while self._accept(TokenKind.PUNCT, ","):
                    args.append(self._expr())
            self._expect(TokenKind.PUNCT, ")")
            return ast.FunctionCall(name.upper(), tuple(args))
        if self._accept(TokenKind.PUNCT, "."):
            column = self._expect(TokenKind.IDENTIFIER).value
            return ast.ColumnRef(column, table=name)
        return ast.ColumnRef(name)

    def _case(self) -> ast.Case:
        self._expect(TokenKind.KEYWORD, "CASE")
        whens: List[Tuple[ast.Expr, ast.Expr]] = []
        while self._keyword("WHEN"):
            cond = self._expr()
            self._expect(TokenKind.KEYWORD, "THEN")
            value = self._expr()
            whens.append((cond, value))
        if not whens:
            raise ParseError("CASE requires at least one WHEN branch")
        default = self._expr() if self._keyword("ELSE") else None
        self._expect(TokenKind.KEYWORD, "END")
        return ast.Case(tuple(whens), default)

    def _integer(self) -> int:
        token = self._expect(TokenKind.NUMBER)
        try:
            return int(token.value)
        except ValueError as exc:
            raise ParseError(f"expected an integer, found {token.value!r}") from exc


def parse_statement(source: str) -> ast.Statement:
    """Parse a single SQL statement from ``source``."""
    return Parser(source).parse_statement()


def parse_expression(source: str) -> ast.Expr:
    """Parse a bare SQL expression from ``source``."""
    return Parser(source).parse_expression()
