"""Token model for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Classification of a lexeme produced by the lexer."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    PARAMETER = "parameter"  # $1, $2, ... or ? placeholders
    EOF = "eof"


#: Reserved words recognized by the parser.  Matching is case-insensitive;
#: keywords are stored upper-case in the token value.
KEYWORDS = frozenset(
    {
        "ALL",
        "AND",
        "AS",
        "ASC",
        "AVG",
        "BEGIN",
        "BETWEEN",
        "BY",
        "CASE",
        "COMMIT",
        "COUNT",
        "CREATE",
        "CROSS",
        "DELETE",
        "DESC",
        "DISTINCT",
        "DROP",
        "ELSE",
        "END",
        "EXISTS",
        "EXPLAIN",
        "FALSE",
        "FROM",
        "GROUP",
        "HAVING",
        "IF",
        "IN",
        "INDEX",
        "INNER",
        "INSERT",
        "INT",
        "INTEGER",
        "INTO",
        "IS",
        "JOIN",
        "KEY",
        "LEFT",
        "LIKE",
        "LIMIT",
        "MAX",
        "MIN",
        "NOT",
        "NULL",
        "OFFSET",
        "ON",
        "OR",
        "ORDER",
        "OUTER",
        "PRIMARY",
        "REAL",
        "ROLLBACK",
        "SELECT",
        "SET",
        "SUM",
        "TABLE",
        "TEXT",
        "THEN",
        "TRANSACTION",
        "TRUE",
        "UNION",
        "UNIQUE",
        "UPDATE",
        "VALUES",
        "WHEN",
        "WHERE",
    }
)

#: Multi-character operators, longest first so the lexer can greedily match.
MULTI_CHAR_OPERATORS = ("<>", "<=", ">=", "!=", "||")

#: Single-character operators.
SINGLE_CHAR_OPERATORS = frozenset("+-*/%<>=")

#: Punctuation characters that stand alone.
PUNCTUATION = frozenset("(),.;")


@dataclass(frozen=True)
class Token:
    """A single lexeme.

    Attributes:
        kind: the token classification.
        value: normalized text (keywords upper-cased, strings unquoted).
        position: zero-based offset of the first character in the source.
    """

    kind: TokenKind
    value: str
    position: int

    def matches(self, kind: TokenKind, value: str | None = None) -> bool:
        """Return True when the token has ``kind`` (and ``value``, if given)."""
        if self.kind is not kind:
            return False
        return value is None or self.value == value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.value!r}, @{self.position})"
