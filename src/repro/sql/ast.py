"""AST node definitions for the SQL dialect.

Expression nodes are immutable (frozen dataclasses) so they can be hashed,
cached, and shared freely — the invalidator keeps thousands of them in its
query-type store.  Statement nodes are plain dataclasses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Marker base class for all expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: int, float, str, bool, or None (SQL NULL)."""

    value: Union[int, float, str, bool, None]


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly table-qualified column reference, e.g. ``car.model``."""

    column: str
    table: Optional[str] = None

    def key(self) -> str:
        """Canonical lower-case ``table.column`` (or bare column) string."""
        if self.table:
            return f"{self.table.lower()}.{self.column.lower()}"
        return self.column.lower()


@dataclass(frozen=True)
class Parameter(Expr):
    """A query parameter: ``$n`` (index = n) or ``?`` (index = None)."""

    index: Optional[int] = None


class BinaryOp(enum.Enum):
    """Binary operators, with their SQL spelling as value."""

    AND = "AND"
    OR = "OR"
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    CONCAT = "||"
    LIKE = "LIKE"


#: Comparison operators, in the sense used by the invalidator's
#: interval-based independence analysis.
COMPARISONS = frozenset(
    {BinaryOp.EQ, BinaryOp.NE, BinaryOp.LT, BinaryOp.LE, BinaryOp.GT, BinaryOp.GE}
)

#: Operator → its mirror image (``a < b`` ≡ ``b > a``).
FLIPPED: dict = {
    BinaryOp.EQ: BinaryOp.EQ,
    BinaryOp.NE: BinaryOp.NE,
    BinaryOp.LT: BinaryOp.GT,
    BinaryOp.LE: BinaryOp.GE,
    BinaryOp.GT: BinaryOp.LT,
    BinaryOp.GE: BinaryOp.LE,
}

#: Operator → its logical negation (``NOT (a < b)`` ≡ ``a >= b``).
NEGATED: dict = {
    BinaryOp.EQ: BinaryOp.NE,
    BinaryOp.NE: BinaryOp.EQ,
    BinaryOp.LT: BinaryOp.GE,
    BinaryOp.LE: BinaryOp.GT,
    BinaryOp.GT: BinaryOp.LE,
    BinaryOp.GE: BinaryOp.LT,
}


@dataclass(frozen=True)
class Binary(Expr):
    """A binary operation ``left op right``."""

    op: BinaryOp
    left: Expr
    right: Expr


class UnaryOp(enum.Enum):
    NOT = "NOT"
    NEG = "-"
    POS = "+"


@dataclass(frozen=True)
class Unary(Expr):
    """A unary operation: ``NOT expr`` or ``-expr``."""

    op: UnaryOp
    operand: Expr


@dataclass(frozen=True)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    expr: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (item, ...)``."""

    expr: Expr
    items: Tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    expr: Expr
    negated: bool = False


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``table.*`` in a select list or ``COUNT(*)``."""

    table: Optional[str] = None


@dataclass(frozen=True)
class FunctionCall(Expr):
    """A function or aggregate call, e.g. ``COUNT(DISTINCT x)``."""

    name: str  # upper-case
    args: Tuple[Expr, ...]
    distinct: bool = False

    AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})

    @property
    def is_aggregate(self) -> bool:
        return self.name in self.AGGREGATES


@dataclass(frozen=True)
class Case(Expr):
    """``CASE WHEN cond THEN value ... [ELSE value] END``."""

    whens: Tuple[Tuple[Expr, Expr], ...]
    default: Optional[Expr] = None


@dataclass(frozen=True)
class Exists(Expr):
    """``[NOT] EXISTS (SELECT ...)``."""

    query: "Select"
    negated: bool = False


@dataclass(frozen=True)
class InSelect(Expr):
    """``expr [NOT] IN (SELECT ...)``."""

    expr: Expr
    query: "Select"
    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    """``(SELECT ...)`` used as a value; yields the first row's first
    column, or NULL when the subquery is empty."""

    query: "Select"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Marker base class for statements."""

    __slots__ = ()


@dataclass(frozen=True)
class TableRef:
    """A table in a FROM clause, with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this table is visible under inside the query."""
        return self.alias or self.name


class JoinKind(enum.Enum):
    INNER = "INNER"
    LEFT = "LEFT"
    CROSS = "CROSS"


@dataclass(frozen=True)
class Join:
    """An explicit join between two from-sources."""

    kind: JoinKind
    left: "FromSource"
    right: "FromSource"
    on: Optional[Expr] = None


@dataclass(frozen=True)
class ValuesSource:
    """An inline derived table: ``(VALUES (...), ...) AS name (col, ...)``.

    Each row is a tuple of constant expressions; every row must have
    ``len(columns)`` entries.  The batch polling compiler uses this to
    ship per-instance probe parameters into one set-oriented query.
    """

    rows: Tuple[Tuple[Expr, ...], ...]
    name: str
    columns: Tuple[str, ...]

    @property
    def binding(self) -> str:
        """The name the derived table is visible under inside the query."""
        return self.name


FromSource = Union[TableRef, Join, ValuesSource]


@dataclass(frozen=True)
class SelectItem:
    """One entry of a select list: an expression and its optional alias."""

    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    """One entry of an ORDER BY clause."""

    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Select(Statement):
    """A SELECT statement."""

    items: Tuple[SelectItem, ...]
    sources: Tuple[FromSource, ...] = ()
    where: Optional[Expr] = None
    group_by: Tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


@dataclass(frozen=True)
class Insert(Statement):
    """``INSERT INTO table [(cols)] VALUES (...), (...)``."""

    table: str
    columns: Tuple[str, ...]  # empty means "all columns in schema order"
    rows: Tuple[Tuple[Expr, ...], ...]


@dataclass(frozen=True)
class Update(Statement):
    """``UPDATE table SET col = expr, ... [WHERE ...]``."""

    table: str
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Delete(Statement):
    """``DELETE FROM table [WHERE ...]``."""

    table: str
    where: Optional[Expr] = None


@dataclass(frozen=True)
class ColumnDef:
    """A column definition inside CREATE TABLE."""

    name: str
    type_name: str  # "INT", "REAL", or "TEXT"
    primary_key: bool = False
    unique: bool = False
    not_null: bool = False


@dataclass(frozen=True)
class CreateTable(Statement):
    table: str
    columns: Tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateIndex(Statement):
    name: str
    table: str
    columns: Tuple[str, ...]
    unique: bool = False


@dataclass(frozen=True)
class DropTable(Statement):
    table: str
    if_exists: bool = False


@dataclass(frozen=True)
class Explain(Statement):
    """``EXPLAIN <select>`` — plan the query, return the plan as text."""

    statement: Statement


@dataclass(frozen=True)
class BeginTransaction(Statement):
    """``BEGIN [TRANSACTION]``."""


@dataclass(frozen=True)
class CommitTransaction(Statement):
    """``COMMIT [TRANSACTION]``."""


@dataclass(frozen=True)
class RollbackTransaction(Statement):
    """``ROLLBACK [TRANSACTION]``."""


@dataclass(frozen=True)
class Union(Statement):
    """``select UNION [ALL] select [...] [ORDER BY ...] [LIMIT ...]``.

    ``parts`` holds the component selects (each without its own ORDER
    BY/LIMIT); the trailing tail applies to the combined result, as in
    standard SQL.  ``all_flags[i]`` is True when the i-th UNION keyword
    was ``UNION ALL`` (len == len(parts) - 1).
    """

    parts: Tuple[Select, ...]
    all_flags: Tuple[bool, ...]
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None


def _select_expressions(stmt: "Select"):
    """All expressions syntactically contained in a SELECT."""
    for item in stmt.items:
        yield item.expr
    if stmt.where is not None:
        yield stmt.where
    if stmt.having is not None:
        yield stmt.having
    yield from stmt.group_by
    for order in stmt.order_by:
        yield order.expr

    def source_conditions(source: "FromSource"):
        if isinstance(source, Join):
            if source.on is not None:
                yield source.on
            yield from source_conditions(source.left)
            yield from source_conditions(source.right)

    for source in stmt.sources:
        yield from source_conditions(source)


def walk(expr: Optional[Expr]):
    """Yield ``expr`` and every sub-expression, depth-first.

    Descends *into* subqueries (their WHERE/HAVING/select list/ON
    conditions), so column and table usage inside an ``EXISTS`` is visible
    to callers like the invalidator's dependency analysis.  ``None``
    yields nothing, which lets callers pass optional WHERE clauses
    without a guard.
    """
    if expr is None:
        return
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Binary):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, Unary):
            stack.append(node.operand)
        elif isinstance(node, Between):
            stack.extend((node.expr, node.low, node.high))
        elif isinstance(node, InList):
            stack.append(node.expr)
            stack.extend(node.items)
        elif isinstance(node, IsNull):
            stack.append(node.expr)
        elif isinstance(node, FunctionCall):
            stack.extend(node.args)
        elif isinstance(node, Case):
            for cond, value in node.whens:
                stack.append(cond)
                stack.append(value)
            if node.default is not None:
                stack.append(node.default)
        elif isinstance(node, Exists):
            stack.extend(_select_expressions(node.query))
        elif isinstance(node, InSelect):
            stack.append(node.expr)
            stack.extend(_select_expressions(node.query))
        elif isinstance(node, ScalarSubquery):
            stack.extend(_select_expressions(node.query))


def subqueries(expr: Optional[Expr]):
    """Yield every subquery node (Exists/InSelect/ScalarSubquery) in
    ``expr``, including nested ones."""
    for node in walk(expr):
        if isinstance(node, (Exists, InSelect, ScalarSubquery)):
            yield node
