"""Hand-written SQL tokenizer.

The lexer is deliberately simple and fast: a single left-to-right pass with
greedy longest-match for multi-character operators.  It supports:

* identifiers (``car``, ``Car.model``, quoted ``"order"``),
* integer and floating point literals (``42``, ``3.14``, ``1e6``),
* single-quoted string literals with ``''`` escaping,
* positional parameters ``$1``/``$2`` and anonymous ``?`` placeholders,
* ``--`` line comments and ``/* ... */`` block comments.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import LexerError
from repro.sql.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    PUNCTUATION,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_part(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


class Lexer:
    """Tokenizes a SQL source string.

    Usage::

        tokens = Lexer("SELECT * FROM car").tokens()
    """

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0

    def tokens(self) -> List[Token]:
        """Tokenize the full input and return tokens ending with EOF."""
        return list(self._iter_tokens())

    def _iter_tokens(self) -> Iterator[Token]:
        src = self.source
        length = len(src)
        while True:
            self._skip_trivia()
            if self.pos >= length:
                yield Token(TokenKind.EOF, "", self.pos)
                return
            start = self.pos
            ch = src[start]
            if _is_ident_start(ch):
                yield self._lex_word(start)
            elif ch.isdigit():
                yield self._lex_number(start)
            elif ch == "'":
                yield self._lex_string(start)
            elif ch == '"':
                yield self._lex_quoted_identifier(start)
            elif ch == "$":
                yield self._lex_parameter(start)
            elif ch == "?":
                self.pos += 1
                yield Token(TokenKind.PARAMETER, "?", start)
            elif src.startswith(MULTI_CHAR_OPERATORS, start):
                for op in MULTI_CHAR_OPERATORS:
                    if src.startswith(op, start):
                        self.pos += len(op)
                        yield Token(TokenKind.OPERATOR, op, start)
                        break
            elif ch in SINGLE_CHAR_OPERATORS:
                self.pos += 1
                yield Token(TokenKind.OPERATOR, ch, start)
            elif ch in PUNCTUATION:
                self.pos += 1
                yield Token(TokenKind.PUNCT, ch, start)
            else:
                raise LexerError(f"unexpected character {ch!r}", start)

    def _skip_trivia(self) -> None:
        """Advance past whitespace and comments."""
        src = self.source
        length = len(src)
        while self.pos < length:
            ch = src[self.pos]
            if ch.isspace():
                self.pos += 1
            elif src.startswith("--", self.pos):
                newline = src.find("\n", self.pos)
                self.pos = length if newline < 0 else newline + 1
            elif src.startswith("/*", self.pos):
                end = src.find("*/", self.pos + 2)
                if end < 0:
                    raise LexerError("unterminated block comment", self.pos)
                self.pos = end + 2
            else:
                return

    def _lex_word(self, start: int) -> Token:
        src = self.source
        end = start + 1
        while end < len(src) and _is_ident_part(src[end]):
            end += 1
        self.pos = end
        word = src[start:end]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenKind.KEYWORD, upper, start)
        return Token(TokenKind.IDENTIFIER, word, start)

    def _lex_quoted_identifier(self, start: int) -> Token:
        src = self.source
        end = src.find('"', start + 1)
        if end < 0:
            raise LexerError("unterminated quoted identifier", start)
        self.pos = end + 1
        return Token(TokenKind.IDENTIFIER, src[start + 1 : end], start)

    def _lex_number(self, start: int) -> Token:
        src = self.source
        length = len(src)
        end = start
        while end < length and src[end].isdigit():
            end += 1
        if end < length and src[end] == "." and end + 1 < length and src[end + 1].isdigit():
            end += 1
            while end < length and src[end].isdigit():
                end += 1
        if end < length and src[end] in "eE":
            exp = end + 1
            if exp < length and src[exp] in "+-":
                exp += 1
            if exp < length and src[exp].isdigit():
                end = exp
                while end < length and src[end].isdigit():
                    end += 1
        self.pos = end
        return Token(TokenKind.NUMBER, src[start:end], start)

    def _lex_string(self, start: int) -> Token:
        src = self.source
        length = len(src)
        pos = start + 1
        parts: List[str] = []
        while pos < length:
            ch = src[pos]
            if ch == "'":
                if pos + 1 < length and src[pos + 1] == "'":
                    parts.append("'")
                    pos += 2
                    continue
                self.pos = pos + 1
                return Token(TokenKind.STRING, "".join(parts), start)
            parts.append(ch)
            pos += 1
        raise LexerError("unterminated string literal", start)

    def _lex_parameter(self, start: int) -> Token:
        src = self.source
        end = start + 1
        while end < len(src) and src[end].isdigit():
            end += 1
        if end == start + 1:
            raise LexerError("expected digits after '$'", start)
        self.pos = end
        return Token(TokenKind.PARAMETER, src[start:end], start)


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: tokenize ``source`` into a token list."""
    return Lexer(source).tokens()
