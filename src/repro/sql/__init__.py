"""SQL frontend: lexer, parser, AST, printer, and query-type analysis.

This package implements a from-scratch SQL dialect sufficient for the
CachePortal workloads: SELECT with joins, predicates, aggregates, ORDER BY
and LIMIT; INSERT, UPDATE, DELETE; CREATE/DROP TABLE and CREATE INDEX.

The two pieces that are specific to the paper live in :mod:`repro.sql.params`
(parameterizing query instances into query types — §4.1.2 "query type
discovery") and :mod:`repro.sql.analysis` (conjunct extraction and
satisfiability helpers used by the invalidator's independence check — §4.2).
:mod:`repro.sql.lint` layers structured invalidation-safety diagnostics
on top of the same AST; its findings feed the enforcement verdicts in
:mod:`repro.core.invalidator.safety`.
"""

from repro.sql.lexer import Lexer, tokenize
from repro.sql.lint import (
    Finding,
    LintReport,
    Severity,
    lint_sql,
    lint_statement,
)
from repro.sql.parser import Parser, parse_expression, parse_statement
from repro.sql.printer import to_sql
from repro.sql.params import (
    ParameterizedQuery,
    bind_parameters,
    parameterize,
)
from repro.sql.analysis import (
    conjuncts,
    query_signature,
    referenced_columns,
    referenced_tables,
)

__all__ = [
    "Finding",
    "Lexer",
    "LintReport",
    "Parser",
    "ParameterizedQuery",
    "Severity",
    "bind_parameters",
    "conjuncts",
    "lint_sql",
    "lint_statement",
    "parameterize",
    "parse_expression",
    "parse_statement",
    "query_signature",
    "referenced_columns",
    "referenced_tables",
    "to_sql",
    "tokenize",
]
