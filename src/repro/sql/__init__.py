"""SQL frontend: lexer, parser, AST, printer, and query-type analysis.

This package implements a from-scratch SQL dialect sufficient for the
CachePortal workloads: SELECT with joins, predicates, aggregates, ORDER BY
and LIMIT; INSERT, UPDATE, DELETE; CREATE/DROP TABLE and CREATE INDEX.

The two pieces that are specific to the paper live in :mod:`repro.sql.params`
(parameterizing query instances into query types — §4.1.2 "query type
discovery") and :mod:`repro.sql.analysis` (conjunct extraction and
satisfiability helpers used by the invalidator's independence check — §4.2).
"""

from repro.sql.lexer import Lexer, tokenize
from repro.sql.parser import Parser, parse_expression, parse_statement
from repro.sql.printer import to_sql
from repro.sql.params import (
    ParameterizedQuery,
    bind_parameters,
    parameterize,
)
from repro.sql.analysis import (
    conjuncts,
    query_signature,
    referenced_columns,
    referenced_tables,
)

__all__ = [
    "Lexer",
    "Parser",
    "ParameterizedQuery",
    "bind_parameters",
    "conjuncts",
    "parameterize",
    "parse_expression",
    "parse_statement",
    "query_signature",
    "referenced_columns",
    "referenced_tables",
    "to_sql",
    "tokenize",
]
