"""The async serving gateway: cooperative concurrency over the sync stack.

:class:`AsyncGateway` fronts an existing synchronous
:class:`~repro.web.site.Site` without forking any of its classes:

* **hits** are served entirely on the event loop — a cache probe is a
  couple of microseconds, so parking it behind a queue or an executor
  would cost more than the work itself;
* **misses** are enqueued onto a dispatch queue consumed by N worker
  tasks, each running the untouched synchronous path
  (``LoadBalancer.pick → WebServer.handle → ApplicationServer.handle →
  servlet + DB``) on a bounded thread pool.  Bounded concurrency means a
  miss storm turns into visible queue depth (open-loop collapse), not
  into unbounded thread creation; the connection pool underneath
  back-pressures the same way (:class:`~repro.errors.PoolExhausted`).

The sniffer's request/query loggers sit *inside* that synchronous path,
which is why their appends are lock-free per worker thread
(:mod:`repro.concurrency`) and why every query record carries the
correlation token of the request that issued it.

Optionally the gateway owns the invalidation side too: give it an
:class:`~repro.stream.bus.EjectBus` and it pumps due deliveries from a
loop task; give it a ``tick`` callable (e.g.
``StreamingInvalidationPipeline.process_available``) and invalidation
cycles run interleaved with serving, deterministically, on the loop.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import PoolExhausted, RoutingError, ServeError
from repro.web.http import HttpRequest, HttpResponse
from repro.web.site import Site
from repro.web.urlkey import page_key


@dataclass
class GatewayStats:
    """Serving counters for one gateway lifetime."""

    requests: int = 0
    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    shed: int = 0
    worker_errors: int = 0
    queue_depth_peak: int = 0
    bus_pumps: int = 0
    ticks: int = 0


class AsyncGateway:
    """Asyncio front end for a synchronous :class:`Site`.

    Args:
        site: the site to serve; its ``web_cache`` (a single
            :class:`~repro.web.cache.WebCache` or a whole
            :class:`~repro.cluster.cluster.CacheCluster`) is the hit tier.
        workers: miss-lane concurrency — worker tasks and the thread pool
            they dispatch servlet+DB work onto.
        queue_limit: optional hard cap on queued misses; beyond it
            requests are shed (counted, and answered 503 on the
            full-fidelity path) instead of queued forever.
        bus: optional eject bus to pump from the event loop.
        tick: optional callback (e.g. the streaming pipeline's
            ``process_available``) run every ``tick_interval`` seconds on
            the loop, interleaving invalidation with serving.
    """

    def __init__(
        self,
        site: Site,
        workers: int = 4,
        queue_limit: Optional[int] = None,
        bus: Optional[object] = None,
        pump_interval: float = 0.002,
        tick: Optional[Callable[[], object]] = None,
        tick_interval: float = 0.02,
    ) -> None:
        if workers < 1:
            raise ServeError("gateway needs at least one miss worker")
        self.site = site
        self.workers = workers
        self.queue_limit = queue_limit
        self.bus = bus
        self.pump_interval = pump_interval
        self.tick = tick
        self.tick_interval = tick_interval
        self.stats = GatewayStats()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.Queue] = None
        self._worker_tasks: List[asyncio.Task] = []
        self._background_tasks: List[asyncio.Task] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._running = False
        # Route-key cache: path → key_spec (routing is static per site).
        self._specs: dict = {}
        # Miss coalescing (dog-pile protection): url_key → waiter
        # callbacks for a regeneration already in flight.  After an eject
        # of a hot page, hundreds of arrivals can miss on the same key
        # before the first regeneration lands; only the first does
        # servlet+DB work, the rest ride its result.
        self._pending: dict = {}

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        if self._running:
            return
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="gw-miss"
        )
        self._running = True
        self._worker_tasks = [
            self._loop.create_task(self._miss_worker()) for _ in range(self.workers)
        ]
        if self.bus is not None:
            self._background_tasks.append(self._loop.create_task(self._pump_bus()))
        if self.tick is not None:
            self._background_tasks.append(self._loop.create_task(self._run_ticks()))

    async def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Graceful shutdown: drain the miss lane, flush eject delivery.

        With ``drain`` (the default) every queued miss is completed and —
        when a bus or tick is attached — every published eject is
        delivered before workers are torn down, so shutdown loses no
        pages and no invalidations.  If the backlog does not drain
        within ``timeout`` seconds the remaining work is abandoned and
        teardown proceeds anyway: stop() never leaves the gateway
        half-alive.
        """
        if not self._running:
            return
        drained = False
        try:
            if drain:
                try:
                    await asyncio.wait_for(self._queue.join(), timeout=timeout)
                    drained = True
                except asyncio.TimeoutError:
                    # A wedged miss lane must not leave the gateway
                    # half-alive: give up on the backlog and fall
                    # through to the hard teardown below.
                    pass
                if drained:
                    if self.tick is not None:
                        self.tick()
                        self.stats.ticks += 1
                    if self.bus is not None:
                        await self.bus.drain_async(timeout=timeout)
        finally:
            # Teardown runs no matter how the drain went (timeout, tick
            # failure, bus failure): _running flips, every task is
            # joined or cancelled, and the executor is shut down.
            self._running = False
            if drained:
                for _ in self._worker_tasks:
                    self._queue.put_nowait(None)  # sentinel per worker
            else:
                # Non-graceful (or drain timed out): abandon the
                # backlog instead of finishing it.
                for task in self._worker_tasks:
                    task.cancel()
            await asyncio.gather(*self._worker_tasks, return_exceptions=True)
            for task in self._background_tasks:
                task.cancel()
            await asyncio.gather(*self._background_tasks, return_exceptions=True)
            self._worker_tasks.clear()
            self._background_tasks.clear()
            self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "AsyncGateway":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- the fast path ---------------------------------------------------------

    def key_for(self, request: HttpRequest) -> Optional[str]:
        """The page-cache key for a request, or None when unroutable."""
        spec = self._specs.get(request.path)
        if spec is None:
            try:
                spec = self.site.servlet_for(request.path).key_spec
            except RoutingError:
                return None
            self._specs[request.path] = spec
        return page_key(request, spec)

    def try_hit(self, url_key: str) -> Optional[HttpResponse]:
        """Probe the hit tier on the event loop; None on miss.

        Mirrors the counting of ``Site.handle``: the request is counted
        here, the hit here, the miss when the caller enqueues it.
        """
        self.stats.requests += 1
        self.site.stats.requests += 1
        cached = self.site.web_cache.get(url_key)
        if cached is not None:
            self.stats.hits += 1
            self.site.stats.page_cache_hits += 1
        return cached

    def submit_miss(
        self,
        url_key: str,
        request_factory: Callable[[], HttpRequest],
        on_done: Optional[Callable[[HttpResponse], None]] = None,
    ) -> bool:
        """Queue a miss for the worker lane; False when shed at the cap.

        Duplicate misses for a key whose regeneration is already in
        flight are coalesced: counted as misses (each is a real request
        that waited for the page), but only the first does servlet+DB
        work — the rest receive its response via their callbacks.
        """
        waiters = self._pending.get(url_key)
        if waiters is not None:
            self.stats.misses += 1
            self.stats.coalesced += 1
            self.site.stats.page_cache_misses += 1
            if on_done is not None:
                waiters.append(on_done)
            return True
        if self.queue_limit is not None and self._queue.qsize() >= self.queue_limit:
            self.stats.shed += 1
            return False
        self.stats.misses += 1
        self.site.stats.page_cache_misses += 1
        self._pending[url_key] = [on_done] if on_done is not None else []
        self._queue.put_nowait((url_key, request_factory))
        depth = self._queue.qsize()
        if depth > self.stats.queue_depth_peak:
            self.stats.queue_depth_peak = depth
        return True

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    async def join(self) -> None:
        """Wait until every queued miss has completed (queue drained)."""
        if self._queue is not None:
            await self._queue.join()

    # -- the full-fidelity path ------------------------------------------------

    async def handle(self, request: HttpRequest) -> HttpResponse:
        """Serve one request end-to-end (the parity-testable entry point).

        Behaviour matches ``Site.handle`` response-for-response: hits on
        the loop, misses through the worker lane, unroutable paths to the
        app server's 404, sites without a page cache straight through.
        """
        url_key = self.key_for(request) if self.site.web_cache is not None else None
        if url_key is None:
            # No cache tier or unknown path: the whole request is
            # servlet work, so it runs in the worker lane.
            self.stats.requests += 1
            self.site.stats.requests += 1
            return await self._loop.run_in_executor(
                self._executor, self.site.balancer.handle, request
            )
        cached = self.try_hit(url_key)
        if cached is not None:
            return cached
        future: asyncio.Future = self._loop.create_future()

        def deliver(response: HttpResponse) -> None:
            # The caller may have been cancelled while the miss was in
            # flight; a done future must not blow up the worker loop.
            if not future.done():
                future.set_result(response)

        accepted = self.submit_miss(url_key, lambda: request, deliver)
        if not accepted:
            return HttpResponse(status=503, body="miss queue full")
        return await future

    async def get(self, url: str) -> HttpResponse:
        """Browser-style entry point, like ``Site.get``."""
        return await self.handle(HttpRequest.from_url(url))

    # -- workers ---------------------------------------------------------------

    async def _miss_worker(self) -> None:
        while True:
            item = await self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            url_key, request_factory = item
            try:
                try:
                    request = request_factory()
                    response = await self._loop.run_in_executor(
                        self._executor, self.site.balancer.handle, request
                    )
                    # Store, then release the coalesced waiters — all on
                    # the loop thread, so cache locks stay uncontended
                    # and callers never observe torn state.  The store
                    # precedes the pending-pop: an arrival between the
                    # two hits the cache instead of starting a redundant
                    # regeneration.
                    self.site.web_cache.put(url_key, response)
                except Exception as exc:
                    # A failed regeneration must not kill this worker —
                    # that would silently shrink miss concurrency and
                    # leave the _pending entry stranded, so every later
                    # miss on this key would coalesce onto waiters that
                    # are never called.  Turn the failure into a
                    # response for the waiters and keep consuming.
                    # PoolExhausted is the expected overload signal and
                    # maps to 503 (back-pressure); anything else is 500.
                    self.stats.worker_errors += 1
                    status = 503 if isinstance(exc, PoolExhausted) else 500
                    response = HttpResponse(
                        status=status, body=f"{type(exc).__name__}: {exc}"
                    )
                waiters = self._pending.pop(url_key, ())
                for on_done in waiters:
                    try:
                        on_done(response)
                    except Exception:
                        # One broken callback must not strand the other
                        # waiters or take the worker down with it.
                        self.stats.worker_errors += 1
            finally:
                self._queue.task_done()

    async def _pump_bus(self) -> None:
        while True:
            self.bus.pump()
            self.stats.bus_pumps += 1
            await asyncio.sleep(self.pump_interval)

    async def _run_ticks(self) -> None:
        while True:
            await asyncio.sleep(self.tick_interval)
            self.tick()
            self.stats.ticks += 1
