"""Open-loop load generation for the async serving front end.

Closed-loop drivers (N workers, each waiting for its response before
sending the next request) hide overload: when the server slows down the
offered rate drops with it, and the latency curve stays flat right up to
the cliff that production traffic would have fallen off long before.
An **open-loop** generator schedules arrivals from a clock that does not
care about completions — if the server falls behind, requests queue and
the measured latency (completion time minus *scheduled* arrival time)
grows without bound.  That is the honest curve, free of coordinated
omission, and it is what ``benchmarks/bench_serving.py`` sweeps.

Everything here is deterministic under a seed: :meth:`ArrivalSchedule`
spaces arrivals evenly within each rate phase, and
:class:`ZipfianPopulation` draws URL indexes from a seeded RNG, so
:meth:`OpenLoopLoadGenerator.plan` is reproducible bit-for-bit.
"""

from __future__ import annotations

import asyncio
import bisect
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ServeError
from repro.serve.gateway import AsyncGateway
from repro.serve.metrics import LatencyHistogram, curve_point
from repro.web.http import HttpRequest


@dataclass(frozen=True)
class RatePhase:
    """A stretch of constant offered load: ``rate`` req/s for ``duration`` s."""

    rate: float
    duration: float

    def __post_init__(self) -> None:
        if self.rate < 0 or self.duration < 0:
            raise ServeError("rate and duration must be non-negative")


class ArrivalSchedule:
    """A deterministic sequence of arrival times built from rate phases.

    Within a phase of rate *r*, arrivals are evenly spaced ``1/r`` apart —
    a paced (deterministic) open-loop schedule, the standard choice when
    run-to-run reproducibility matters more than Poisson realism.
    """

    def __init__(self, phases: List[RatePhase]) -> None:
        if not phases:
            raise ServeError("a schedule needs at least one phase")
        self.phases = list(phases)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def fixed(cls, rate: float, duration: float) -> "ArrivalSchedule":
        """Constant ``rate`` req/s for ``duration`` seconds."""
        return cls([RatePhase(rate, duration)])

    @classmethod
    def burst(
        cls,
        base_rate: float,
        burst_rate: float,
        base_duration: float,
        burst_duration: float,
        cycles: int = 1,
    ) -> "ArrivalSchedule":
        """Alternating base/burst phases, ``cycles`` times over."""
        phases: List[RatePhase] = []
        for _ in range(cycles):
            phases.append(RatePhase(base_rate, base_duration))
            phases.append(RatePhase(burst_rate, burst_duration))
        return cls(phases)

    @classmethod
    def ramp(
        cls, start_rate: float, end_rate: float, steps: int, duration: float
    ) -> "ArrivalSchedule":
        """Linear ramp from ``start_rate`` to ``end_rate`` in ``steps`` phases."""
        if steps < 1:
            raise ServeError("a ramp needs at least one step")
        phases = []
        for step in range(steps):
            fraction = step / (steps - 1) if steps > 1 else 1.0
            rate = start_rate + (end_rate - start_rate) * fraction
            phases.append(RatePhase(rate, duration / steps))
        return cls(phases)

    # -- the schedule ----------------------------------------------------------

    @property
    def total_duration(self) -> float:
        return sum(phase.duration for phase in self.phases)

    @property
    def total_arrivals(self) -> int:
        return sum(int(phase.rate * phase.duration) for phase in self.phases)

    @property
    def mean_rate(self) -> float:
        duration = self.total_duration
        return self.total_arrivals / duration if duration > 0 else 0.0

    def arrivals(self) -> Iterator[float]:
        """Yield arrival offsets (seconds from schedule start), ascending."""
        phase_start = 0.0
        for phase in self.phases:
            count = int(phase.rate * phase.duration)
            if count:
                gap = phase.duration / count
                for i in range(count):
                    yield phase_start + i * gap
            phase_start += phase.duration

class ZipfianPopulation:
    """A seeded Zipfian URL population in the millions.

    Index *k* (1-based) has weight ``1 / k**s``; the cumulative weight
    table makes each draw one ``random()`` plus one binary search.  URL
    records — the key under the page cache and a factory for the full
    request — are materialized lazily per index, so a population of five
    million items costs memory only for the (heavily skewed) set of
    indexes actually drawn.
    """

    def __init__(
        self,
        count: int,
        s: float = 1.1,
        seed: int = 20260808,
        path: str = "/item",
        param: str = "id",
    ) -> None:
        if count < 1:
            raise ServeError("population needs at least one URL")
        self.count = count
        self.s = s
        self.path = path
        self.param = param
        self._rng = random.Random(seed)
        cumulative: List[float] = []
        total = 0.0
        for k in range(1, count + 1):
            total += 1.0 / (k ** s)
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total
        # index → (url, url_key, request) — lazily filled, keys resolved
        # once against the gateway's routing.
        self._records: Dict[int, Tuple[str, str, HttpRequest]] = {}

    def sample(self) -> int:
        """Draw one 0-based index from the Zipfian distribution."""
        return bisect.bisect_left(
            self._cumulative, self._rng.random() * self._total
        )

    def url_for(self, index: int) -> str:
        return f"{self.path}?{self.param}={index + 1}"

    def record_for(
        self, index: int, keyer: Callable[[HttpRequest], Optional[str]]
    ) -> Tuple[str, str, HttpRequest]:
        """The (url, url_key, request) triple for an index, cached."""
        record = self._records.get(index)
        if record is None:
            url = self.url_for(index)
            request = HttpRequest.from_url(url)
            url_key = keyer(request)
            if url_key is None:
                raise ServeError(f"population path {self.path!r} is unroutable")
            record = (url, url_key, request)
            self._records[index] = record
        return record


@dataclass
class OpenLoopResult:
    """What one open-loop run measured."""

    offered_rps: float
    achieved_rps: float
    duration_seconds: float
    completed: int
    hits: int
    misses: int
    shed: int
    queue_depth_peak: int
    queue_depth_samples: List[int] = field(default_factory=list)
    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def curve_point(self, arm: str, **extra: object) -> Dict[str, object]:
        """This run as one row of the shared req/s × latency schema."""
        quantiles = self.histogram.percentiles_ms()
        return curve_point(
            source="measured",
            arm=arm,
            offered_rps=self.offered_rps,
            achieved_rps=self.achieved_rps,
            hit_ratio=self.hit_ratio,
            completed=self.completed,
            queue_depth_peak=self.queue_depth_peak,
            **quantiles,
            **extra,
        )


class OpenLoopLoadGenerator:
    """Drive an :class:`AsyncGateway` with open-loop arrivals.

    The generator walks the schedule's arrival times against the event
    loop's clock.  Arrivals that are due are issued in a tight batch (no
    per-request task, no per-request sleep — at 100k req/s either would
    dominate the work); the loop is yielded every ``yield_every``
    arrivals so miss workers and the invalidation pump keep running, and
    the generator sleeps only when the next arrival is comfortably in
    the future.

    Latency is **completion minus scheduled arrival** — a request that
    sat behind a backlog is charged for the wait even though the
    generator issued it late.  That is the open-loop contract; it is what
    makes queueing collapse visible in p99.
    """

    def __init__(
        self,
        gateway: AsyncGateway,
        population: ZipfianPopulation,
        schedule: ArrivalSchedule,
        yield_every: int = 256,
        sample_every: int = 1024,
        sleep_floor: float = 0.001,
    ) -> None:
        self.gateway = gateway
        self.population = population
        self.schedule = schedule
        self.yield_every = yield_every
        self.sample_every = sample_every
        self.sleep_floor = sleep_floor

    def plan(self, limit: Optional[int] = None) -> List[Tuple[float, int]]:
        """The deterministic (arrival_offset, url_index) sequence.

        Two generators built with equal seeds and schedules produce
        equal plans — the determinism contract the tests pin down.
        """
        pairs: List[Tuple[float, int]] = []
        for offset in self.schedule.arrivals():
            pairs.append((offset, self.population.sample()))
            if limit is not None and len(pairs) >= limit:
                break
        return pairs

    async def run(
        self,
        drain: bool = True,
        plan: Optional[List[Tuple[float, int]]] = None,
    ) -> OpenLoopResult:
        """Issue the whole schedule; return the measured result.

        Pass ``plan`` (from :meth:`plan`) to replay an exact arrival
        sequence — e.g. after pre-warming its URL set, or to offer the
        identical workload to two serving stacks.  Each :meth:`plan`
        call advances the population's RNG, so two calls are two
        *different* (deterministically seeded) workloads.

        The hot loop is deliberately flat: callables and dicts are bound
        to locals, hit/request counters are accumulated in plain ints and
        folded into the gateway's stats once at the end (the totals are
        identical, the per-arrival attribute churn is not), and the loop
        yields to the scheduler every ``yield_every`` arrivals whenever
        misses are queued *or* a bus/tick task is attached — a pure hit
        stream on a bare gateway never needs the worker tasks to run,
        but an attached invalidation pump must not be starved by one.
        """
        loop = asyncio.get_running_loop()
        histogram = LatencyHistogram()
        depth_samples: List[int] = []
        if plan is None:
            plan = self.plan()
        gateway = self.gateway
        shed_before = gateway.stats.shed
        misses_before = gateway.stats.misses

        if gateway._queue is None:
            raise ServeError("gateway must be started before run()")

        # queue_depth_peak is a max, not a sum, so it cannot be
        # delta-corrected like misses/shed: zero it for the run and
        # restore the cumulative max afterwards, so back-to-back runs on
        # one gateway each report their own peak.
        depth_peak_before = gateway.stats.queue_depth_peak
        gateway.stats.queue_depth_peak = 0

        # Local bindings for the per-arrival path.
        time_fn = loop.time
        cache_get = gateway.site.web_cache.get
        records = self.population._records
        record_for = self.population.record_for
        key_for = gateway.key_for
        submit_miss = gateway.submit_miss
        record_latency = histogram.record
        queue_size = gateway._queue.qsize
        # With a bus pump or invalidation tick attached, the generator
        # must yield even on a pure hit stream — those tasks only run
        # when the loop gets control, and starving them during a burst
        # delays invalidation (stale serves) for the burst's duration.
        always_yield = gateway.bus is not None or gateway.tick is not None
        sleep_floor = self.sleep_floor
        yield_every = self.yield_every
        sample_every = self.sample_every
        # Hit latencies are bucketed inline (same math as
        # LatencyHistogram.record, folded back in below): at several
        # hundred thousand hits per second even one method call per
        # arrival shows up in the ceiling.
        bucket_counts = histogram._counts
        hit_count = 0
        hit_sum = 0.0
        hit_max = 0.0

        hits = 0
        issued = 0
        since_yield = 0
        since_sample = 0
        i = 0
        total = len(plan)
        start = time_fn()
        while i < total:
            now = time_fn()
            limit = now - start
            # Issue every arrival already due, with one clock read for
            # the whole batch (the batch bound keeps the latency error
            # below the batch's own processing time, microseconds against
            # millisecond-scale percentiles).
            batch_end = i + 64
            if batch_end > total:
                batch_end = total
            j = i
            while j < batch_end:
                offset, index = plan[j]
                if offset > limit:
                    break
                record = records.get(index)
                if record is None:
                    record = record_for(index, key_for)
                url_key = record[1]
                response = cache_get(url_key)
                if response is not None:
                    hits += 1
                    latency = limit - offset
                    if latency <= 0.0:
                        latency = 0.0
                        ns = 0
                    else:
                        ns = int(latency * 1e9)
                    if ns < 16:
                        bucket = ns
                    else:
                        length = ns.bit_length()
                        bucket = ((length - 4) << 4) | (
                            (ns >> (length - 5)) & 15
                        )
                    bucket_counts[bucket] = bucket_counts.get(bucket, 0) + 1
                    hit_count += 1
                    hit_sum += latency
                    if latency > hit_max:
                        hit_max = latency
                else:
                    def on_done(
                        _response: object, scheduled: float = start + offset
                    ) -> None:
                        miss_latency = time_fn() - scheduled
                        record_latency(
                            miss_latency if miss_latency > 0 else 0.0
                        )

                    submit_miss(
                        url_key, lambda request=record[2]: request, on_done
                    )
                j += 1
            if j > i:
                count = j - i
                issued += count
                since_yield += count
                since_sample += count
                i = j
                if since_sample >= sample_every:
                    since_sample = 0
                    depth_samples.append(gateway.queue_depth)
                if since_yield >= yield_every:
                    since_yield = 0
                    if always_yield or queue_size():
                        # Yield so the workers can drain the very
                        # backlog we are measuring (and, when attached,
                        # the bus pump and tick tasks keep running).
                        await asyncio.sleep(0)
                continue
            # The next arrival is in the future: sleep up to it, or spin
            # through the scheduler if it is imminent.
            wait = plan[i][0] - limit
            if wait > sleep_floor:
                await asyncio.sleep(wait)
            elif always_yield or queue_size():
                await asyncio.sleep(0)

        # Fold the batched hit counting into the gateway's books so its
        # stats read exactly as if try_hit had run per arrival, and the
        # inline bucket tallies into the histogram's totals.
        gateway.stats.requests += issued
        gateway.stats.hits += hits
        gateway.site.stats.requests += issued
        gateway.site.stats.page_cache_hits += hits
        histogram.count += hit_count
        histogram.sum_seconds += hit_sum
        if hit_max > histogram.max_seconds:
            histogram.max_seconds = hit_max

        if drain:
            await gateway.join()
        elapsed = time_fn() - start
        misses = gateway.stats.misses - misses_before
        shed = gateway.stats.shed - shed_before
        completed = hits + (misses if drain else 0)
        run_depth_peak = gateway.stats.queue_depth_peak
        if depth_peak_before > gateway.stats.queue_depth_peak:
            gateway.stats.queue_depth_peak = depth_peak_before
        return OpenLoopResult(
            offered_rps=self.schedule.mean_rate,
            achieved_rps=completed / elapsed if elapsed > 0 else 0.0,
            duration_seconds=elapsed,
            completed=completed,
            hits=hits,
            misses=misses,
            shed=shed,
            queue_depth_peak=run_depth_peak,
            queue_depth_samples=depth_samples,
            histogram=histogram,
        )
