"""Serving-tier metrics: cheap latency histograms and the curve schema.

Recording a latency must cost well under a microsecond — at 100k req/s
the histogram is touched on every request the gateway serves — so
:class:`LatencyHistogram` uses HDR-style log-linear buckets over integer
nanoseconds: the bucket index comes from the value's bit length plus its
top four mantissa bits (a shift and a mask, no floats, no bisect).
Relative quantization error is bounded by 1/16 ≈ 6%, far below run-to-run
noise at the tail.

:func:`curve_point` is the one row schema shared by every req/s × latency
curve in the repo — the measured sweeps of ``benchmarks/bench_serving.py``
and the simulated arms of ``bench_request_rate_sweep.py`` — so the two
can be plotted side by side from one JSON file.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Sub-buckets per octave: 4 mantissa bits.
_SUB_BITS = 4
_SUB = 1 << _SUB_BITS


class LatencyHistogram:
    """Log-linear histogram of latencies (seconds in, seconds out).

    Values are quantized to integer nanoseconds and bucketed by
    ``(bit_length, top 4 mantissa bits)``.  Exact count, sum, and max are
    kept alongside, so means and totals are not quantized.
    """

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self.count = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        ns = int(seconds * 1e9)
        if ns < _SUB:
            index = ns if ns > 0 else 0
        else:
            length = ns.bit_length()
            index = (
                (length - _SUB_BITS) << _SUB_BITS
            ) | ((ns >> (length - 1 - _SUB_BITS)) & (_SUB - 1))
        self._counts[index] = self._counts.get(index, 0) + 1
        self.count += 1
        self.sum_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @staticmethod
    def _bucket_mid_ns(index: int) -> float:
        if index < _SUB:
            return float(index)
        length = (index >> _SUB_BITS) + _SUB_BITS
        sub = index & (_SUB - 1)
        low = (_SUB + sub) << (length - 1 - _SUB_BITS)
        width = 1 << (length - 1 - _SUB_BITS)
        return low + width / 2.0

    def merge(self, other: "LatencyHistogram") -> None:
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self.count += other.count
        self.sum_seconds += other.sum_seconds
        self.max_seconds = max(self.max_seconds, other.max_seconds)

    @property
    def mean_seconds(self) -> float:
        return self.sum_seconds / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (0 < q <= 100) in seconds; 0.0 when empty."""
        if not self.count:
            return 0.0
        if not 0.0 < q <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {q}")
        rank = q / 100.0 * self.count
        seen = 0
        for index in sorted(self._counts):
            seen += self._counts[index]
            if seen >= rank:
                return self._bucket_mid_ns(index) / 1e9
        return self.max_seconds

    def percentiles_ms(self) -> Dict[str, float]:
        """The serving-tier headline numbers, in milliseconds."""
        return {
            "p50_ms": self.percentile(50.0) * 1e3,
            "p95_ms": self.percentile(95.0) * 1e3,
            "p99_ms": self.percentile(99.0) * 1e3,
            "p999_ms": self.percentile(99.9) * 1e3,
        }


def curve_point(
    *,
    source: str,
    arm: str,
    offered_rps: float,
    achieved_rps: float,
    p50_ms: Optional[float],
    p95_ms: Optional[float],
    p99_ms: Optional[float],
    p999_ms: Optional[float],
    hit_ratio: Optional[float] = None,
    completed: Optional[int] = None,
    queue_depth_peak: Optional[int] = None,
    stale_serves: Optional[int] = None,
    **extra: object,
) -> Dict[str, object]:
    """One point of a req/s × latency curve, measured or simulated.

    ``source`` is ``"measured"`` or ``"simulated"``; ``arm`` names the
    configuration (e.g. ``"async-inv-on"``, ``"config3-sim"``).  Extra
    keyword fields ride along untouched.
    """
    row: Dict[str, object] = {
        "source": source,
        "arm": arm,
        "offered_rps": round(offered_rps, 3),
        "achieved_rps": round(achieved_rps, 3),
        "p50_ms": p50_ms,
        "p95_ms": p95_ms,
        "p99_ms": p99_ms,
        "p999_ms": p999_ms,
    }
    if hit_ratio is not None:
        row["hit_ratio"] = round(hit_ratio, 4)
    if completed is not None:
        row["completed"] = completed
    if queue_depth_peak is not None:
        row["queue_depth_peak"] = queue_depth_peak
    if stale_serves is not None:
        row["stale_serves"] = stale_serves
    row.update(extra)
    return row


def sim_curve_point(
    arm: str, offered_rps: float, stats: "object", **extra: object
) -> Dict[str, object]:
    """Adapt a :class:`repro.sim.metrics.ResponseStats` to the schema.

    The simulator's closed-form arms report the same percentile keys as
    the measured gateway sweeps, so both curves share one JSON layout.
    """
    return curve_point(
        source="simulated",
        arm=arm,
        offered_rps=offered_rps,
        achieved_rps=offered_rps,
        p50_ms=stats.p50_ms,
        p95_ms=stats.p95_ms,
        p99_ms=stats.p99_ms,
        p999_ms=stats.p999_ms,
        hit_ratio=stats.hit_ratio,
        completed=stats.completed,
        **extra,
    )
