"""The asynchronous serving front end (ROADMAP: six-figure req/s).

This package ports the synchronous ``LoadBalancer → WebServer →
ApplicationServer → sniffer`` request path to cooperative concurrency
without forking any of those classes:

* :class:`~repro.serve.gateway.AsyncGateway` fronts a
  :class:`~repro.web.site.Site` (optionally with a
  :class:`~repro.cluster.cluster.CacheCluster` as its page cache),
  serving cache hits entirely on the event loop and running servlet+DB
  work for misses on a bounded pool of worker threads;
* :mod:`~repro.serve.loadgen` generates **open-loop** load — arrivals
  scheduled independently of completions, so queueing collapse is
  visible instead of being absorbed by a closed feedback loop;
* :mod:`~repro.serve.metrics` holds the latency histogram and the
  shared curve-point schema that lets measured sweeps and
  :mod:`repro.sim` model predictions plot side by side.
"""

from repro.serve.gateway import AsyncGateway, GatewayStats
from repro.serve.loadgen import (
    ArrivalSchedule,
    OpenLoopLoadGenerator,
    OpenLoopResult,
    RatePhase,
    ZipfianPopulation,
)
from repro.serve.metrics import LatencyHistogram, curve_point, sim_curve_point

__all__ = [
    "ArrivalSchedule",
    "AsyncGateway",
    "GatewayStats",
    "LatencyHistogram",
    "OpenLoopLoadGenerator",
    "OpenLoopResult",
    "RatePhase",
    "ZipfianPopulation",
    "curve_point",
    "sim_curve_point",
]
