"""Response-time collection and the paper's table-row format."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.workload import PageClass


@dataclass(frozen=True)
class ResponseSample:
    """One completed request."""

    at: float
    page_class: PageClass
    hit: bool
    response: float  # seconds, end-to-end
    db_time: float  # seconds spent at the DB (or data-cache) station


@dataclass
class ClassBreakdown:
    """Mean response per page class (diagnostics beyond the paper's tables)."""

    means: Dict[PageClass, float] = field(default_factory=dict)
    counts: Dict[PageClass, int] = field(default_factory=dict)


class ResponseStats:
    """Accumulates samples and produces the Table 2/3 aggregates.

    Samples inside the warm-up window are discarded, mirroring standard
    measurement practice (the paper reports steady-state-ish averages).
    """

    def __init__(self, warmup: float = 5.0) -> None:
        self.warmup = warmup
        self.samples: List[ResponseSample] = []

    def record(
        self,
        at: float,
        page_class: PageClass,
        hit: bool,
        response: float,
        db_time: float,
    ) -> None:
        if at < self.warmup:
            return
        self.samples.append(ResponseSample(at, page_class, hit, response, db_time))

    # -- aggregates (milliseconds, like the paper's tables) ------------------------

    @staticmethod
    def _mean_ms(values: List[float]) -> Optional[float]:
        if not values:
            return None
        return 1000.0 * sum(values) / len(values)

    @property
    def miss_db_ms(self) -> Optional[float]:
        return self._mean_ms([s.db_time for s in self.samples if not s.hit])

    @property
    def miss_resp_ms(self) -> Optional[float]:
        return self._mean_ms([s.response for s in self.samples if not s.hit])

    @property
    def hit_resp_ms(self) -> Optional[float]:
        return self._mean_ms([s.response for s in self.samples if s.hit])

    @property
    def exp_resp_ms(self) -> Optional[float]:
        return self._mean_ms([s.response for s in self.samples])

    @property
    def hit_ratio(self) -> float:
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s.hit) / len(self.samples)

    def percentile_ms(self, q: float, hits: Optional[bool] = None) -> Optional[float]:
        """The q-th percentile (0 < q < 100) of response times, in ms.

        ``hits`` filters to hits (True), misses (False), or all (None).
        """
        values = sorted(
            s.response for s in self.samples if hits is None or s.hit == hits
        )
        if not values:
            return None
        if not 0.0 < q < 100.0:
            raise ValueError(f"percentile must be in (0, 100), got {q}")
        # Nearest-rank with linear interpolation (numpy's default method).
        position = (q / 100.0) * (len(values) - 1)
        lower = int(position)
        upper = min(lower + 1, len(values) - 1)
        fraction = position - lower
        return 1000.0 * (values[lower] * (1 - fraction) + values[upper] * fraction)

    @property
    def p50_ms(self) -> Optional[float]:
        return self.percentile_ms(50.0)

    @property
    def p95_ms(self) -> Optional[float]:
        return self.percentile_ms(95.0)

    @property
    def p99_ms(self) -> Optional[float]:
        return self.percentile_ms(99.0)

    @property
    def p999_ms(self) -> Optional[float]:
        return self.percentile_ms(99.9)

    @property
    def completed(self) -> int:
        return len(self.samples)

    def breakdown(self, hits: Optional[bool] = None) -> ClassBreakdown:
        """Per-class mean responses, optionally filtered to hits/misses."""
        result = ClassBreakdown()
        for page_class in PageClass:
            values = [
                s.response
                for s in self.samples
                if s.page_class is page_class and (hits is None or s.hit == hits)
            ]
            result.counts[page_class] = len(values)
            if values:
                result.means[page_class] = 1000.0 * sum(values) / len(values)
        return result


@dataclass
class TableRow:
    """One cell-group of Table 2/3: a configuration under one update load."""

    configuration: str
    update_label: str
    miss_db_ms: Optional[float]
    miss_resp_ms: Optional[float]
    hit_resp_ms: Optional[float]
    exp_resp_ms: Optional[float]
    hit_ratio: float
    completed: int

    @staticmethod
    def _fmt(value: Optional[float]) -> str:
        return "N/A" if value is None else f"{value:8.0f}"

    def render(self) -> str:
        return (
            f"{self.configuration:10s} {self.update_label:18s} "
            f"miss-db={self._fmt(self.miss_db_ms)}  "
            f"miss={self._fmt(self.miss_resp_ms)}  "
            f"hit={self._fmt(self.hit_resp_ms)}  "
            f"exp={self._fmt(self.exp_resp_ms)}  "
            f"(hit ratio {self.hit_ratio:.2f}, n={self.completed})"
        )

    @classmethod
    def from_stats(
        cls, configuration: str, update_label: str, stats: ResponseStats
    ) -> "TableRow":
        return cls(
            configuration=configuration,
            update_label=update_label,
            miss_db_ms=stats.miss_db_ms,
            miss_resp_ms=stats.miss_resp_ms,
            hit_resp_ms=stats.hit_resp_ms,
            exp_resp_ms=stats.exp_resp_ms,
            hit_ratio=stats.hit_ratio,
            completed=stats.completed,
        )
