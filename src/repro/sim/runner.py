"""Experiment runner: regenerate Tables 2 and 3."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.configs import (
    ConfigurationModel,
    DataCacheMode,
    simulate_config1,
    simulate_config2,
    simulate_config3,
)
from repro.sim.metrics import ResponseStats, TableRow
from repro.sim.workload import PAPER_UPDATE_RATES, UpdateRate


@dataclass
class ExperimentRunner:
    """Runs the three configurations across the paper's update loads."""

    model: ConfigurationModel = field(default_factory=ConfigurationModel)

    def run_config(
        self,
        name: str,
        simulate: Callable[[UpdateRate, ConfigurationModel], ResponseStats],
        update_rates: Tuple[UpdateRate, ...] = PAPER_UPDATE_RATES,
    ) -> List[TableRow]:
        rows = []
        for rate in update_rates:
            stats = simulate(rate, self.model)
            rows.append(TableRow.from_stats(name, rate.label(), stats))
        return rows

    def table2(self) -> List[TableRow]:
        """Table 2: negligible middle-tier cache access in Config II."""
        rows: List[TableRow] = []
        rows += self.run_config("Conf I", simulate_config1)
        rows += self.run_config(
            "Conf II",
            lambda rate, model: simulate_config2(
                rate, model, mode=DataCacheMode.NEGLIGIBLE
            ),
        )
        rows += self.run_config("Conf III", simulate_config3)
        return rows

    def table3(self) -> List[TableRow]:
        """Table 3: the middle-tier cache is a local DBMS in Config II."""
        rows: List[TableRow] = []
        rows += self.run_config("Conf I", simulate_config1)
        rows += self.run_config(
            "Conf II",
            lambda rate, model: simulate_config2(
                rate, model, mode=DataCacheMode.LOCAL_DBMS
            ),
        )
        rows += self.run_config("Conf III", simulate_config3)
        return rows


def _render(title: str, rows: List[TableRow]) -> str:
    lines = [title, "-" * len(title)]
    lines += [row.render() for row in rows]
    return "\n".join(lines)


def run_table2(model: Optional[ConfigurationModel] = None, echo: bool = True) -> List[TableRow]:
    """Regenerate Table 2; prints the rows when ``echo``."""
    runner = ExperimentRunner(model or ConfigurationModel())
    rows = runner.table2()
    if echo:
        print(_render("Table 2 — 70% hit ratio, negligible middle-tier access", rows))
    return rows


def run_table3(model: Optional[ConfigurationModel] = None, echo: bool = True) -> List[TableRow]:
    """Regenerate Table 3; prints the rows when ``echo``."""
    runner = ExperimentRunner(model or ConfigurationModel())
    rows = runner.table3()
    if echo:
        print(_render("Table 3 — 70% hit ratio, local-DBMS middle-tier cache", rows))
    return rows
