"""End-to-end timing models of the three site configurations (§5.3).

Each ``simulate_configN`` function builds the stations of that
architecture, replays the paper's request and update streams through them,
and returns the measured :class:`~repro.sim.metrics.ResponseStats`.

The three architectures differ exactly where the paper says they do:

* **Config I** — each node co-hosts web server, app server, *and* DBMS
  (``colocated_db_factor``); every request reaches a database; updates
  are applied to all replicas (replication cost).
* **Config II** — one dedicated DBMS; per-node data caches absorb 70 % of
  queries; hit traffic still crosses the shared network, which also
  carries the update stream and the cache-synchronization queries.
* **Config III** — one dedicated DBMS; the web page cache sits *in front
  of* the load balancer, outside the shared network, so hits are immune
  to update traffic; the invalidator's polling query hits the DBMS once
  per second.  Invalidation churn concentrates the cache on small hot
  pages, so the mean cached payload — and with it the hit time — falls
  as the update rate rises (``CostModel.hit_shrink_rate``), reproducing
  the paper's falling 114→73→47 ms hit column.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.sim.events import Simulator
from repro.sim.latency import CostModel
from repro.sim.metrics import ResponseStats
from repro.sim.resources import Resource, Station
from repro.sim.workload import (
    PageClass,
    RequestGenerator,
    UpdateGenerator,
    UpdateRate,
)


class DataCacheMode(enum.Enum):
    """The two Configuration-II variants of Tables 2 and 3."""

    NEGLIGIBLE = "negligible"  # in-memory access (Table 2)
    LOCAL_DBMS = "local-dbms"  # connection to a local DBMS (Table 3)


@dataclass
class ConfigurationModel:
    """Shared experiment knobs."""

    cost: CostModel = field(default_factory=CostModel)
    num_servers: int = 4
    hit_ratio: float = 0.7
    duration: float = 120.0
    warmup: float = 10.0
    seed: int = 7
    #: Total request arrival rate; split evenly over the three page
    #: classes (the paper ran 30/s = 10 light + 10 medium + 10 heavy).
    requests_per_second: float = 30.0

    def request_stream(self):
        return RequestGenerator(
            rate_per_class=self.requests_per_second / 3.0,
            duration=self.duration,
            seed=self.seed,
        ).arrivals()

    def update_stream(self, rate: UpdateRate):
        return UpdateGenerator(
            rate, duration=self.duration, seed=self.seed + 1
        ).arrivals()


# ---------------------------------------------------------------------------
# Configuration I — replication
# ---------------------------------------------------------------------------


def simulate_config1(
    update_rate: UpdateRate,
    model: Optional[ConfigurationModel] = None,
    probe: Optional[Dict[str, float]] = None,
) -> ResponseStats:
    """Replicated web servers, each with its own co-located DBMS.

    ``probe``, when given, is filled with time-averaged utilizations per
    station — the paper's §5.1.2 "observe how the bottleneck moves".
    """
    model = model or ConfigurationModel()
    cost = model.cost
    sim = Simulator()
    stats = ResponseStats(warmup=model.warmup)
    rng = np.random.default_rng(model.seed + 2)

    network = Station(sim, cost.network_capacity, "network")
    workers = [
        Resource(sim, cost.app_workers, f"workers{i}") for i in range(model.num_servers)
    ]
    databases = [
        Station(sim, cost.db_capacity, f"db{i}") for i in range(model.num_servers)
    ]

    def request_flow(page_class: PageClass, server: int):
        start = sim.now
        yield from network.serve(cost.network_message_time)
        yield workers[server].acquire()
        db_sojourn = yield from databases[server].serve(
            cost.db_time(page_class, colocated=True)
        )
        yield sim.timeout(cost.app_assembly_time)
        workers[server].release()
        yield from network.serve(
            cost.network_message_time * cost.network_page_factor
        )
        stats.record(start, page_class, hit=False,
                     response=sim.now - start, db_time=db_sojourn)

    def update_flow():
        # The update arrives once over the network, then every replica
        # applies it (database replication cost, §1.1).
        yield from network.serve(
            cost.network_message_time * cost.update_message_factor
        )
        for database in databases:
            sim.process(_apply_update(database))

    def _apply_update(database: Station):
        yield from database.serve(cost.update_time(colocated=True))

    def driver():
        arrivals = model.request_stream()
        server_cycle = 0
        previous = 0.0
        for arrival in arrivals:
            yield sim.timeout(arrival.at - previous)
            previous = arrival.at
            sim.process(request_flow(arrival.page_class, server_cycle))
            server_cycle = (server_cycle + 1) % model.num_servers

    def update_driver():
        previous = 0.0
        for arrival in model.update_stream(update_rate):
            yield sim.timeout(arrival.at - previous)
            previous = arrival.at
            sim.process(update_flow())

    sim.process(driver())
    sim.process(update_driver())
    sim.run(until=model.duration)
    if probe is not None:
        probe["db"] = sum(d.utilization() for d in databases) / len(databases)
        probe["network"] = network.utilization()
        probe["workers"] = sum(w.utilization() for w in workers) / len(workers)
    return stats


# ---------------------------------------------------------------------------
# Configuration II — middle-tier data caches
# ---------------------------------------------------------------------------


def simulate_config2(
    update_rate: UpdateRate,
    model: Optional[ConfigurationModel] = None,
    mode: DataCacheMode = DataCacheMode.NEGLIGIBLE,
    probe: Optional[Dict[str, float]] = None,
) -> ResponseStats:
    """One shared DBMS plus per-server middle-tier data caches."""
    model = model or ConfigurationModel()
    cost = model.cost
    sim = Simulator()
    stats = ResponseStats(warmup=model.warmup)
    rng = np.random.default_rng(model.seed + 2)

    network = Station(sim, cost.network_capacity, "network")
    database = Station(sim, cost.db_capacity, "db")
    workers = [
        Resource(sim, cost.app_workers, f"workers{i}") for i in range(model.num_servers)
    ]
    # In the LOCAL_DBMS mode each cache is a single-connection local
    # database sharing the node (§5.3.2); in the NEGLIGIBLE mode access is
    # an in-memory lookup and needs no station.
    cache_stations = [
        Station(sim, cost.data_cache_capacity, f"dcache{i}")
        for i in range(model.num_servers)
    ]

    def request_flow(page_class: PageClass, server: int):
        start = sim.now
        yield from network.serve(cost.network_message_time)
        yield workers[server].acquire()
        is_hit = bool(rng.random() < model.hit_ratio)
        if is_hit:
            if mode is DataCacheMode.LOCAL_DBMS:
                db_sojourn = yield from cache_stations[server].serve(
                    cost.data_cache_connection_time
                )
            else:
                yield sim.timeout(cost.data_cache_access_time)
                db_sojourn = cost.data_cache_access_time
        else:
            # Query travels over the shared network to the DBMS and back.
            yield from network.serve(cost.network_message_time)
            db_sojourn = yield from database.serve(
                cost.db_time(page_class, colocated=False)
            )
            yield from network.serve(cost.network_message_time)
        yield sim.timeout(cost.app_assembly_time)
        workers[server].release()
        yield from network.serve(
            cost.network_message_time * cost.network_page_factor
        )
        stats.record(start, page_class, hit=is_hit,
                     response=sim.now - start, db_time=db_sojourn)

    def update_flow():
        yield from network.serve(
            cost.network_message_time * cost.update_message_factor
        )
        yield from database.serve(cost.update_time(colocated=False))

    def sync_flow():
        # One "fetch the update list" query per cache per interval.
        while sim.now < model.duration:
            yield sim.timeout(cost.sync_interval)
            for _cache in range(model.num_servers):
                sim.process(_one_sync())

    def _one_sync():
        yield from network.serve(cost.network_message_time)
        yield from database.serve(cost.sync_query_time)
        yield from network.serve(cost.network_message_time)

    def driver():
        server_cycle = 0
        previous = 0.0
        for arrival in model.request_stream():
            yield sim.timeout(arrival.at - previous)
            previous = arrival.at
            sim.process(request_flow(arrival.page_class, server_cycle))
            server_cycle = (server_cycle + 1) % model.num_servers

    def update_driver():
        previous = 0.0
        for arrival in model.update_stream(update_rate):
            yield sim.timeout(arrival.at - previous)
            previous = arrival.at
            sim.process(update_flow())

    sim.process(driver())
    sim.process(update_driver())
    sim.process(sync_flow())
    sim.run(until=model.duration)
    if probe is not None:
        probe["db"] = database.utilization()
        probe["network"] = network.utilization()
        probe["workers"] = sum(w.utilization() for w in workers) / len(workers)
        probe["data_cache"] = (
            sum(c.utilization() for c in cache_stations) / len(cache_stations)
        )
    return stats


# ---------------------------------------------------------------------------
# Configuration III — dynamic web-page cache (CachePortal)
# ---------------------------------------------------------------------------


def simulate_config3(
    update_rate: UpdateRate,
    model: Optional[ConfigurationModel] = None,
    probe: Optional[Dict[str, float]] = None,
) -> ResponseStats:
    """One shared DBMS plus a front web-page cache managed by CachePortal."""
    model = model or ConfigurationModel()
    cost = model.cost
    sim = Simulator()
    stats = ResponseStats(warmup=model.warmup)
    rng = np.random.default_rng(model.seed + 2)

    network = Station(sim, cost.network_capacity, "network")
    database = Station(sim, cost.db_capacity, "db")
    workers = [
        Resource(sim, cost.app_workers, f"workers{i}") for i in range(model.num_servers)
    ]
    web_cache = Station(sim, cost.web_cache_capacity, "webcache")

    def request_flow(page_class: PageClass, server: int):
        start = sim.now
        is_hit = bool(rng.random() < model.hit_ratio)
        if is_hit:
            # Served straight from the cache, outside the site network —
            # this is why Conf III hits are immune to update traffic.
            yield from web_cache.serve(
                cost.cache_hit_time(page_class, update_rate.total)
            )
            stats.record(start, page_class, hit=True,
                         response=sim.now - start, db_time=0.0)
            return
        yield from network.serve(cost.network_message_time)
        yield workers[server].acquire()
        yield from network.serve(cost.network_message_time)
        db_sojourn = yield from database.serve(
            cost.db_time(page_class, colocated=False)
        )
        yield from network.serve(cost.network_message_time)
        yield sim.timeout(cost.app_assembly_time)
        workers[server].release()
        yield from network.serve(
            cost.network_message_time * cost.network_page_factor
        )
        stats.record(start, page_class, hit=False,
                     response=sim.now - start, db_time=db_sojourn)

    def update_flow():
        yield from network.serve(
            cost.network_message_time * cost.update_message_factor
        )
        yield from database.serve(cost.update_time(colocated=False))

    def polling_flow():
        # The invalidator polls its data cache and issues one consolidated
        # "list of recent updates" query to the DBMS each second (§5.2.4).
        while sim.now < model.duration:
            yield sim.timeout(cost.sync_interval)
            sim.process(_one_poll())

    def _one_poll():
        yield from network.serve(cost.network_message_time)
        yield from database.serve(cost.polling_query_time)

    def driver():
        server_cycle = 0
        previous = 0.0
        for arrival in model.request_stream():
            yield sim.timeout(arrival.at - previous)
            previous = arrival.at
            sim.process(request_flow(arrival.page_class, server_cycle))
            server_cycle = (server_cycle + 1) % model.num_servers

    def update_driver():
        previous = 0.0
        for arrival in model.update_stream(update_rate):
            yield sim.timeout(arrival.at - previous)
            previous = arrival.at
            sim.process(update_flow())

    sim.process(driver())
    sim.process(update_driver())
    sim.process(polling_flow())
    sim.run(until=model.duration)
    if probe is not None:
        probe["db"] = database.utilization()
        probe["network"] = network.utilization()
        probe["workers"] = sum(w.utilization() for w in workers) / len(workers)
        probe["web_cache"] = web_cache.utilization()
    return stats


# ---------------------------------------------------------------------------
# Configuration III — streaming invalidation pipeline
# ---------------------------------------------------------------------------


def simulate_config3_streaming(
    update_rate: UpdateRate,
    model: Optional[ConfigurationModel] = None,
    num_shards: int = 4,
    probe: Optional[Dict[str, float]] = None,
) -> ResponseStats:
    """Config III driven by the streaming pipeline instead of the
    synchronous invalidator.

    The synchronous model issues one consolidated polling query per
    ``sync_interval`` — every update waits, on average, half an interval
    before the invalidator even looks at it.  The pipeline tails the
    update log continuously: the invalidator wakes every
    ``sync_interval / num_shards`` and polls *only when updates arrived*
    in that window.  Request/update timing is identical to
    :func:`simulate_config3`; what changes is the invalidation lag
    (reported via ``probe["invalidation_lag"]``, in seconds) and the
    polling cadence — more shards buy fresher caches, with DB polling
    load still bounded by the update arrival pattern.
    """
    model = model or ConfigurationModel()
    cost = model.cost
    sim = Simulator()
    stats = ResponseStats(warmup=model.warmup)
    rng = np.random.default_rng(model.seed + 2)

    network = Station(sim, cost.network_capacity, "network")
    database = Station(sim, cost.db_capacity, "db")
    workers = [
        Resource(sim, cost.app_workers, f"workers{i}") for i in range(model.num_servers)
    ]
    web_cache = Station(sim, cost.web_cache_capacity, "webcache")

    pending_updates = 0
    lag_total = 0.0
    lag_count = 0
    polls_issued = 0
    update_arrival_times: List[float] = []

    def request_flow(page_class: PageClass, server: int):
        start = sim.now
        is_hit = bool(rng.random() < model.hit_ratio)
        if is_hit:
            yield from web_cache.serve(
                cost.cache_hit_time(page_class, update_rate.total)
            )
            stats.record(start, page_class, hit=True,
                         response=sim.now - start, db_time=0.0)
            return
        yield from network.serve(cost.network_message_time)
        yield workers[server].acquire()
        yield from network.serve(cost.network_message_time)
        db_sojourn = yield from database.serve(
            cost.db_time(page_class, colocated=False)
        )
        yield from network.serve(cost.network_message_time)
        yield sim.timeout(cost.app_assembly_time)
        workers[server].release()
        yield from network.serve(
            cost.network_message_time * cost.network_page_factor
        )
        stats.record(start, page_class, hit=False,
                     response=sim.now - start, db_time=db_sojourn)

    def update_flow():
        nonlocal pending_updates
        yield from network.serve(
            cost.network_message_time * cost.update_message_factor
        )
        yield from database.serve(cost.update_time(colocated=False))
        pending_updates += 1
        update_arrival_times.append(sim.now)

    def pipeline_flow():
        # The tailer pump: wake num_shards times per sync interval and
        # issue one consolidated (per-shard) poll only when the window
        # saw committed updates — idle windows cost nothing.
        nonlocal pending_updates, lag_total, lag_count, polls_issued
        tick = cost.sync_interval / max(1, num_shards)
        while sim.now < model.duration:
            yield sim.timeout(tick)
            if pending_updates:
                for arrived_at in update_arrival_times:
                    lag_total += sim.now - arrived_at
                    lag_count += 1
                update_arrival_times.clear()
                pending_updates = 0
                polls_issued += 1
                sim.process(_one_shard_poll())

    def _one_shard_poll():
        yield from network.serve(cost.network_message_time)
        yield from database.serve(cost.polling_query_time)

    def driver():
        server_cycle = 0
        previous = 0.0
        for arrival in model.request_stream():
            yield sim.timeout(arrival.at - previous)
            previous = arrival.at
            sim.process(request_flow(arrival.page_class, server_cycle))
            server_cycle = (server_cycle + 1) % model.num_servers

    def update_driver():
        previous = 0.0
        for arrival in model.update_stream(update_rate):
            yield sim.timeout(arrival.at - previous)
            previous = arrival.at
            sim.process(update_flow())

    sim.process(driver())
    sim.process(update_driver())
    sim.process(pipeline_flow())
    sim.run(until=model.duration)
    if probe is not None:
        probe["db"] = database.utilization()
        probe["network"] = network.utilization()
        probe["workers"] = sum(w.utilization() for w in workers) / len(workers)
        probe["web_cache"] = web_cache.utilization()
        probe["invalidation_lag"] = (
            lag_total / lag_count if lag_count else 0.0
        )
        probe["polls_issued"] = float(polls_issued)
    return stats
