"""Discrete-event simulation of the paper's evaluation testbed.

The paper ran a *hybrid* experiment: real servers where timing mattered,
simulated generators where control mattered.  Our substrate is inverted —
the components are real (they execute queries and cache pages) while the
*timing* is simulated: a process-based discrete-event kernel
(:mod:`events`), queueing stations for the contended resources
(:mod:`resources`), a calibrated cost model (:mod:`latency`), the paper's
workload generators (:mod:`workload`), and end-to-end models of the three
site configurations (:mod:`configs`) whose measured response times
reproduce Tables 2 and 3.
"""

from repro.sim.events import Event, Process, Simulator
from repro.sim.resources import Resource, Station
from repro.sim.latency import CostModel
from repro.sim.workload import PageClass, RequestGenerator, UpdateGenerator, UpdateRate
from repro.sim.metrics import ClassBreakdown, ResponseStats, TableRow
from repro.sim.configs import (
    ConfigurationModel,
    DataCacheMode,
    simulate_config1,
    simulate_config2,
    simulate_config3,
    simulate_config3_streaming,
)
from repro.sim.runner import ExperimentRunner, run_table2, run_table3

__all__ = [
    "ClassBreakdown",
    "ConfigurationModel",
    "CostModel",
    "DataCacheMode",
    "Event",
    "ExperimentRunner",
    "PageClass",
    "Process",
    "RequestGenerator",
    "Resource",
    "ResponseStats",
    "Simulator",
    "Station",
    "TableRow",
    "UpdateGenerator",
    "UpdateRate",
    "run_table2",
    "run_table3",
    "simulate_config1",
    "simulate_config2",
    "simulate_config3",
    "simulate_config3_streaming",
]
