"""Queueing resources for the simulation: FIFO stations with capacity.

A :class:`Resource` is a counted semaphore with a FIFO wait queue — the
model for worker pools, database CPUs, and network links.  A
:class:`Station` wraps a resource with the common acquire→hold→release
pattern and collects the statistics the experiment tables need
(utilization, queue length, sojourn times).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Generator, List, Optional

from collections import deque

from repro.errors import SimulationError
from repro.sim.events import Event, Simulator


class Resource:
    """Counted FIFO resource: ``capacity`` concurrent holders."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: Deque[Event] = deque()
        # Statistics.
        self.total_acquisitions = 0
        self._busy_integral = 0.0
        self._queue_integral = 0.0
        self._last_change = 0.0

    def _account(self) -> None:
        elapsed = self.sim.now - self._last_change
        self._busy_integral += self.in_use * elapsed
        self._queue_integral += len(self._waiters) * elapsed
        self._last_change = self.sim.now

    def acquire(self) -> Event:
        """Request one unit; the returned event triggers when granted."""
        self._account()
        event = self.sim.event()
        if self.in_use < self.capacity and not self._waiters:
            self.in_use += 1
            self.total_acquisitions += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit, waking the next waiter if any."""
        self._account()
        if self.in_use <= 0:
            raise SimulationError(f"release on idle resource {self.name!r}")
        if self._waiters:
            waiter = self._waiters.popleft()
            self.total_acquisitions += 1
            waiter.succeed()  # capacity transfers directly to the waiter
        else:
            self.in_use -= 1

    # -- statistics -------------------------------------------------------------

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Time-averaged fraction of capacity in use."""
        self._account()
        window = elapsed if elapsed is not None else self.sim.now
        if window <= 0:
            return 0.0
        return self._busy_integral / (window * self.capacity)

    def mean_queue_length(self, elapsed: Optional[float] = None) -> float:
        self._account()
        window = elapsed if elapsed is not None else self.sim.now
        if window <= 0:
            return 0.0
        return self._queue_integral / window

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class Station(Resource):
    """A service station: acquire, hold for a service time, release.

    Use from a process::

        yield from station.serve(0.05)
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "") -> None:
        super().__init__(sim, capacity, name)
        self.jobs_completed = 0
        self.total_sojourn = 0.0
        self.total_service = 0.0

    def serve(self, service_time: float) -> Generator[Event, None, float]:
        """Process-helper: queue for the station, hold, release.

        Returns the sojourn time (wait + service) so callers can break
        response times into components.
        """
        arrived = self.sim.now
        yield self.acquire()
        yield self.sim.timeout(service_time)
        self.release()
        sojourn = self.sim.now - arrived
        self.jobs_completed += 1
        self.total_sojourn += sojourn
        self.total_service += service_time
        return sojourn

    @property
    def mean_sojourn(self) -> float:
        if not self.jobs_completed:
            return 0.0
        return self.total_sojourn / self.jobs_completed
