"""A small process-based discrete-event simulation kernel.

Processes are Python generators that yield :class:`Event` objects; the
kernel resumes a process when the event it waits on triggers.  The design
follows SimPy's core ideas in ~150 lines — enough for queueing models of
servers, networks, and caches.

Example::

    sim = Simulator()

    def customer():
        yield sim.timeout(1.0)
        print("served at", sim.now)

    sim.process(customer())
    sim.run(until=10.0)
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimulationError

ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence processes can wait on."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._callbacks: List[Callable[["Event"], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now; waiting processes resume this instant."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        for callback in self._callbacks:
            self.sim._schedule(self.sim.now, callback, self)
        self._callbacks = []
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.triggered:
            self.sim._schedule(self.sim.now, callback, self)
        else:
            self._callbacks.append(callback)


class Timeout(Event):
    """An event that triggers after a fixed delay."""

    def __init__(self, sim: "Simulator", delay: float) -> None:
        super().__init__(sim)
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        sim._schedule(sim.now + delay, self._fire, None)

    def _fire(self, _arg: Any) -> None:
        self.succeed()


class Process(Event):
    """A running generator; itself an event that triggers on return."""

    def __init__(self, sim: "Simulator", generator: ProcessGenerator) -> None:
        super().__init__(sim)
        self._generator = generator
        sim._schedule(sim.now, self._resume, None)

    def _resume(self, event: Optional[Event]) -> None:
        try:
            value = event.value if isinstance(event, Event) else None
            target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes must yield Events"
            )
        target.add_callback(self._resume)


class Simulator:
    """The event loop: a time-ordered heap of scheduled callbacks."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, Callable[[Any], None], Any]] = []
        self._sequence = itertools.count()

    # -- scheduling -----------------------------------------------------------

    def _schedule(self, at: float, callback: Callable[[Any], None], arg: Any) -> None:
        if at < self.now:
            raise SimulationError(f"cannot schedule in the past ({at} < {self.now})")
        heapq.heappush(self._heap, (at, next(self._sequence), callback, arg))

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    # -- execution -------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or simulated time reaches ``until``."""
        while self._heap:
            at, _seq, callback, arg = self._heap[0]
            if until is not None and at > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            self.now = at
            callback(arg)
        if until is not None:
            self.now = until

    def step(self) -> bool:
        """Process one scheduled callback; returns False when idle."""
        if not self._heap:
            return False
        at, _seq, callback, arg = heapq.heappop(self._heap)
        self.now = at
        callback(arg)
        return True

    @property
    def pending(self) -> int:
        return len(self._heap)
