"""The cost model: service times for every contended resource.

All times are in **seconds** and are calibrated so that the simulated
testbed lands in the same regime as the paper's 200 MHz/768 MB testbed
under 30 requests/second:

* Configuration I co-locates the DBMS with the web/application server on
  each node, so every database operation pays ``colocated_db_factor`` —
  with 7.5 req/s per replica this pushes the replica DBMS past
  saturation; the worker pool (held for the whole request, including the
  database wait) then starves, reproducing the paper's split of
  tens-of-seconds responses between the DBMS and the app/web servers.
* Configurations II/III use one dedicated DBMS that only sees cache
  misses (30 % of 30 req/s), keeping it busy-but-stable; update streams
  push its utilization past 1, reproducing the growth of miss times with
  update rate.
* The Table-3 variant charges each middle-tier cache access a local-DBMS
  connection setup on a single-connection station, which saturates and
  drags the whole node down via the shared worker pool (§5.3.2).

The calibration targets are the *shapes* of Tables 2 and 3, not the
absolute milliseconds; see EXPERIMENTS.md for the side-by-side numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.sim.workload import PageClass


@dataclass(frozen=True)
class CostModel:
    """Every constant of the simulated testbed, in one place."""

    # -- database ------------------------------------------------------------
    #: Query service time per page class on the dedicated DBMS (seconds).
    db_query_time: Dict[PageClass, float] = field(
        default_factory=lambda: {
            PageClass.LIGHT: 0.030,
            PageClass.MEDIUM: 0.080,
            PageClass.HEAVY: 0.175,
        }
    )
    #: One update statement (insert or delete) on the dedicated DBMS.
    db_update_time: float = 0.004
    #: Slow-down factor when the DBMS shares its node with the web and
    #: application server (Configuration I).
    colocated_db_factor: float = 1.8
    #: Concurrent queries the DBMS can run (CPU-bound in the paper's era).
    db_capacity: int = 1

    # -- application / web server ------------------------------------------------
    #: Page assembly time at the application server (result → HTML).
    app_assembly_time: float = 0.012
    #: Worker threads per web/application server; a worker is *held* for
    #: the whole request, including the database wait — the resource-
    #: starvation coupling the paper calls out in §5.3.1.
    app_workers: int = 32

    # -- network --------------------------------------------------------------
    #: Per-message transit on the shared site network.
    network_message_time: float = 0.003
    #: Concurrent message slots (link bandwidth model).
    network_capacity: int = 1
    #: Extra transit for a full generated page (larger payload).
    network_page_factor: float = 2.0
    #: Extra transit for an update message (carries tuple data).
    update_message_factor: float = 3.0

    # -- web page cache (Configuration III) --------------------------------------
    #: Serving a cached page, per page class (payload-size dependent).
    web_cache_hit_time: Dict[PageClass, float] = field(
        default_factory=lambda: {
            PageClass.LIGHT: 0.012,
            PageClass.MEDIUM: 0.030,
            PageClass.HEAVY: 0.052,
        }
    )
    #: Concurrent transfers the cache node sustains.
    web_cache_capacity: int = 8
    #: Cached-payload shrink rate: invalidation under update load keeps
    #: the freshest (small, hot) pages cached, so the mean served-page
    #: size falls.  Effective hit time = base · exp(-rate · updates/s).
    #: This reproduces the falling hit column of the paper's Conf III
    #: (114 → 73 → 47 ms) without perturbing the miss mix.
    hit_shrink_rate: float = 0.008

    # -- middle-tier data cache (Configuration II) -----------------------------------
    #: Table 2 regime: in-memory access, negligible processing.
    data_cache_access_time: float = 0.002
    #: Table 3 regime: connection establishment to the local DBMS that
    #: implements the cache (per §5.3.2 the query itself is free, the
    #: connection is not).
    data_cache_connection_time: float = 0.350
    #: Concurrent connections the local cache DBMS accepts.
    data_cache_capacity: int = 1

    # -- synchronization / invalidation traffic --------------------------------------
    #: One synchronization query (fetch the recent-updates list).
    sync_query_time: float = 0.010
    #: Interval between synchronization rounds (the paper used 1 s).
    sync_interval: float = 1.0
    #: One invalidator polling query against the DBMS (Conf III); the
    #: paper simulated this as one query per second fetching the updates.
    polling_query_time: float = 0.010

    def db_time(self, page_class: PageClass, colocated: bool) -> float:
        base = self.db_query_time[page_class]
        return base * self.colocated_db_factor if colocated else base

    def update_time(self, colocated: bool) -> float:
        return (
            self.db_update_time * self.colocated_db_factor
            if colocated
            else self.db_update_time
        )

    def cache_hit_time(self, page_class: PageClass, updates_per_second: float) -> float:
        """Web-cache serve time under the payload-shrink effect."""
        shrink = math.exp(-self.hit_shrink_rate * updates_per_second)
        return self.web_cache_hit_time[page_class] * shrink
