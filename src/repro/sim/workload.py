"""Workload generators: the paper's request and update streams (§5.2).

* Requests arrive Poisson at 30/second — 10 light-, 10 medium-, and
  10 heavy-page requests per second.  A light page selects from the small
  (500-tuple) table, a medium page from the large (2500-tuple) table, and
  a heavy page runs the select-join over both; selectivity 0.1 throughout.
* Updates arrive as ⟨ins₁, del₁, ins₂, del₂⟩ per second: the paper ran
  no-updates, ⟨5,5,5,5⟩, and ⟨12,12,12,12⟩.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


class PageClass(enum.Enum):
    """The three dynamically generated page kinds of the test application."""

    LIGHT = "light"
    MEDIUM = "medium"
    HEAVY = "heavy"

    @property
    def weight(self) -> float:
        """Relative result-payload weight (used by cache-serve times)."""
        return {"light": 1.0, "medium": 2.5, "heavy": 4.0}[self.value]


@dataclass(frozen=True)
class UpdateRate:
    """⟨ins₁, del₁, ins₂, del₂⟩ — per-table insert/delete rates (per second)."""

    ins1: float = 0.0
    del1: float = 0.0
    ins2: float = 0.0
    del2: float = 0.0

    @property
    def total(self) -> float:
        return self.ins1 + self.del1 + self.ins2 + self.del2

    def label(self) -> str:
        if self.total == 0:
            return "No Updates"
        return f"<{self.ins1:g}, {self.del1:g}, {self.ins2:g}, {self.del2:g}>"


#: The three update loads of Tables 2 and 3.
NO_UPDATES = UpdateRate()
UPDATES_5 = UpdateRate(5, 5, 5, 5)
UPDATES_12 = UpdateRate(12, 12, 12, 12)
PAPER_UPDATE_RATES: Tuple[UpdateRate, ...] = (NO_UPDATES, UPDATES_5, UPDATES_12)


@dataclass(frozen=True)
class RequestArrival:
    """One scheduled page request."""

    at: float
    page_class: PageClass


@dataclass(frozen=True)
class UpdateArrival:
    """One scheduled update statement (an insert or delete on one table)."""

    at: float
    table_index: int  # 1 (small) or 2 (large)
    is_insert: bool


class RequestGenerator:
    """Poisson request stream: ``rate_per_class`` arrivals/s per class."""

    def __init__(
        self,
        rate_per_class: float = 10.0,
        duration: float = 60.0,
        seed: int = 7,
    ) -> None:
        self.rate_per_class = rate_per_class
        self.duration = duration
        self.rng = np.random.default_rng(seed)

    def arrivals(self) -> List[RequestArrival]:
        """All request arrivals within the run, time-ordered."""
        events: List[RequestArrival] = []
        for page_class in PageClass:
            now = 0.0
            while True:
                now += self.rng.exponential(1.0 / self.rate_per_class)
                if now >= self.duration:
                    break
                events.append(RequestArrival(now, page_class))
        events.sort(key=lambda arrival: arrival.at)
        return events


class UpdateGenerator:
    """Poisson update stream following an :class:`UpdateRate`."""

    def __init__(self, rate: UpdateRate, duration: float = 60.0, seed: int = 11) -> None:
        self.rate = rate
        self.duration = duration
        self.rng = np.random.default_rng(seed)

    def arrivals(self) -> List[UpdateArrival]:
        events: List[UpdateArrival] = []
        streams = (
            (self.rate.ins1, 1, True),
            (self.rate.del1, 1, False),
            (self.rate.ins2, 2, True),
            (self.rate.del2, 2, False),
        )
        for rate, table_index, is_insert in streams:
            if rate <= 0:
                continue
            now = 0.0
            while True:
                now += self.rng.exponential(1.0 / rate)
                if now >= self.duration:
                    break
                events.append(UpdateArrival(now, table_index, is_insert))
        events.sort(key=lambda arrival: arrival.at)
        return events


def build_paper_schema_sql(small_rows: int = 500, large_rows: int = 2500,
                           join_values: int = 10) -> List[str]:
    """DDL + DML recreating the paper's test database (§5.2.1).

    Two tables sharing a join attribute with ``join_values`` uniformly
    distributed values; numeric payload columns sized so that selectivity
    0.1 predicates are easy to write (``payload % 10 = k``).
    """
    statements = [
        "CREATE TABLE small_items (id INT PRIMARY KEY, join_attr INT, payload INT)",
        "CREATE TABLE large_items (id INT PRIMARY KEY, join_attr INT, payload INT)",
        "CREATE INDEX idx_small_join ON small_items (join_attr)",
        "CREATE INDEX idx_large_join ON large_items (join_attr)",
    ]
    small_values = ", ".join(
        f"({i}, {i % join_values}, {i % 10})" for i in range(small_rows)
    )
    large_values = ", ".join(
        f"({i}, {i % join_values}, {i % 10})" for i in range(large_rows)
    )
    statements.append(f"INSERT INTO small_items VALUES {small_values}")
    statements.append(f"INSERT INTO large_items VALUES {large_values}")
    return statements


#: The three page queries (selectivity 0.1 each: one of ten payload values /
#: one of ten join values).
LIGHT_QUERY = "SELECT * FROM small_items WHERE payload = ?"
MEDIUM_QUERY = "SELECT * FROM large_items WHERE payload = ?"
HEAVY_QUERY = (
    "SELECT small_items.id, large_items.id FROM small_items, large_items "
    "WHERE small_items.join_attr = large_items.join_attr "
    "AND small_items.join_attr = ?"
)
