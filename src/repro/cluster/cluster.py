"""The cache cluster facade: N two-tier shards behind one ring.

This is the serving substrate the ROADMAP names: the single-node
``WebCache`` scaled out to a consistent-hash cluster of byte-budget,
restart-tolerant shards.  The facade plays two roles:

* **data plane drop-in** — it implements the full ``WebCache`` protocol
  (``get``/``put``/``eject``/``handle_message``/``keys``/``clear``/
  ``stats``), so a Configuration III site, the synchronous portal, the
  staleness auditor, and the recovery reconciler all treat the cluster
  as "the web cache" unchanged while every operation is routed to the
  owning shard;
* **control plane** — membership (add/remove shards), per-shard
  kill/restart with warm restore from the PR-3 checkpoint subsystem,
  the shared eject journal that makes warm restarts staleness-safe, and
  the aggregated status the ``repro cluster`` CLI renders.

The facade survives individual shard kills (it is the membership
service, not a cache process); whole-cluster restarts go through the
``snapshot_state``/``restore_state`` envelope carried by
:mod:`repro.core.recovery`.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.errors import ClusterError
from repro.web.cache import CacheStats
from repro.web.http import HttpRequest, HttpResponse
from repro.cluster.persistence import ShardCheckpointer, ShardRestoreReport
from repro.cluster.ring import DEFAULT_VNODES, ConsistentHashRing
from repro.cluster.shard import (
    DEFAULT_COLD_ENTRIES,
    DEFAULT_HOT_BYTES,
    CacheShard,
    EjectJournal,
)

#: ``ShardFactory(name, journal) -> CacheShard`` — lets benches inject
#: FlakyCache-style shards with per-shard seeded RNGs.
ShardFactory = Callable[[str, EjectJournal], CacheShard]


def shard_names(count: int) -> List[str]:
    """Stable shard identities: ``s00`` … ``s63``."""
    width = max(2, len(str(max(count - 1, 0))))
    return [f"s{i:0{width}d}" for i in range(count)]


class CacheCluster:
    """A consistent-hash cluster of two-tier cache shards.

    Args:
        num_shards: initial shard count.
        vnodes: virtual nodes per shard on the placement ring.
        hot_bytes: per-shard DRAM budget.
        cold_entries: per-shard overflow capacity (0 disables the tier).
        replicas: owners per key; ejects reach every replica, stores go
            to every replica, gets probe primary-first.
        default_ttl / clock: forwarded to each shard's tiers.
        checkpoint_dir: where per-shard snapshots live; a private temp
            directory is created when omitted.
        shard_factory: custom shard construction (fault injection).
    """

    def __init__(
        self,
        num_shards: int = 4,
        vnodes: int = DEFAULT_VNODES,
        hot_bytes: int = DEFAULT_HOT_BYTES,
        cold_entries: int = DEFAULT_COLD_ENTRIES,
        replicas: int = 1,
        default_ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        shard_factory: Optional[ShardFactory] = None,
    ) -> None:
        if num_shards < 1:
            raise ClusterError("a cluster needs at least one shard")
        if replicas < 1:
            raise ClusterError("replicas must be >= 1")
        self.hot_bytes = hot_bytes
        self.cold_entries = cold_entries
        self.replicas = replicas
        self.default_ttl = default_ttl
        self._clock = clock
        self.journal = EjectJournal()
        self.ring = ConsistentHashRing(vnodes=vnodes)
        self._shards: Dict[str, CacheShard] = {}
        self._shard_factory = shard_factory
        if checkpoint_dir is None:
            checkpoint_dir = tempfile.mkdtemp(prefix="repro-cluster-")
        self.checkpointer = ShardCheckpointer(checkpoint_dir)
        for name in shard_names(num_shards):
            self.add_shard(name)

    # -- membership -----------------------------------------------------------

    def _build_shard(self, name: str) -> CacheShard:
        if self._shard_factory is not None:
            return self._shard_factory(name, self.journal)
        return CacheShard(
            name,
            hot_bytes=self.hot_bytes,
            cold_entries=self.cold_entries,
            default_ttl=self.default_ttl,
            clock=self._clock,
            journal=self.journal,
        )

    def add_shard(self, name: str) -> CacheShard:
        if name in self._shards:
            raise ClusterError(f"shard {name!r} already in the cluster")
        shard = self._build_shard(name)
        if shard.journal is not self.journal:
            # A factory-built shard must share the cluster journal or the
            # warm-restart staleness guard silently stops working.
            shard.journal = self.journal
        self._shards[name] = shard
        self.ring.add_shard(name)
        return shard

    def remove_shard(self, name: str) -> int:
        """Decommission a shard; its pages are dropped (they remap to
        other owners and regenerate on demand — never served stale).
        Returns how many pages were dropped."""
        shard = self._shards.pop(name, None)
        if shard is None:
            raise ClusterError(f"shard {name!r} not in the cluster")
        self.ring.remove_shard(name)
        dropped = len(shard)
        shard.clear()
        return dropped

    @property
    def shards(self) -> List[CacheShard]:
        return [self._shards[name] for name in sorted(self._shards)]

    def shard(self, name: str) -> CacheShard:
        try:
            return self._shards[name]
        except KeyError:
            raise ClusterError(f"shard {name!r} not in the cluster") from None

    def owners_of(self, url_key: str) -> List[CacheShard]:
        return [
            self._shards[name]
            for name in self.ring.owners(url_key, self.replicas)
        ]

    # -- the WebCache protocol --------------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards.values())

    def __contains__(self, url_key: str) -> bool:
        return any(url_key in shard for shard in self.owners_of(url_key))

    @property
    def bytes_used(self) -> int:
        return sum(shard.bytes_used for shard in self._shards.values())

    @property
    def capacity_bytes(self) -> int:
        return self.hot_bytes * len(self._shards)

    def keys(self) -> List[str]:
        seen: Dict[str, None] = {}
        for shard in self.shards:
            for key in shard.keys():
                seen.setdefault(key)
        return list(seen)

    def get(self, url_key: str) -> Optional[HttpResponse]:
        """Probe the owners primary-first (replicas are fallbacks)."""
        for shard in self.owners_of(url_key):
            response = shard.get(url_key)
            if response is not None:
                return response
        return None

    def put(
        self, url_key: str, response: HttpResponse, ttl: Optional[float] = None
    ) -> bool:
        """Store on every owner; True when the primary stored it."""
        owners = self.owners_of(url_key)
        stored = [shard.put(url_key, response, ttl=ttl) for shard in owners]
        return stored[0]

    def eject(self, url_key: str) -> bool:
        """Shard-targeted eject: only the owners are touched."""
        removed = False
        for shard in self.owners_of(url_key):
            removed = shard.eject(url_key) or removed
        return removed

    def eject_many(self, url_keys: Iterable[str]) -> int:
        return sum(1 for key in url_keys if self.eject(key))

    def handle_message(self, request: HttpRequest, url_key: str) -> bool:
        control = request.cache_control
        if control is not None and control.has("eject"):
            return self.eject(url_key)
        return False

    def clear(self) -> None:
        for shard in self._shards.values():
            shard.clear()

    @property
    def stats(self) -> CacheStats:
        """Aggregated ``WebCache``-shaped stats (portal dashboards)."""
        totals = CacheStats()
        for shard in self._shards.values():
            totals.hits += shard.stats.hot_hits + shard.stats.cold_hits
            totals.misses += shard.stats.misses
            totals.stores += shard.hot.stats.stores
            totals.ejects += shard.stats.ejects
            totals.evictions += shard.stats.cold_evictions
            totals.expirations += (
                shard.hot.stats.expirations + shard.stats.expirations
            )
            totals.bytes_used += shard.bytes_used
            totals.bytes_evicted += shard.hot.stats.bytes_evicted
        return totals

    #: The portal's status() reads ``cache.capacity``; report the only
    #: entry-shaped capacity a byte-budget cluster has (overflow slots).
    @property
    def capacity(self) -> int:
        return self.cold_entries * max(1, len(self._shards))

    # -- kill / restart ---------------------------------------------------------

    def checkpoint_shard(self, name: str) -> str:
        return self.checkpointer.save(self.shard(name))

    def checkpoint_all(self) -> Dict[str, str]:
        return self.checkpointer.save_all(self.shards)

    def kill_shard(self, name: str) -> int:
        """Crash one shard: its DRAM and overflow die, membership stays.

        Returns how many pages were lost.  The shard keeps serving (as
        an empty cache) until :meth:`restart_shard` restores it — the
        paper's staleness guarantees hold either way, because ejects
        keep routing to it and a miss merely regenerates.
        """
        shard = self.shard(name)
        lost = len(shard)
        shard.clear()
        return lost

    def restart_shard(
        self, name: str, warm: bool = True
    ) -> Optional[ShardRestoreReport]:
        """Bring a killed shard back, warm (from its snapshot) or cold.

        Returns the restore report for warm restarts (``None`` when no
        snapshot exists or ``warm=False``).
        """
        shard = self.shard(name)
        if not warm:
            shard.clear()
            return None
        return self.checkpointer.load_if_present(shard)

    # -- whole-cluster checkpointing -------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        return {
            "ring": self.ring.snapshot_state(),
            "journal": self.journal.snapshot_state(),
            "replicas": self.replicas,
            "shards": {
                name: shard.snapshot_state()
                for name, shard in self._shards.items()
            },
        }

    def restore_state(self, data: Dict[str, object]) -> Dict[str, int]:
        """Reload a whole-cluster snapshot into this cluster.

        Membership is rebuilt from the snapshot's ring; the journal is
        restored *before* shard contents so the staleness guard applies.
        """
        self.journal.restore_state(dict(data.get("journal", {})))
        self.replicas = int(data.get("replicas", self.replicas))
        ring_state = dict(data.get("ring", {}))
        wanted = [str(name) for name in ring_state.get("shards", [])]
        for name in list(self._shards):
            if name not in wanted:
                self.remove_shard(name)
        for name in wanted:
            if name not in self._shards:
                self.add_shard(name)
        self.ring.restore_state(ring_state)
        pages = dropped = 0
        for name, shard_state in dict(data.get("shards", {})).items():
            if name not in self._shards:
                continue
            outcome = self._shards[name].restore_state(dict(shard_state))
            pages += outcome["pages_restored"]
            dropped += outcome["pages_dropped"]
        return {
            "shards_restored": len(wanted),
            "pages_restored": pages,
            "pages_dropped": dropped,
        }

    # -- observability ----------------------------------------------------------

    @property
    def hit_ratio(self) -> float:
        lookups = hits = 0
        for shard in self._shards.values():
            lookups += shard.stats.lookups
            hits += shard.stats.hot_hits + shard.stats.cold_hits
        return hits / lookups if lookups else 0.0

    def status(self) -> Dict[str, object]:
        """The ``repro cluster status`` payload."""
        return {
            "shards": [shard.status() for shard in self.shards],
            "ring": self.ring.stats(),
            "replicas": self.replicas,
            "pages": len(self),
            "bytes_used": self.bytes_used,
            "hot_bytes_budget": self.hot_bytes * len(self._shards),
            "hit_ratio": round(self.hit_ratio, 4),
            "journal_keys": len(self.journal),
            "checkpoint_dir": str(self.checkpointer.directory),
        }
