"""One cache-cluster shard: a DRAM-budget hot tier over an overflow tier.

The CacheLib lesson (SNIPPETS.md §3) is that a serving-tier cache is
sized in *bytes* and must survive *restarts*.  A shard therefore:

* keeps its hot set in a byte-budget :class:`~repro.web.cache.WebCache`
  (the DRAM tier) — stores evict by bytes, and every eviction *demotes*
  the page to an overflow tier (the "flash" tier in CacheLib terms,
  an entry-capacity LRU here) instead of dropping it;
* *promotes* an overflow page back to DRAM when it is hit — the
  classical two-tier inclusion policy that keeps the Zipfian head hot
  while the long tail stays cheap;
* snapshots and restores both tiers through the PR-3 checkpoint
  subsystem, so a killed shard rejoins with its working set intact
  (*warm restart*) instead of serving misses for an entire re-warm pass.

Warm restarts reintroduce a staleness hazard: a page snapshotted at T
and ejected at T+1 must not come back at T+2.  The cluster-wide
:class:`EjectJournal` closes it — every store is stamped with the
journal's current sequence and every eject bumps the per-key sequence;
a restore discards any snapshot entry whose stamp predates the key's
last eject.  The journal lives on the cluster facade (the control
plane), which survives individual shard kills, and rides inside the
cluster checkpoint envelope for whole-cluster restarts.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.web.cache import CacheEntry, WebCache, response_size_bytes
from repro.web.http import CacheControl, HttpRequest, HttpResponse

#: Hot-tier DRAM budget when the caller does not size it (256 KiB keeps
#: demo workloads honest: small enough that demotion actually happens).
DEFAULT_HOT_BYTES = 256 * 1024

#: Overflow-tier entry capacity per shard.
DEFAULT_COLD_ENTRIES = 4096


class EjectJournal:
    """Cluster-wide monotone eject sequencing for warm-restart safety.

    ``stamp()`` is read at store time; ``note(key)`` advances the global
    sequence and records it against the key at eject time.  An entry is
    resurrection-safe iff its stamp is >= the key's last-eject sequence:
    any eject after the store (and hence after any snapshot containing
    the store) invalidates the snapshot copy.
    """

    def __init__(self) -> None:
        self._seq = 0
        self._last_eject: Dict[str, int] = {}

    @property
    def seq(self) -> int:
        """The current global eject sequence."""
        return self._seq

    def stamp(self) -> int:
        """Current sequence, recorded on entries at store time."""
        return self._seq

    def note(self, url_key: str) -> int:
        """Record an eject of ``url_key``; returns the new sequence."""
        self._seq += 1
        self._last_eject[url_key] = self._seq
        return self._seq

    def ejected_since(self, url_key: str, stamp: int) -> bool:
        """True when ``url_key`` was ejected after ``stamp`` was taken."""
        return self._last_eject.get(url_key, 0) > stamp

    def __len__(self) -> int:
        return len(self._last_eject)

    # -- checkpointing --------------------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        return {"seq": self._seq, "last_eject": dict(self._last_eject)}

    def restore_state(self, data: Dict[str, object]) -> int:
        self._seq = int(data.get("seq", 0))
        self._last_eject = {
            str(key): int(value)
            for key, value in dict(data.get("last_eject", {})).items()
        }
        return len(self._last_eject)


@dataclass
class ShardStats:
    """Per-shard serving and tiering counters."""

    hot_hits: int = 0
    cold_hits: int = 0
    misses: int = 0
    promotions: int = 0
    demotions: int = 0
    cold_evictions: int = 0
    ejects: int = 0
    expirations: int = 0
    #: Snapshot entries discarded at restore because the eject journal
    #: showed them ejected after the snapshot (the staleness guard).
    restore_drops: int = 0
    restores: int = 0

    @property
    def lookups(self) -> int:
        return self.hot_hits + self.cold_hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if not self.lookups:
            return 0.0
        return (self.hot_hits + self.cold_hits) / self.lookups


class CacheShard:
    """A two-tier, restart-tolerant member of the cache cluster.

    Implements the same protocol as :class:`~repro.web.cache.WebCache`
    (``get``/``put``/``eject``/``handle_message``/``keys``/``clear``),
    so a shard is a first-class eject-bus target and recovery can
    reconcile it like any other cache.

    Concurrency contract: like :class:`WebCache`, every public method is
    thread-safe.  Cross-tier moves (demotion, promotion, eject-from-both)
    and the overflow tier's byte gauge are serialized on one shard-level
    re-entrant lock; the hot tier's own lock nests inside it.  Callers
    must mutate through the shard's methods — reaching into ``shard.hot``
    directly would demote under the hot lock only and race the overflow
    book-keeping.

    Args:
        name: shard identity (stable across restarts; the ring hashes it).
        hot_bytes: DRAM budget of the hot tier.
        cold_entries: overflow-tier capacity; ``0`` disables the tier.
        hot_entries: optional entry cap for the hot tier (the byte
            budget is normally the binding constraint).
        default_ttl / clock: as for :class:`WebCache`.
        journal: the cluster's shared :class:`EjectJournal`; a private
            one is created for standalone shards.
    """

    def __init__(
        self,
        name: str,
        hot_bytes: int = DEFAULT_HOT_BYTES,
        cold_entries: int = DEFAULT_COLD_ENTRIES,
        hot_entries: Optional[int] = None,
        default_ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        journal: Optional[EjectJournal] = None,
    ) -> None:
        self.name = name
        self._clock = clock or (lambda: 0.0)
        self.journal = journal if journal is not None else EjectJournal()
        self.hot = WebCache(
            capacity=hot_entries if hot_entries is not None else 2**31,
            capacity_bytes=hot_bytes,
            default_ttl=default_ttl,
            clock=self._clock,
            on_evict=self._demote,
        )
        self.cold_entries = cold_entries
        self._cold: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._cold_bytes = 0
        self._lock = threading.RLock()
        self.stats = ShardStats()

    # -- sizing ----------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self.hot) + len(self._cold)

    def __contains__(self, url_key: str) -> bool:
        with self._lock:
            return url_key in self.hot or url_key in self._cold

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self.hot.bytes_used + self._cold_bytes

    def keys(self) -> List[str]:
        with self._lock:
            return self.hot.keys() + list(self._cold)

    # -- tiering ---------------------------------------------------------------

    def _demote(self, entry: CacheEntry) -> None:
        """Hot-tier eviction hook: spill the victim to the overflow tier."""
        if self.cold_entries <= 0:
            return
        previous = self._cold.pop(entry.url_key, None)
        if previous is not None:
            self._cold_bytes -= previous.size_bytes
        self._cold[entry.url_key] = entry
        self._cold_bytes += entry.size_bytes
        self.stats.demotions += 1
        while len(self._cold) > self.cold_entries:
            _key, victim = self._cold.popitem(last=False)
            self._cold_bytes -= victim.size_bytes
            self.stats.cold_evictions += 1

    def _cold_take(self, url_key: str) -> Optional[CacheEntry]:
        """Remove and return a live overflow entry, expiring as needed."""
        entry = self._cold.pop(url_key, None)
        if entry is None:
            return None
        self._cold_bytes -= entry.size_bytes
        if entry.expires_at is not None and self._clock() >= entry.expires_at:
            self.stats.expirations += 1
            return None
        return entry

    # -- the cache protocol ----------------------------------------------------

    def get(self, url_key: str) -> Optional[HttpResponse]:
        """Probe hot, then overflow (promoting on hit); None on miss."""
        with self._lock:
            response = self.hot.get(url_key)
            if response is not None:
                self.stats.hot_hits += 1
                return response
            entry = self._cold_take(url_key)
            if entry is None:
                self.stats.misses += 1
                return None
            entry.hits += 1
            self.stats.cold_hits += 1
            self.stats.promotions += 1
            # Promotion re-admits the existing entry: TTL, stamp, and byte
            # accounting are already settled, so no header re-validation.
            self.hot.admit(entry)
            return entry.response

    def put(
        self, url_key: str, response: HttpResponse, ttl: Optional[float] = None
    ) -> bool:
        """Store into the hot tier (overflow fills only by demotion)."""
        with self._lock:
            stored = self.hot.put(url_key, response, ttl=ttl)
            if stored:
                entry = self.hot.peek(url_key)
                if entry is not None:
                    entry.seq = self.journal.stamp()
                # A stale overflow copy must not outlive the fresh store.
                previous = self._cold.pop(url_key, None)
                if previous is not None:
                    self._cold_bytes -= previous.size_bytes
            return stored

    def eject(self, url_key: str) -> bool:
        """Remove one page from both tiers, journaling the eject."""
        with self._lock:
            self.journal.note(url_key)
            removed = self.hot.eject(url_key)
            entry = self._cold.pop(url_key, None)
            if entry is not None:
                self._cold_bytes -= entry.size_bytes
                removed = True
            if removed:
                self.stats.ejects += 1
            return removed

    def eject_many(self, url_keys: Iterable[str]) -> int:
        return sum(1 for key in url_keys if self.eject(key))

    def handle_message(self, request: HttpRequest, url_key: str) -> bool:
        control = request.cache_control
        if control is not None and control.has("eject"):
            return self.eject(url_key)
        return False

    def clear(self) -> None:
        """Drop both tiers (the crash model: shard DRAM dies)."""
        with self._lock:
            self.hot.clear()
            self._cold.clear()
            self._cold_bytes = 0

    # -- checkpointing ---------------------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        """JSON-compatible dump of both tiers, LRU→MRU per tier."""

        def pack(entry: CacheEntry, tier: str) -> Dict[str, object]:
            return {
                "tier": tier,
                "url_key": entry.url_key,
                "status": entry.response.status,
                "body": entry.response.body,
                "headers": dict(entry.response.headers),
                "cache_control": entry.response.cache_control.render(),
                "stored_at": entry.stored_at,
                "expires_at": entry.expires_at,
                "hits": entry.hits,
                "seq": entry.seq,
            }

        with self._lock:
            entries = [pack(entry, "cold") for entry in self._cold.values()]
            entries += [pack(entry, "hot") for entry in self.hot.entries()]
        return {"name": self.name, "entries": entries}

    def restore_state(self, data: Dict[str, object]) -> Dict[str, int]:
        """Reload a snapshot; returns restore accounting.

        Entries the eject journal shows as ejected after the snapshot
        are discarded — resurrecting them would serve a page the
        invalidator already killed.  Expired entries are dropped too.
        Hot entries are re-admitted through the byte budget, so a
        restore into a smaller DRAM budget demotes the overflow.
        """
        with self._lock:
            return self._restore_locked(data)

    def _restore_locked(self, data: Dict[str, object]) -> Dict[str, int]:
        self.clear()
        restored = dropped = 0
        now = self._clock()
        for spec in data.get("entries", []):
            stamp = int(spec.get("seq", 0))
            url_key = str(spec["url_key"])
            if self.journal.ejected_since(url_key, stamp):
                dropped += 1
                continue
            expires_at = spec.get("expires_at")
            if expires_at is not None and now >= float(expires_at):
                dropped += 1
                continue
            response = HttpResponse(
                status=int(spec.get("status", 200)),
                body=str(spec.get("body", "")),
                headers=dict(spec.get("headers", {})),
                cache_control=CacheControl.parse(str(spec["cache_control"])),
            )
            entry = CacheEntry(
                url_key=url_key,
                response=response,
                stored_at=float(spec.get("stored_at", 0.0)),
                expires_at=None if expires_at is None else float(expires_at),
                hits=int(spec.get("hits", 0)),
                size_bytes=response_size_bytes(response),
                seq=stamp,
            )
            if spec.get("tier") == "hot":
                self.hot.admit(entry)
            else:
                self._demote(entry)
                self.stats.demotions -= 1  # restore placement, not a demotion
            restored += 1
        self.stats.restores += 1
        self.stats.restore_drops += dropped
        return {"pages_restored": restored, "pages_dropped": dropped}

    # -- observability ---------------------------------------------------------

    def status(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "pages": len(self),
            "hot_pages": len(self.hot),
            "cold_pages": len(self._cold),
            "bytes_used": self.bytes_used,
            "hot_bytes_used": self.hot.bytes_used,
            "hot_bytes_budget": self.hot.capacity_bytes,
            "hit_ratio": round(self.stats.hit_ratio, 4),
            "hot_hits": self.stats.hot_hits,
            "cold_hits": self.stats.cold_hits,
            "misses": self.stats.misses,
            "promotions": self.stats.promotions,
            "demotions": self.stats.demotions,
            "cold_evictions": self.stats.cold_evictions,
            "ejects": self.stats.ejects,
            "restores": self.stats.restores,
            "restore_drops": self.stats.restore_drops,
        }
