"""Consistent-hash placement ring for the cache cluster.

The serving tier spreads millions of URL keys over many cache shards.
Placement must be:

* **deterministic across processes** — the invalidator, the router, and
  every front end must agree on who owns a key without talking to each
  other, so the hash is ``blake2b`` over the key bytes, never Python's
  randomized ``hash()``;
* **stable under membership change** — adding or removing one shard may
  only remap ~K/N of K keys (the classic consistent-hashing bound),
  otherwise every scale-out event is a cluster-wide cold start;
* **balanced** — each shard projects ``vnodes`` virtual nodes onto the
  ring so token arcs average out instead of one unlucky shard owning
  half the key space.

The ring is pure placement: it maps ``key → shard name(s)`` and knows
nothing about the shards themselves.  The cluster facade routes gets,
puts, and ejects through it; the eject router hands the same answer to
the delivery bus.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ClusterError

#: Default virtual nodes per shard.  128 tokens keeps the worst/best
#: shard load ratio near 1.2 at 64 shards while the ring stays small
#: (8k tokens) and O(log) to probe.
DEFAULT_VNODES = 128


def stable_hash(data: str) -> int:
    """64-bit process-independent hash of a string.

    ``blake2b`` is keyed by nothing and seeded by nothing: the same key
    maps to the same point on every host, every process, every run —
    the property the cross-process placement test pins down.
    """
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Deterministic key→shard placement with virtual nodes.

    Args:
        vnodes: virtual nodes (tokens) per shard.
        shards: optional initial membership.
    """

    def __init__(
        self, vnodes: int = DEFAULT_VNODES, shards: Iterable[str] = ()
    ) -> None:
        if vnodes < 1:
            raise ClusterError("a ring needs at least one vnode per shard")
        self.vnodes = vnodes
        self._members: Dict[str, List[int]] = {}
        self._tokens: List[Tuple[int, str]] = []  # sorted (token, shard)
        self._token_keys: List[int] = []  # parallel list for bisect
        for name in shards:
            self.add_shard(name)

    # -- membership -----------------------------------------------------------

    def add_shard(self, name: str) -> None:
        if name in self._members:
            raise ClusterError(f"shard {name!r} already on the ring")
        tokens = [stable_hash(f"{name}\x00{i}") for i in range(self.vnodes)]
        self._members[name] = tokens
        for token in tokens:
            index = bisect.bisect_left(self._tokens, (token, name))
            self._tokens.insert(index, (token, name))
            self._token_keys.insert(index, token)

    def remove_shard(self, name: str) -> None:
        if name not in self._members:
            raise ClusterError(f"shard {name!r} not on the ring")
        del self._members[name]
        keep = [(token, shard) for token, shard in self._tokens if shard != name]
        self._tokens = keep
        self._token_keys = [token for token, _shard in keep]

    def shards(self) -> List[str]:
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    # -- placement -----------------------------------------------------------

    def owner(self, key: str) -> str:
        """The shard owning ``key`` (its primary)."""
        return self.owners(key, 1)[0]

    def owners(self, key: str, count: int = 1) -> List[str]:
        """The first ``count`` *distinct* shards clockwise from the key.

        Walking successor tokens (wrapping at the top) yields the
        primary first, then the replica set — the standard replica
        placement that keeps each replica's membership stable under
        single-shard churn.
        """
        if not self._tokens:
            raise ClusterError("cannot place a key on an empty ring")
        count = min(count, len(self._members))
        point = stable_hash(key)
        start = bisect.bisect_right(self._token_keys, point)
        found: List[str] = []
        total = len(self._tokens)
        for step in range(total):
            _token, shard = self._tokens[(start + step) % total]
            if shard not in found:
                found.append(shard)
                if len(found) == count:
                    break
        return found

    def placement(self, keys: Sequence[str]) -> Dict[str, str]:
        """Bulk ``key → primary owner`` map (test and audit helper)."""
        return {key: self.owner(key) for key in keys}

    # -- observability --------------------------------------------------------

    def load_share(self) -> Dict[str, float]:
        """Fraction of the hash space each shard's token arcs cover."""
        if not self._tokens:
            return {}
        space = 2**64
        share: Dict[str, float] = {name: 0.0 for name in self._members}
        if len(self._tokens) == 1:
            share[self._tokens[0][1]] = 1.0
            return share
        for index, (token, shard) in enumerate(self._tokens):
            # the arc *ending* at this token belongs to this token's shard
            previous = self._tokens[index - 1][0]  # index 0 wraps to last
            share[shard] += ((token - previous) % space) / space
        return share

    def stats(self) -> Dict[str, object]:
        share = self.load_share()
        return {
            "shards": len(self._members),
            "vnodes": self.vnodes,
            "tokens": len(self._tokens),
            "min_share": round(min(share.values()), 4) if share else 0.0,
            "max_share": round(max(share.values()), 4) if share else 0.0,
            "ideal_share": round(1 / len(self._members), 4)
            if self._members
            else 0.0,
        }

    # -- checkpointing --------------------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        return {"vnodes": self.vnodes, "shards": self.shards()}

    def restore_state(self, data: Dict[str, object]) -> int:
        self.vnodes = int(data.get("vnodes", DEFAULT_VNODES))
        self._members.clear()
        self._tokens = []
        self._token_keys = []
        for name in data.get("shards", []):
            self.add_shard(str(name))
        return len(self._members)
