"""Zipfian serving workloads for the cache cluster: one driver, reused by
``repro cluster bench`` and ``benchmarks/bench_cache_cluster.py``.

The workload models the paper's Configuration III front end at cluster
scale: a large URL population with a Zipfian hot set (web traffic is
head-heavy), gets that regenerate on miss, eject bursts delivered
through the :class:`~repro.stream.bus.EjectBus` (routed to owning
shards, or broadcast as the control arm), and optional shard
kill/restart mid-workload to measure how much of the hot set a warm
restore preserves.

Everything is seeded: key draws, page sizes, eject picks, and the kill
victim all come from ``random.Random(seed)`` streams, so two arms with
the same seed see byte-identical traffic — which is what makes the
routed-vs-broadcast parity check and the warm-vs-cold comparison
meaningful.
"""

from __future__ import annotations

import bisect
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.stream.bus import EjectBus
from repro.stream.metrics import PipelineMetrics
from repro.web.http import CacheControl, HttpResponse
from repro.cluster.cluster import CacheCluster
from repro.cluster.router import ShardEjectRouter, attach_cluster_to_bus


@dataclass
class ClusterWorkloadConfig:
    """Knobs for one cluster workload run."""

    shards: int = 4
    vnodes: int = 128
    hot_bytes: int = 256 * 1024
    cold_entries: int = 2048
    replicas: int = 1
    #: Distinct URL keys in the population.
    keys: int = 5000
    #: Zipf skew (1.0–1.2 is typical web traffic).
    zipf_s: float = 1.1
    #: Get requests in the warmup pass (fills the caches).
    warmup: int = 5000
    #: Get requests in each measured pass.
    requests: int = 10000
    #: Eject orders published through the bus after the first pass.
    ejects: int = 2000
    #: Bus batch size for publishes (coalescing window).
    eject_batch: int = 64
    seed: int = 7
    #: Deliver ejects shard-targeted (False = broadcast control arm).
    routed: bool = True
    #: Shards to kill after the first measured pass (0 disables).
    kill_shards: int = 0
    #: "warm" restores each killed shard from its snapshot; "cold"
    #: restarts it empty (the control arm for the recovery criterion).
    restart: str = "warm"
    checkpoint_dir: Optional[str] = None


class ZipfianKeys:
    """Seeded Zipfian sampler over ``/page?id=i`` URL keys."""

    def __init__(self, count: int, s: float, rng: random.Random) -> None:
        self.count = count
        self.rng = rng
        weights = [1.0 / (rank**s) for rank in range(1, count + 1)]
        total = sum(weights)
        cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight
            cumulative.append(running / total)
        self._cumulative = cumulative

    def draw(self) -> int:
        return bisect.bisect_left(self._cumulative, self.rng.random())

    def url(self, index: int) -> str:
        return f"/page?id={index}"


def make_page(index: int, version: int = 0) -> HttpResponse:
    """Deterministic page body for key ``index`` (sizes vary per key so
    the byte budget, not the entry count, is the binding constraint)."""
    filler = "x" * (200 + (index % 7) * 100)
    return HttpResponse(
        body=f"<html>page {index} v{version} {filler}</html>",
        cache_control=CacheControl.cacheportal_private(),
    )


def cluster_contents(cluster: CacheCluster) -> Dict[str, str]:
    """Every cached page body by URL key (the parity fingerprint).

    Reads through :meth:`CacheShard.snapshot_state` rather than ``get``
    so the probe itself does not promote pages or skew stats.
    """
    contents: Dict[str, str] = {}
    for shard in cluster.shards:
        for spec in shard.snapshot_state()["entries"]:
            contents[spec["url_key"]] = spec["body"]
    return contents


@dataclass
class ClusterWorkloadResult:
    """Everything one run measured (JSON-compatible via ``to_dict``)."""

    config: ClusterWorkloadConfig
    hit_ratio_pass1: float = 0.0
    hit_ratio_pass2: float = 0.0
    pages_cached: int = 0
    bytes_used: int = 0
    eject_latency_mean_ms: float = 0.0
    eject_latency_max_ms: float = 0.0
    deliveries_ok: int = 0
    ejects_routed: int = 0
    ejects_broadcast: int = 0
    routed_deliveries_saved: int = 0
    pages_removed: int = 0
    killed: List[str] = field(default_factory=list)
    pages_lost: int = 0
    pages_restored: int = 0
    pages_dropped_on_restore: int = 0
    cluster_status: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": {
                "shards": self.config.shards,
                "vnodes": self.config.vnodes,
                "hot_bytes": self.config.hot_bytes,
                "cold_entries": self.config.cold_entries,
                "replicas": self.config.replicas,
                "keys": self.config.keys,
                "zipf_s": self.config.zipf_s,
                "warmup": self.config.warmup,
                "requests": self.config.requests,
                "ejects": self.config.ejects,
                "seed": self.config.seed,
                "routed": self.config.routed,
                "kill_shards": self.config.kill_shards,
                "restart": self.config.restart,
            },
            "hit_ratio_pass1": round(self.hit_ratio_pass1, 4),
            "hit_ratio_pass2": round(self.hit_ratio_pass2, 4),
            "pages_cached": self.pages_cached,
            "bytes_used": self.bytes_used,
            "eject_latency_mean_ms": self.eject_latency_mean_ms,
            "eject_latency_max_ms": self.eject_latency_max_ms,
            "deliveries_ok": self.deliveries_ok,
            "ejects_routed": self.ejects_routed,
            "ejects_broadcast": self.ejects_broadcast,
            "routed_deliveries_saved": self.routed_deliveries_saved,
            "pages_removed": self.pages_removed,
            "killed": list(self.killed),
            "pages_lost": self.pages_lost,
            "pages_restored": self.pages_restored,
            "pages_dropped_on_restore": self.pages_dropped_on_restore,
            "cluster_status": self.cluster_status,
        }


def build_cluster(config: ClusterWorkloadConfig) -> CacheCluster:
    return CacheCluster(
        num_shards=config.shards,
        vnodes=config.vnodes,
        hot_bytes=config.hot_bytes,
        cold_entries=config.cold_entries,
        replicas=config.replicas,
        checkpoint_dir=config.checkpoint_dir,
    )


def _serve_pass(
    cluster: CacheCluster, sampler: ZipfianKeys, requests: int
) -> float:
    """One pass of Zipfian gets (miss → regenerate + put); hit ratio."""
    hits = 0
    for _ in range(requests):
        index = sampler.draw()
        url = sampler.url(index)
        if cluster.get(url) is not None:
            hits += 1
        else:
            cluster.put(url, make_page(index))
    return hits / requests if requests else 0.0


def _eject_burst(
    cluster: CacheCluster,
    bus: EjectBus,
    sampler: ZipfianKeys,
    config: ClusterWorkloadConfig,
) -> None:
    """Publish eject orders in batches and pump deliveries to completion."""
    pending: List[str] = []
    for _ in range(config.ejects):
        pending.append(sampler.url(sampler.draw()))
        if len(pending) >= config.eject_batch:
            bus.publish(pending, origin_ts=time.monotonic())
            bus.pump()
            pending = []
    if pending:
        bus.publish(pending, origin_ts=time.monotonic())
    while bus.outstanding:
        next_due = bus.pump()
        if bus.outstanding and next_due is not None:
            time.sleep(max(0.0, min(next_due - time.monotonic(), 0.01)))


def run_cluster_workload(
    config: ClusterWorkloadConfig,
    cluster: Optional[CacheCluster] = None,
) -> ClusterWorkloadResult:
    """Run warmup → pass 1 → eject burst → (kill/restart) → pass 2."""
    result = ClusterWorkloadResult(config=config)
    if cluster is None:
        cluster = build_cluster(config)

    metrics = PipelineMetrics()
    bus = EjectBus(metrics=metrics)
    if config.routed:
        attach_cluster_to_bus(bus, cluster)
    else:
        # Broadcast control arm: every shard still gets its own target
        # (per-shard breakers), but no router narrows the fan-out.
        ShardEjectRouter(cluster).attach(bus)
        bus.set_router(None)

    rng = random.Random(config.seed)
    sampler = ZipfianKeys(config.keys, config.zipf_s, rng)
    kill_rng = random.Random(config.seed ^ 0x5EED)

    _serve_pass(cluster, sampler, config.warmup)
    result.hit_ratio_pass1 = _serve_pass(cluster, sampler, config.requests)

    _eject_burst(cluster, bus, sampler, config)

    if config.kill_shards > 0:
        cluster.checkpoint_all()
        victims = kill_rng.sample(
            [shard.name for shard in cluster.shards],
            min(config.kill_shards, len(cluster.shards)),
        )
        for name in victims:
            result.pages_lost += cluster.kill_shard(name)
        result.killed = victims
        for name in victims:
            report = cluster.restart_shard(name, warm=config.restart == "warm")
            if report is not None:
                result.pages_restored += report.pages_restored
                result.pages_dropped_on_restore += report.pages_dropped

    result.hit_ratio_pass2 = _serve_pass(cluster, sampler, config.requests)

    snapshot = metrics.snapshot(bus_outstanding=bus.outstanding)["bus"]
    result.eject_latency_mean_ms = snapshot["eject_latency_mean_ms"]
    result.eject_latency_max_ms = snapshot["eject_latency_max_ms"]
    result.deliveries_ok = snapshot["deliveries_ok"]
    result.ejects_routed = snapshot["ejects_routed"]
    result.ejects_broadcast = snapshot["ejects_broadcast"]
    result.routed_deliveries_saved = snapshot["routed_deliveries_saved"]
    result.pages_removed = snapshot["pages_removed"]
    result.pages_cached = len(cluster)
    result.bytes_used = cluster.bytes_used
    result.cluster_status = cluster.status()
    return result
