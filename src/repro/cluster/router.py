"""Shard-targeted eject fan-out: ring placement wired into the bus.

The invalidation pipeline ends at the :class:`~repro.stream.bus.EjectBus`,
which historically *broadcast* every eject to every registered cache —
fine for a handful of hierarchy tiers, quadratic waste for a 64-shard
cluster where each URL lives on exactly one shard (or its small replica
set).  The QI/URL map already routes invalidations *per URL* (an update
maps to query instances, instances to the URLs built from them); this
router extends that per-URL resolution one hop further, from "which
URLs" to "which shard owns each URL", using the same consistent-hash
ring the serving path uses for gets and puts.

Each shard registers as its own bus target, so retries, backoff, and
circuit-breaking stay *per shard*: one flapping shard delays only its
own ejects.  Routing is evaluated at fan-out time against the live
ring, so membership changes between publish and delivery route to the
current owner.  Non-cluster targets (a reverse proxy, a browser-tier
cache) can be pinned as ``extra_targets`` and receive every eject,
preserving the hierarchy's vertical invalidation.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.stream.bus import EjectBus

#: Bus-target namespace for cluster shards.
DEFAULT_PREFIX = "shard:"


class ShardEjectRouter:
    """Routes each eject to the shard(s) owning its URL key.

    Args:
        cluster: a :class:`~repro.cluster.cluster.CacheCluster` (or any
            object with ``ring``, ``replicas`` and ``shards``).
        prefix: namespace for the shard target names on the bus.
        extra_targets: bus target names that must receive *every* eject
            regardless of placement (non-sharded tiers).
    """

    def __init__(
        self,
        cluster,
        prefix: str = DEFAULT_PREFIX,
        extra_targets: Iterable[str] = (),
    ) -> None:
        self.cluster = cluster
        self.prefix = prefix
        self.extra_targets = list(extra_targets)
        self.routes_computed = 0

    def target_name(self, shard_name: str) -> str:
        return f"{self.prefix}{shard_name}"

    def __call__(self, url_key: str) -> List[str]:
        """The bus router hook: owning shard target(s) for one URL."""
        self.routes_computed += 1
        owners = self.cluster.ring.owners(url_key, self.cluster.replicas)
        return [self.target_name(name) for name in owners] + self.extra_targets

    def attach(self, bus: EjectBus) -> List[str]:
        """Register every shard as a bus target and install the router.

        Returns the registered target names.  Call again after adding
        shards to register the newcomers (already-registered names are
        skipped).
        """
        registered = {target.name for target in bus.targets()}
        names: List[str] = []
        for shard in self.cluster.shards:
            name = self.target_name(shard.name)
            if name not in registered:
                bus.register(name, shard)
            names.append(name)
        bus.set_router(self)
        return names


def attach_cluster_to_bus(
    bus: EjectBus,
    cluster,
    prefix: str = DEFAULT_PREFIX,
    extra_targets: Sequence[str] = (),
) -> ShardEjectRouter:
    """One-call wiring: register shards, install routing, return router."""
    router = ShardEjectRouter(cluster, prefix=prefix, extra_targets=extra_targets)
    router.attach(bus)
    return router
