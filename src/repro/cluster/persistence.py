"""Per-shard warm-restart persistence for the cache cluster.

CacheLib's headline operability lesson (SNIPPETS.md §3) is that cache
restarts are *routine* — binary pushes, host maintenance, crashes — and
a cache that restarts cold serves misses for hours while it re-warms.
This module gives every shard its own durable snapshot so a killed
shard rejoins with its working set intact:

* each shard writes ``shard-<name>.ckpt`` through the PR-3 checkpoint
  envelope (:mod:`repro.core.recovery`): atomic rename, SHA-256
  checksum, format version — a crash mid-checkpoint leaves the previous
  snapshot usable, and a torn file is rejected, never half-loaded;
* restores run the shard's eject-journal guard, so pages invalidated
  after the snapshot stay dead (no stale resurrection);
* snapshots are per shard, not per cluster: shards checkpoint and
  restart independently, which is the whole point of sharding the
  serving tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.recovery import (
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)
from repro.cluster.shard import CacheShard

SHARD_SNAPSHOT_KIND = "cache-shard"


@dataclass
class ShardRestoreReport:
    """What one shard restore did."""

    shard: str
    path: str
    pages_restored: int = 0
    #: Snapshot pages discarded by the eject-journal staleness guard
    #: (ejected after the snapshot) or because their TTL had lapsed.
    pages_dropped: int = 0
    bytes_restored: int = 0


class ShardCheckpointer:
    """Saves and restores shard snapshots under one directory."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, shard_name: str) -> Path:
        return self.directory / f"shard-{shard_name}.ckpt"

    def has_snapshot(self, shard_name: str) -> bool:
        return self.path_for(shard_name).exists()

    def save(self, shard: CacheShard) -> str:
        """Checkpoint one shard atomically; returns the checksum."""
        payload = {
            "kind": SHARD_SNAPSHOT_KIND,
            "shard": shard.name,
            "state": shard.snapshot_state(),
        }
        return write_checkpoint(self.path_for(shard.name), payload)

    def save_all(self, shards: List[CacheShard]) -> Dict[str, str]:
        """Checkpoint every shard; returns name → checksum."""
        return {shard.name: self.save(shard) for shard in shards}

    def load(self, shard: CacheShard) -> ShardRestoreReport:
        """Warm-restore one shard from its snapshot.

        Raises:
            CheckpointError: missing/torn snapshot, or a snapshot that
                belongs to a different shard (a miswired restore must
                not silently fill this shard with another's pages).
        """
        path = self.path_for(shard.name)
        payload = read_checkpoint(path)
        if payload.get("kind") != SHARD_SNAPSHOT_KIND:
            raise CheckpointError(
                f"{path} is not a cache-shard snapshot "
                f"(kind={payload.get('kind')!r})"
            )
        if payload.get("shard") != shard.name:
            raise CheckpointError(
                f"{path} belongs to shard {payload.get('shard')!r}, "
                f"not {shard.name!r}"
            )
        outcome = shard.restore_state(payload["state"])
        return ShardRestoreReport(
            shard=shard.name,
            path=str(path),
            pages_restored=outcome["pages_restored"],
            pages_dropped=outcome["pages_dropped"],
            bytes_restored=shard.bytes_used,
        )

    def load_if_present(self, shard: CacheShard) -> Optional[ShardRestoreReport]:
        """Warm-restore when a snapshot exists; ``None`` for cold starts."""
        if not self.has_snapshot(shard.name):
            return None
        return self.load(shard)
