"""Sharded, restart-tolerant cache cluster (CachePortal at cluster scale).

The single-node :class:`~repro.web.cache.WebCache` scaled out: a
consistent-hash ring places URL keys on two-tier (DRAM + overflow)
shards, the PR-3 checkpoint subsystem gives each shard warm restarts,
and a ring-driven router narrows the EjectBus fan-out so each
invalidation reaches only the shard(s) that own the page.
"""

from repro.cluster.cluster import CacheCluster, ShardFactory, shard_names
from repro.cluster.persistence import (
    SHARD_SNAPSHOT_KIND,
    ShardCheckpointer,
    ShardRestoreReport,
)
from repro.cluster.ring import (
    DEFAULT_VNODES,
    ConsistentHashRing,
    stable_hash,
)
from repro.cluster.router import (
    DEFAULT_PREFIX,
    ShardEjectRouter,
    attach_cluster_to_bus,
)
from repro.cluster.shard import (
    DEFAULT_COLD_ENTRIES,
    DEFAULT_HOT_BYTES,
    CacheShard,
    EjectJournal,
    ShardStats,
)
from repro.cluster.workload import (
    ClusterWorkloadConfig,
    ClusterWorkloadResult,
    ZipfianKeys,
    build_cluster,
    cluster_contents,
    make_page,
    run_cluster_workload,
)

__all__ = [
    "CacheCluster",
    "CacheShard",
    "ClusterWorkloadConfig",
    "ClusterWorkloadResult",
    "ConsistentHashRing",
    "DEFAULT_COLD_ENTRIES",
    "DEFAULT_HOT_BYTES",
    "DEFAULT_PREFIX",
    "DEFAULT_VNODES",
    "EjectJournal",
    "SHARD_SNAPSHOT_KIND",
    "ShardCheckpointer",
    "ShardEjectRouter",
    "ShardFactory",
    "ShardRestoreReport",
    "ShardStats",
    "ZipfianKeys",
    "attach_cluster_to_bus",
    "build_cluster",
    "cluster_contents",
    "make_page",
    "run_cluster_workload",
    "shard_names",
    "stable_hash",
]
