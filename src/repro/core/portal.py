"""The CachePortal facade: install sniffer + invalidator on a site.

One call wires the whole architecture of Figure 7 onto an existing
Configuration-III site — without modifying its servlets, servers, or
database:

* every servlet is wrapped by a request logger,
* every application server's driver is wrapped by a query logger,
* the request-to-query mapper produces the QI/URL map,
* the invalidator watches the update log and ejects affected pages.

Typical use::

    site = build_site(Configuration.WEB_CACHE, servlets, database=db)
    portal = CachePortal(site)
    site.get("/catalog?maker=Toyota")       # page generated and cached
    db.execute("INSERT INTO car VALUES (...)")
    portal.run_invalidation_cycle()         # stale pages ejected

Portal state is crash-safe when checkpointed::

    portal.checkpoint("portal.ckpt")        # atomic, checksummed snapshot
    ...                                      # process dies, restarts
    portal = CachePortal(site)               # fresh install, empty state
    report = portal.restore("portal.ckpt")   # map/registry/cursor reloaded
"""

from __future__ import annotations

import itertools
from pathlib import Path
from typing import Callable, Optional, Union

from repro.errors import CachePortalError
from repro.web.site import Configuration, Site
from repro.core.sniffer import Sniffer
from repro.core.invalidator import InvalidationPolicy, InvalidationReport, Invalidator
from repro.core import recovery


class CachePortal:
    """Deploys CachePortal on a web-cache (Configuration III) site.

    Args:
        site: the site to instrument; must have a web cache.
        policy: invalidation-policy thresholds (optional).
        polling_budget: max polling queries per invalidation cycle;
            ``None`` means unbounded (best invalidation quality).
        max_staleness_ms: staleness bound the deployment guarantees;
            servlets with tighter temporal sensitivity stay uncacheable.
        use_data_cache: direct polling queries to an invalidator-side
            data cache instead of the origin DBMS (§2.4).
        clock: shared time source for logs; defaults to a logical counter.
    """

    def __init__(
        self,
        site: Site,
        policy: Optional[InvalidationPolicy] = None,
        polling_budget: Optional[int] = None,
        max_staleness_ms: float = 1000.0,
        use_data_cache: bool = False,
        batch_polling: bool = True,
        safety_enforcement: bool = True,
        version_keys: bool = True,
        conflict_matrix: bool = True,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if site.configuration is not Configuration.WEB_CACHE or site.web_cache is None:
            raise CachePortalError(
                "CachePortal requires a Configuration III site (web cache)"
            )
        self.site = site
        self._logical = itertools.count()
        self.clock = clock or (lambda: float(next(self._logical)))

        # The sniffer needs the invalidator's cacheability feedback, and
        # the invalidator needs the sniffer's QI/URL map; break the cycle
        # with a late-bound veto.
        self.sniffer = Sniffer(
            site.app_servers,
            clock=self.clock,
            max_staleness_ms=max_staleness_ms,
            cacheability_veto=lambda servlet: self.invalidator.servlet_cacheable(
                servlet
            ),
        )
        self.invalidator = Invalidator(
            database=site.database,
            caches=[site.web_cache],
            qiurl_map=self.sniffer.qiurl_map,
            policy=policy,
            polling_budget=polling_budget,
            use_data_cache=use_data_cache,
            batch_polling=batch_polling,
            servlet_deadline=self._servlet_deadline,
            safety_enforcement=safety_enforcement,
            version_keys=version_keys,
            conflict_matrix=conflict_matrix,
        )

    def _servlet_deadline(self, servlet_name: str) -> float:
        """Temporal sensitivity of a servlet, for poll scheduling (§3.1)."""
        servlet = self.site.app_servers[0].servlets.by_name(servlet_name)
        return servlet.temporal_sensitivity_ms

    # -- operations -----------------------------------------------------------

    def uninstall(self) -> None:
        """Tear CachePortal down, restoring the site to its bare state.

        Servlet and driver wrappers are removed, so responses go back to
        ``no-cache`` and nothing is logged.  Already-cached pages are
        flushed — without an invalidator watching them they would go
        stale silently.  Idempotent.
        """
        self.sniffer.uninstall()
        self.site.web_cache.clear()

    def run_sniffer(self) -> int:
        """One mapping round: drain logs into the QI/URL map."""
        return self.sniffer.run_mapper()

    def run_invalidation_cycle(self) -> InvalidationReport:
        """One synchronization point: map logs, pull Δs, eject stale pages.

        The sniffer's mapper always runs first so that every page cached
        before this instant has its QI/URL rows visible to the
        invalidator — the safety property tests rely on this ordering.
        """
        self.run_sniffer()
        return self.invalidator.run_cycle()

    # -- checkpoint / recovery ------------------------------------------------

    def checkpoint(self, path: Union[str, Path]) -> str:
        """Persist the portal's durable state atomically; returns the
        snapshot checksum.

        Run the mapper first so every page cached before this instant has
        its QI/URL rows inside the snapshot — the same ordering
        :meth:`run_invalidation_cycle` relies on for the safety property.
        """
        self.run_sniffer()
        return recovery.write_checkpoint(path, recovery.snapshot_portal(self))

    def restore(
        self, path: Union[str, Path], reconcile_caches: bool = True
    ) -> "recovery.RecoveryReport":
        """Reload a checkpoint written by :meth:`checkpoint`.

        Rebuilds the QI/URL map and query registry (the invalidator's
        predicate index is re-derived by replay, never deserialized),
        seeks the update-log cursor to the checkpointed LSN — or fires
        the flush-all safety valve when the log truncated past it — and,
        with ``reconcile_caches``, ejects cached pages the snapshot has
        no QI/URL rows for (they were cached after the checkpoint and
        have no other eject path).
        """
        payload = recovery.read_checkpoint(path)
        report = recovery.restore_portal(
            self, payload, reconcile_caches=reconcile_caches
        )
        report.path = str(path)
        return report

    # -- introspection ------------------------------------------------------------

    @property
    def qiurl_map(self):
        return self.sniffer.qiurl_map

    def register_query_type(self, template_sql: str, name: Optional[str] = None):
        """Expose offline query-type registration (§4.1.1)."""
        return self.invalidator.register_query_type(template_sql, name)

    def status(self) -> dict:
        """Operational snapshot of every component, for dashboards/logs."""
        cache = self.site.web_cache
        invalidator = self.invalidator
        last = invalidator.last_report
        cache_section = {
            "pages": len(cache),
            "capacity": cache.capacity,
            "hits": cache.stats.hits,
            "misses": cache.stats.misses,
            "hit_ratio": round(cache.stats.hit_ratio, 4),
            "ejects": cache.stats.ejects,
            "evictions": cache.stats.evictions,
            "bytes_used": cache.stats.bytes_used,
        }
        if hasattr(cache, "shards") and hasattr(cache, "status"):
            # A sharded cluster fronting the site: surface its per-shard
            # and ring health alongside the aggregated cache counters.
            cache_section["cluster"] = cache.status()
        return {
            "cache": cache_section,
            "pools": {
                server.name: server.pool.stats()
                for server in self.site.app_servers
            },
            "sniffer": {
                "requests_mapped": self.sniffer.mapper.requests_mapped,
                "pairs_written": self.sniffer.mapper.pairs_written,
                "map_rows": len(self.qiurl_map),
            },
            "invalidator": {
                "cycles_run": invalidator.cycles_run,
                "query_types": len(invalidator.registry.types()),
                "query_instances": len(invalidator.registry),
                "polls_issued": invalidator.polling.stats.issued,
                "polls_coalesced": invalidator.polling.stats.coalesced,
                "poll_cache_hits": invalidator.polling.stats.cache_hits,
                "batch_polling": invalidator.batch_polling,
                "batched_queries": invalidator.polling.stats.batched_queries,
                "batched_instances": invalidator.polling.stats.batched_instances,
                "demux_misses": invalidator.polling.stats.demux_misses,
                "poll_round_trips_saved": (
                    invalidator.polling.stats.poll_round_trips_saved
                ),
                "over_invalidated_total": invalidator.scheduler.total_over_invalidated,
                "last_cycle": None
                if last is None
                else {
                    "records": last.records_processed,
                    "pairs_checked": last.pairs_checked,
                    "unaffected": last.unaffected,
                    "affected": last.affected,
                    "polls_executed": last.polls_executed,
                    "urls_ejected": last.urls_ejected,
                    "safe_instances": last.safe_instances,
                    "version_key_instances": last.version_key_instances,
                    "version_key_checks": last.version_key_checks,
                    "polls_avoided": last.polls_avoided,
                    "fallback_ejects": last.fallback_ejects,
                    "poll_only_checks": last.poll_only_checks,
                    "lint_findings": last.lint_findings,
                    "static_disjoint_skips": last.static_disjoint_skips,
                    "template_pairs_pruned": last.template_pairs_pruned,
                },
            },
            "safety": dict(
                invalidator.safety.stats(),
                enabled=invalidator.safety.enabled,
            ),
            "version_keys": None
            if invalidator.version_index is None
            else invalidator.version_index.stats(),
            "conflict_matrix": None
            if invalidator.conflict_matrix is None
            else invalidator.conflict_matrix.stats(),
        }
