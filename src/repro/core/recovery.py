"""Crash-safe checkpoint/recovery for CachePortal state.

The invalidator is the *only* defense against serving stale dynamic
pages (§2, §4), yet all of its working state — the QI/URL map, the query
registry, the update-log cursor, undelivered ejects — is in-memory: a
restart without recovery silently orphans every cached page, with no
eject path left to it.  This module makes portal state durable:

* :func:`write_checkpoint` / :func:`read_checkpoint` persist a
  **versioned, checksummed** snapshot **atomically** (write to a temp
  file in the same directory, fsync, then ``os.replace`` — a crash
  mid-write leaves the previous checkpoint intact, and a corrupt or
  torn file is rejected by its SHA-256 checksum instead of being
  half-loaded);
* :func:`snapshot_portal` / :func:`restore_portal` capture and reload a
  synchronous :class:`~repro.core.portal.CachePortal`;
* :func:`snapshot_pipeline` / :func:`restore_pipeline` do the same for a
  :class:`~repro.stream.pipeline.StreamingInvalidationPipeline`,
  additionally carrying the tailer's LSN cursor and the eject bus's
  undelivered/dead-letter state.

**What is serialized** is source state only: QI/URL rows, query-type
signatures with their tuning knobs and statistics, instance SQL with
dependent URLs, the LSN cursor, and undelivered ejects.  **Derived state
is never serialized**: parsed ASTs, per-table maps, and the predicate
index are rebuilt on restore by replaying registrations through the
registry's listener protocol.

Restore closes three staleness holes:

1. *Updates after the checkpoint*: the cursor is restored, so the next
   cycle replays every logged change the dead invalidator missed.
2. *Pages cached (or mapped) after the checkpoint*: they have no QI/URL
   row in the snapshot and hence no eject path — restore reconciles the
   caches and ejects these orphans.
3. *Update-log truncation past the checkpoint*: the missed changes are
   unknowable, so restore triggers the existing flush-all safety valve
   (every watched page is ejected) instead of silently resuming.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import CachePortalError

FORMAT_VERSION = 1


class CheckpointError(CachePortalError):
    """Raised when a checkpoint cannot be read back safely."""


@dataclass
class RecoveryReport:
    """What a restore did — the operator-facing outcome summary."""

    #: Where the snapshot came from (``None`` for in-memory restores).
    path: Optional[str] = None
    map_rows_restored: int = 0
    types_restored: int = 0
    instances_restored: int = 0
    cursor_lsn: int = 0
    #: True when the update log truncated past the checkpointed cursor:
    #: the flush-all safety valve fired instead of a silent resume.
    log_truncated: bool = False
    #: Inclusive LSN range the restore could not replay (when truncated).
    lost_range: Optional[Tuple[int, int]] = None
    #: Pages ejected by the flush-all valve.
    flushed_urls: int = 0
    #: Cached pages with no QI/URL row in the snapshot (cached or mapped
    #: after the checkpoint): no eject path exists for them, so restore
    #: ejects them from every reachable cache.
    orphans_ejected: int = 0
    #: Ejects that were undelivered at checkpoint time and re-published.
    ejects_republished: int = 0
    dead_letters_restored: int = 0
    #: POLL_ONLY result fingerprints carried over from the snapshot (they
    #: were trusted at checkpoint time and stay trusted after restore).
    fingerprints_restored: int = 0
    #: Version-key counters overlaid from the snapshot onto the
    #: replay-rebuilt key index (0 when the fast path is disabled or the
    #: snapshot predates it — the index floors itself conservatively).
    version_keys_restored: int = 0
    #: Update classes re-declared from the snapshot (the conflict matrix
    #: itself is derived state: its cells are recomputed by replay).
    conflict_classes_restored: int = 0
    #: Checkpointed conflict-matrix cells recomputed-and-compared after
    #: replay; a mismatch means the decision procedure changed verdicts
    #: across the restart (the fresh — conservative — verdict wins).
    conflict_cells_compared: int = 0
    conflict_cell_mismatches: int = 0


# -- the on-disk format -------------------------------------------------------


def _canonical(payload: Dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload: Dict) -> str:
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def write_checkpoint(path: Union[str, Path], payload: Dict) -> str:
    """Atomically persist ``payload`` under a versioned, checksummed
    envelope.  Returns the checksum.

    The write goes to a temporary sibling first and is published with
    ``os.replace`` — readers see either the previous checkpoint or the
    complete new one, never a torn file.
    """
    path = Path(path)
    checksum = _checksum(payload)
    envelope = {
        "format": FORMAT_VERSION,
        "checksum": checksum,
        "payload": payload,
    }
    tmp_path = path.with_name(path.name + ".tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle, indent=1, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return checksum


def read_checkpoint(path: Union[str, Path]) -> Dict:
    """Load and verify a checkpoint; returns the payload dictionary.

    Raises:
        CheckpointError: on a missing file, unparseable JSON, an
        unsupported format version, or a checksum mismatch (torn or
        tampered file).
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        envelope = json.loads(text)
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(envelope, dict) or envelope.get("format") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format {envelope.get('format')!r} "
            f"in {path} (expected {FORMAT_VERSION})"
        )
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        raise CheckpointError(f"checkpoint {path} has no payload")
    if _checksum(payload) != envelope.get("checksum"):
        raise CheckpointError(
            f"checkpoint {path} failed checksum verification "
            "(torn write or corruption)"
        )
    return payload


# -- portal snapshots ---------------------------------------------------------


def snapshot_portal(portal) -> Dict:
    """Capture a :class:`~repro.core.portal.CachePortal`'s durable state."""
    index = portal.invalidator.version_index
    matrix = portal.invalidator.conflict_matrix
    return {
        "kind": "portal",
        "qiurl": portal.qiurl_map.snapshot_state(),
        "registry": portal.invalidator.registry.snapshot_state(),
        "cursor_lsn": portal.invalidator.updates.cursor,
        "bus": None,
        "version_keys": index.snapshot_state() if index is not None else None,
        "conflict_matrix": (
            matrix.snapshot_state() if matrix is not None else None
        ),
    }


def snapshot_pipeline(pipeline) -> Dict:
    """Capture a streaming pipeline's durable state (tailer + bus too)."""
    index = pipeline.version_index
    matrix = pipeline.conflict_matrix
    return {
        "kind": "pipeline",
        "qiurl": pipeline.qiurl_map.snapshot_state(),
        "registry": pipeline.registry.snapshot_state(),
        "cursor_lsn": pipeline.tailer.checkpoint(),
        "bus": pipeline.bus.snapshot_state(),
        "version_keys": index.snapshot_state() if index is not None else None,
        "conflict_matrix": (
            matrix.snapshot_state() if matrix is not None else None
        ),
    }


def restore_portal(
    portal, payload: Dict, reconcile_caches: bool = True
) -> RecoveryReport:
    """Reload a snapshot into a (freshly constructed) portal.

    Restores the QI/URL map and registry (replaying registrations so any
    attached predicate index rebuilds itself), seeks the update cursor to
    the checkpointed LSN, fires the flush-all valve when the log has
    truncated past it, and ejects orphaned cached pages.
    """
    report = RecoveryReport()
    invalidator = portal.invalidator
    report.map_rows_restored = portal.qiurl_map.restore_state(payload["qiurl"])
    matrix = invalidator.conflict_matrix
    conflict_state = payload.get("conflict_matrix")
    if matrix is not None and conflict_state:
        # Classes first: replayed registrations must see the declared
        # update classes so per-class proofs rebuild alongside them.
        report.conflict_classes_restored = matrix.restore_classes(
            conflict_state
        )
    registry_stats = invalidator.registry.restore_state(payload["registry"])
    report.types_restored = registry_stats["query_types"]
    report.instances_restored = registry_stats["query_instances"]
    if matrix is not None and conflict_state:
        # Cells are derived state: recompute and compare against the
        # checkpointed verdicts (the fresh verdict always wins).
        comparison = matrix.compare_cells(conflict_state, invalidator.registry)
        report.conflict_cells_compared = comparison["compared"]
        report.conflict_cell_mismatches = comparison["mismatches"]
    invalidator.safety.after_restore()
    report.fingerprints_restored = _count_fingerprints(invalidator.registry)
    cursor = int(payload["cursor_lsn"])
    report.cursor_lsn = cursor
    log = invalidator.database.update_log
    if cursor + 1 < log.oldest_lsn:
        # The log wrapped past the checkpoint: what changed in between is
        # unknowable.  Resume would be silent staleness — flush instead.
        report.log_truncated = True
        report.lost_range = (cursor + 1, max(log.last_lsn, log.oldest_lsn - 1))
        invalidator.updates.skip_to_head()
        if invalidator.version_index is not None:
            invalidator.version_index.note_truncation(invalidator.updates.cursor)
        report.flushed_urls = _flush_all_portal(invalidator)
    else:
        invalidator.updates.seek(cursor)
    if invalidator.version_index is not None:
        # Registry replay rebuilt the keys; overlay the checkpointed
        # counters (restamped instances carry their checkpointed stamps).
        report.version_keys_restored = invalidator.version_index.restore_state(
            payload.get("version_keys"), fallback_floor=cursor
        )
    if reconcile_caches:
        report.orphans_ejected = _eject_orphans(
            invalidator.messages.caches, portal.qiurl_map
        )
    return report


def restore_pipeline(
    pipeline, payload: Dict, reconcile_caches: bool = True
) -> RecoveryReport:
    """Reload a snapshot into a (not yet started) streaming pipeline."""
    report = RecoveryReport()
    report.map_rows_restored = pipeline.qiurl_map.restore_state(payload["qiurl"])
    matrix = pipeline.conflict_matrix
    conflict_state = payload.get("conflict_matrix")
    with pipeline.registry_lock:
        if matrix is not None and conflict_state:
            report.conflict_classes_restored = matrix.restore_classes(
                conflict_state
            )
        registry_stats = pipeline.registry.restore_state(payload["registry"])
        if matrix is not None and conflict_state:
            comparison = matrix.compare_cells(
                conflict_state, pipeline.registry
            )
            report.conflict_cells_compared = comparison["compared"]
            report.conflict_cell_mismatches = comparison["mismatches"]
        pipeline.safety.after_restore()
        report.fingerprints_restored = _count_fingerprints(pipeline.registry)
    report.types_restored = registry_stats["query_types"]
    report.instances_restored = registry_stats["query_instances"]
    cursor = int(payload["cursor_lsn"])
    report.cursor_lsn = cursor
    bus_state = payload.get("bus")
    if bus_state:
        report.ejects_republished = pipeline.bus.restore_state(bus_state)
        report.dead_letters_restored = len(bus_state.get("dead_letters", []))
    log = pipeline.database.update_log
    if cursor + 1 < log.oldest_lsn:
        report.log_truncated = True
        report.lost_range = (cursor + 1, max(log.last_lsn, log.oldest_lsn - 1))
        pipeline.tailer.seek(max(log.last_lsn, log.oldest_lsn - 1))
        pipeline.tailer.last_lost_range = report.lost_range
        with pipeline.registry_lock:
            watched = sorted(
                {
                    url
                    for instance in pipeline.registry.instances()
                    for url in instance.urls
                }
            )
        report.flushed_urls = len(watched)
        pipeline._flush_everything()
    else:
        pipeline.tailer.seek(cursor)
    if pipeline.version_index is not None:
        # Registry replay rebuilt the keys; overlay the checkpointed
        # counters.  On truncation _flush_everything already raised the
        # floor to the resynced cursor, so older stamps stay unvouchable.
        report.version_keys_restored = pipeline.version_index.restore_state(
            payload.get("version_keys"), fallback_floor=cursor
        )
    if reconcile_caches:
        caches = [
            target.cache
            for target in pipeline.bus.targets()
            if hasattr(target.cache, "keys") and hasattr(target.cache, "eject")
        ]
        report.orphans_ejected = _eject_orphans(caches, pipeline.qiurl_map)
    return report


# -- cache-cluster snapshots --------------------------------------------------

#: Envelope kind for whole-cluster snapshots (per-shard snapshots use
#: :data:`repro.cluster.persistence.SHARD_SNAPSHOT_KIND`).
CLUSTER_SNAPSHOT_KIND = "cache-cluster"


def snapshot_cluster(cluster) -> Dict:
    """Capture a whole cache cluster: ring membership, the eject
    journal (the warm-restart staleness guard), and every shard's pages.

    Duck-typed (anything with ``snapshot_state``) so this module never
    imports :mod:`repro.cluster` — the cluster package already imports
    the checkpoint envelope from here.
    """
    return {"kind": CLUSTER_SNAPSHOT_KIND, "cluster": cluster.snapshot_state()}


def restore_cluster(cluster, payload: Dict) -> Dict[str, int]:
    """Reload a whole-cluster snapshot; returns the restore counters
    (``shards_restored`` / ``pages_restored`` / ``pages_dropped``).

    The journal restores *before* shard contents, so pages ejected after
    the snapshot are discarded instead of resurrected.
    """
    if payload.get("kind") != CLUSTER_SNAPSHOT_KIND:
        raise CheckpointError(
            f"not a cache-cluster snapshot (kind={payload.get('kind')!r})"
        )
    return cluster.restore_state(dict(payload["cluster"]))


def checkpoint_cluster(cluster, path: Union[str, Path]) -> str:
    """Atomically persist a whole-cluster snapshot; returns the checksum."""
    return write_checkpoint(path, snapshot_cluster(cluster))


def recover_cluster(cluster, path: Union[str, Path]) -> Dict[str, int]:
    """Load and verify a whole-cluster checkpoint into ``cluster``."""
    return restore_cluster(cluster, read_checkpoint(path))


def _count_fingerprints(registry) -> int:
    return sum(
        1
        for instance in registry.instances()
        if instance.result_fingerprint is not None
    )


def _flush_all_portal(invalidator) -> int:
    """The synchronous flush-all valve, applied eagerly at restore time."""
    all_urls = sorted(
        {url for instance in invalidator.registry.instances() for url in instance.urls}
    )
    invalidator.messages.invalidate(all_urls)
    for url in all_urls:
        invalidator.qiurl_map.drop_url(url)
        invalidator.registry.drop_url(url)
    return len(all_urls)


def _eject_orphans(caches, qiurl_map) -> int:
    """Eject cached pages the restored QI/URL map knows nothing about.

    A page cached — or mapped — after the checkpoint has no row in the
    snapshot: no future update can ever reach it, so leaving it cached is
    guaranteed eventual staleness.  Ejecting it merely costs one
    regeneration.
    """
    known = set(qiurl_map.urls())
    ejected = 0
    for cache in caches:
        for url_key in list(cache.keys()):
            if url_key not in known:
                cache.eject(url_key)
                ejected += 1
    return ejected
