"""The QI/URL map: query instances ↔ page URLs (paper §2.4).

Each row associates one query instance (a bound SELECT, stored as
canonical SQL text) with one page URL that was generated using its
results, plus the request metadata the invalidator needs.  The map is the
hand-off point between the sniffer (producer) and the invalidator
(consumer); the two sides are asynchronous, so the map supports cursors.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class QIURLEntry:
    """One row of the QI/URL map.

    Attributes:
        entry_id: unique row id.
        sql: canonical text of the bound query instance.
        url_key: the page identifier (host + keyed parameters).
        servlet: name of the servlet that generated the page.
        mapped_at: when the sniffer created this row.
    """

    entry_id: int
    sql: str
    url_key: str
    servlet: str
    mapped_at: float


class QIURLMap:
    """Append-mostly store of QI/URL rows with de-duplication.

    Rows are unique per (sql, url_key): re-generating the same page from
    the same query refreshes nothing.  Consumers read new rows through
    :meth:`read_new`, which tracks a per-map cursor (the invalidator is
    the only consumer in practice).
    """

    def __init__(self) -> None:
        self._rows: List[QIURLEntry] = []
        self._by_pair: Dict[Tuple[str, str], QIURLEntry] = {}
        self._by_url: Dict[str, Set[Tuple[str, str]]] = {}
        self._ids = itertools.count(1)
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._by_pair)

    def add(
        self, sql: str, url_key: str, servlet: str, mapped_at: float = 0.0
    ) -> Optional[QIURLEntry]:
        """Add one row; returns None when the (sql, url) pair already exists."""
        pair = (sql, url_key)
        if pair in self._by_pair:
            return None
        entry = QIURLEntry(
            entry_id=next(self._ids),
            sql=sql,
            url_key=url_key,
            servlet=servlet,
            mapped_at=mapped_at,
        )
        self._rows.append(entry)
        self._by_pair[pair] = entry
        self._by_url.setdefault(url_key, set()).add(pair)
        return entry

    def _is_live(self, row: QIURLEntry) -> bool:
        """True when ``row`` is the current entry for its (sql, url) pair.

        Membership of the pair alone is not enough: after a drop and a
        re-add of the same pair, the dead predecessor row still sits in
        ``_rows`` with a live pair — only the row ``_by_pair`` actually
        points at is live.
        """
        return self._by_pair.get((row.sql, row.url_key)) is row

    def read_new(self) -> List[QIURLEntry]:
        """Rows appended since the previous call (the consumer cursor)."""
        new_rows = self._rows[self._cursor :]
        self._cursor = len(self._rows)
        # Skip rows that were dropped (or superseded) after being appended.
        return [row for row in new_rows if self._is_live(row)]

    def urls(self) -> List[str]:
        return sorted(self._by_url)

    def entries_for_url(self, url_key: str) -> List[QIURLEntry]:
        pairs = self._by_url.get(url_key, set())
        return [self._by_pair[pair] for pair in pairs]

    def drop_url(self, url_key: str) -> int:
        """Remove every row for a page (called after the page is ejected).

        The next time the page is generated and cached, the sniffer maps
        it afresh; keeping dead rows would only grow the invalidator's
        working set.
        """
        pairs = self._by_url.pop(url_key, set())
        for pair in pairs:
            del self._by_pair[pair]
        return len(pairs)

    def all_entries(self) -> List[QIURLEntry]:
        return [row for row in self._rows if self._is_live(row)]

    # -- checkpointing --------------------------------------------------------

    def snapshot_state(self) -> Dict:
        """JSON-compatible dump of the live rows and the consumer cursor.

        Dead rows (dropped after being appended) are not serialized;
        ``consumed`` counts how many of the *live* rows the consumer has
        already read, so a restored map re-delivers exactly the unread
        tail through :meth:`read_new`.
        """
        live = self.all_entries()
        consumed = sum(1 for row in self._rows[: self._cursor] if self._is_live(row))
        return {
            "rows": [
                [row.sql, row.url_key, row.servlet, row.mapped_at]
                for row in live
            ],
            "consumed": consumed,
        }

    def restore_state(self, data: Dict) -> int:
        """Replace this map's contents with a snapshot; returns row count."""
        self._rows.clear()
        self._by_pair.clear()
        self._by_url.clear()
        self._ids = itertools.count(1)
        self._cursor = 0
        for sql, url_key, servlet, mapped_at in data.get("rows", []):
            self.add(sql, url_key, servlet, mapped_at)
        self._cursor = min(int(data.get("consumed", 0)), len(self._rows))
        return len(self._rows)
