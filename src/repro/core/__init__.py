"""CachePortal core: the sniffer, the invalidator, and the portal facade.

This is the paper's primary contribution.  The *sniffer* builds the
query-instance→URL map from request and query logs without touching the
application; the *invalidator* watches the database update log and ejects
exactly the cached pages whose underlying data changed, generating polling
queries when a local decision is impossible.
"""

from repro.core.qiurl import QIURLEntry, QIURLMap
from repro.core.sniffer import (
    RequestLog,
    RequestLogRecord,
    RequestLoggingServlet,
    RequestToQueryMapper,
    Sniffer,
)
from repro.core.invalidator import (
    InvalidationPolicy,
    Invalidator,
    InvalidationReport,
    MatViewInvalidator,
    TriggerInvalidator,
    Verdict,
)
from repro.core.portal import CachePortal
from repro.core.recovery import (
    CheckpointError,
    RecoveryReport,
    read_checkpoint,
    write_checkpoint,
)
from repro.core.audit import AuditConfig, AuditReport, StalenessAuditor, run_audit

__all__ = [
    "AuditConfig",
    "AuditReport",
    "CachePortal",
    "CheckpointError",
    "RecoveryReport",
    "StalenessAuditor",
    "run_audit",
    "read_checkpoint",
    "write_checkpoint",
    "InvalidationPolicy",
    "InvalidationReport",
    "Invalidator",
    "MatViewInvalidator",
    "QIURLEntry",
    "QIURLMap",
    "RequestLog",
    "RequestLogRecord",
    "RequestLoggingServlet",
    "RequestToQueryMapper",
    "Sniffer",
    "TriggerInvalidator",
    "Verdict",
]
