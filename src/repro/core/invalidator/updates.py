"""Update processing (paper §4.2.1).

At each synchronization point the invalidator pulls the update log from
the database and groups the records into per-relation Δ⁺ (insertions) and
Δ⁻ (deletions) tables.  The processor keeps its own LSN cursor so cycles
never re-process or miss changes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.db.engine import Database
from repro.db.log import DeltaTables, UpdateRecord


def dedupe_records(
    records: Sequence[UpdateRecord],
) -> Tuple[List[UpdateRecord], int]:
    """Collapse identical change records (§4.2.1 group processing).

    Records with the same kind, tuple, and columns yield identical
    verdicts for every query instance, so only the first needs checking.
    Returns the unique records (original order) and the duplicate count.
    Shared by the synchronous invalidator and the streaming shard workers.
    """
    unique: List[UpdateRecord] = []
    seen = set()
    duplicates = 0
    for record in records:
        key = (record.kind, record.values, record.columns)
        if key in seen:
            duplicates += 1
            continue
        seen.add(key)
        unique.append(record)
    return unique, duplicates


class UpdateProcessor:
    """LSN-cursored reader of one database's update log."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._cursor = database.update_log.head_lsn - 1
        self.records_processed = 0
        self.pulls = 0
        self.truncations_hit = 0

    @property
    def cursor(self) -> int:
        return self._cursor

    def pull(self) -> DeltaTables:
        """Fetch all changes since the previous pull as Δ tables.

        Raises:
            ValueError: when the log was truncated past the cursor — the
            caller can no longer know what changed (see
            :meth:`pull_or_lose`).
        """
        self.pulls += 1
        deltas = self.database.update_log.deltas_since(self._cursor)
        if deltas.last_lsn is not None:
            self._cursor = deltas.last_lsn
        self.records_processed += len(deltas)
        return deltas

    def pull_or_lose(self) -> Tuple[Optional[DeltaTables], bool]:
        """Pull deltas, detecting update loss from log truncation.

        A bounded update log (a real redo log wraps) may discard records
        the invalidator has not read yet — e.g. after a long stall.  When
        that happens the set of changes is *unknowable* and the only safe
        move is to treat every cached page as suspect.  Returns
        ``(deltas, lost)``: on loss, deltas is None and the cursor resyncs
        to the head so the next cycle is clean.
        """
        try:
            return self.pull(), False
        except ValueError:
            self.truncations_hit += 1
            self.skip_to_head()
            return None, True

    def skip_to_head(self) -> None:
        """Advance the cursor without processing (used at install time)."""
        self._cursor = self.database.update_log.head_lsn - 1

    def seek(self, lsn: int) -> None:
        """Reposition the cursor (e.g. restoring a checkpoint)."""
        self._cursor = lsn
