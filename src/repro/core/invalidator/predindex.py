"""Predicate index: sub-linear update → instance candidate matching.

The invalidator must decide, for every changed tuple, which cached query
instances it can affect.  The baseline is a scan: run the (grouped)
independence check against *every* live instance of the changed relation
— O(instances × updates), which caps the registry size the invalidator
can sustain.  Almost all of those checks return UNAFFECTED by failing one
*local* conjunct (``price < 20000`` vs a tuple with price 72000), and
that failure is computable from an index probe instead of a checker run.

:class:`PredicateIndex` keeps, per (table, column):

* a **hash index** for equality and IN-list conjuncts — bucket by bound
  value; a probe is one dict lookup;
* a **sorted interval index** (bisect over the SQL total order via
  :class:`~repro.db.types.SortKey`) for range and BETWEEN conjuncts —
  a probe is a binary search plus the matching prefix/suffix;
* an **IS [NOT] NULL** bucket pair;
* a per-table **residual scan-list** for instances whose local conjuncts
  have no probe-friendly shape (LIKE, OR at the top level, self-joins,
  unions, LEFT JOINs, subquery-only references, unbindable templates).

A probe returns the *candidate set*: every instance whose verdict could
be anything other than UNAFFECTED.  Everything outside the candidate set
is **provably** UNAFFECTED — the changed tuple fails the instance's
indexed local conjunct, which is exactly the first way the grouped
checker rules a pair out — so pruning changes the amount of work, never
a verdict.  Soundness cases the probe honours:

* a tuple **missing the probe column** cannot be ruled out (the checker
  skips unevaluable conditions): all instances indexed on that column
  become candidates;
* a **NULL tuple value** fails every comparison (three-valued logic):
  equality/range instances are pruned, ``IS NULL`` instances match;
* a **NULL bound** (``col = NULL``) can never evaluate to TRUE: the
  instance is indexed but unreachable by any probe value;
* a provably **constant-false** instance (``WHERE 1 = 2`` bound) is
  never affected at all and is pruned without any probe structure;
* a conjunct qualified by the base-table name while the table is bound
  under an alias would be unresolvable in the checker's scope (skipped,
  hence no pruning) — :class:`TypeAnalysis` never marks it indexable.

Consistency: the index implements the
:class:`~repro.core.invalidator.registration.RegistryListener` protocol;
attach it to a :class:`QueryTypeRegistry` and every instance discovery
inserts entries while every eviction (``drop_url`` orphaning an
instance) removes them.  Mutations and probes are not internally locked
— callers serialize through the registry lock, as the streaming workers
already do for ``instances_touching``.
"""

from __future__ import annotations

import time
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.db.expr import Scope, evaluate
from repro.db.log import UpdateRecord
from repro.db.types import SortKey, Value, sql_compare
from repro.sql import ast
from repro.sql.params import bind_expression
from repro.core.invalidator.grouping import IndexableConjunct, TypeAnalysis
from repro.core.invalidator.registration import (
    QueryInstance,
    QueryType,
    QueryTypeRegistry,
    RegistryListener,
)
from repro.core.invalidator.safety import SafetyVerdict

_EMPTY_SCOPE = Scope([])
#: Sentinel distinguishing "evaluates to SQL NULL" from "cannot evaluate".
_UNEVALUABLE = object()
#: Sorts after every sequence number inside bisect boundary tuples.
_SEQ_INF = float("inf")


@dataclass
class ProbeResult:
    """Outcome of one (table, changed tuple) probe."""

    table: str
    #: Instances that may be affected, in registration (instance-id) order.
    candidates: List[QueryInstance]
    #: ``{instance_id}`` of :attr:`candidates`, for O(1) membership tests.
    candidate_ids: Set[int]
    #: Live instances registered for the table that the probe ruled out.
    pruned: int


@dataclass
class _Entry:
    """How one instance is represented in one table's index.

    ``payload`` depends on ``mode``: hash keys for "hash", the interval
    spec for "interval", the negated flag for "isnull", None otherwise.
    """

    instance: QueryInstance
    #: "hash" | "interval" | "isnull" | "residual" | "never" | "static"
    #: ("static": the conflict matrix proved the instance disjoint from
    #: every possible record of the table — like "never", the entry is
    #: pruned by every probe and exists only for accounting).
    mode: str
    column: Optional[str] = None
    payload: object = None


class _HashColumn:
    """Equality / IN-list entries for one (table, column)."""

    __slots__ = ("members", "by_value", "keys_of")

    def __init__(self) -> None:
        self.members: Dict[int, QueryInstance] = {}
        self.by_value: Dict[Value, Dict[int, QueryInstance]] = {}
        self.keys_of: Dict[int, Tuple[Value, ...]] = {}

    def add(self, instance: QueryInstance, keys: Tuple[Value, ...]) -> None:
        iid = instance.instance_id
        self.members[iid] = instance
        self.keys_of[iid] = keys
        for key in keys:
            # A None key is unreachable on purpose: probes never look up
            # NULL, and a NULL bound never compares TRUE.
            self.by_value.setdefault(key, {})[iid] = instance

    def remove(self, instance_id: int) -> None:
        self.members.pop(instance_id, None)
        for key in self.keys_of.pop(instance_id, ()):
            bucket = self.by_value.get(key)
            if bucket is not None:
                bucket.pop(instance_id, None)
                if not bucket:
                    del self.by_value[key]


class _NullColumn:
    """IS NULL / IS NOT NULL entries for one (table, column)."""

    __slots__ = ("members", "null_entries", "notnull_entries")

    def __init__(self) -> None:
        self.members: Dict[int, QueryInstance] = {}
        self.null_entries: Dict[int, QueryInstance] = {}
        self.notnull_entries: Dict[int, QueryInstance] = {}

    def add(self, instance: QueryInstance, negated: bool) -> None:
        iid = instance.instance_id
        self.members[iid] = instance
        target = self.notnull_entries if negated else self.null_entries
        target[iid] = instance

    def remove(self, instance_id: int) -> None:
        self.members.pop(instance_id, None)
        self.null_entries.pop(instance_id, None)
        self.notnull_entries.pop(instance_id, None)


#: Interval spec: (low, low_incl, high, high_incl, has_low, has_high).
_IntervalSpec = Tuple[Value, bool, Value, bool, bool, bool]


class _IntervalColumn:
    """Range / BETWEEN entries for one (table, column).

    Three sorted lists keep probes output-sensitive for the common
    one-sided shapes: ``uppers`` (only an upper bound — the Table-3
    ``price < $1`` family), ``lowers`` (only a lower bound), ``bounded``
    (both).  Sorting uses :class:`SortKey`, i.e. exactly the SQL total
    order ``sql_compare`` applies, so cross-type probes (a string value
    against numeric bounds) prune precisely when the checker would.
    """

    __slots__ = ("members", "uppers", "lowers", "bounded", "placement", "_seq")

    def __init__(self) -> None:
        self.members: Dict[int, QueryInstance] = {}
        # Items: (bound SortKey, flag, seq, instance_id); flag semantics
        # are chosen per list so the bisect boundary splits exactly.
        self.uppers: List[tuple] = []
        self.lowers: List[tuple] = []
        self.bounded: List[tuple] = []
        #: instance_id → (list name, item, high, high_incl); list name
        #: None marks a never-matching (NULL-bounded) entry.
        self.placement: Dict[int, tuple] = {}
        self._seq = 0

    def add(self, instance: QueryInstance, spec: _IntervalSpec) -> None:
        low, low_incl, high, high_incl, has_low, has_high = spec
        iid = instance.instance_id
        self.members[iid] = instance
        self._seq += 1
        seq = self._seq
        if (has_low and low is None) or (has_high and high is None):
            # NULL bound: the conjunct can never evaluate TRUE; keep the
            # entry for the column-missing fallback only.
            self.placement[iid] = (None, None, None, None)
            return
        if has_low and has_high:
            # flag 0 = inclusive (>=), 1 = strict (>): inclusive sorts
            # first so boundary (v, 1) keeps low==v inclusive entries.
            item = (SortKey(low), 0 if low_incl else 1, seq, iid)
            insort(self.bounded, item)
            self.placement[iid] = ("bounded", item, high, high_incl)
        elif has_high:
            # flag 0 = strict (<), 1 = inclusive (<=): strict sorts first
            # so boundary (v, 0, inf) drops high==v strict entries.
            item = (SortKey(high), 1 if high_incl else 0, seq, iid)
            insort(self.uppers, item)
            self.placement[iid] = ("uppers", item, None, None)
        else:
            item = (SortKey(low), 0 if low_incl else 1, seq, iid)
            insort(self.lowers, item)
            self.placement[iid] = ("lowers", item, None, None)

    def remove(self, instance_id: int) -> None:
        self.members.pop(instance_id, None)
        placed = self.placement.pop(instance_id, None)
        if placed is None or placed[0] is None:
            return
        target = getattr(self, placed[0])
        position = bisect_left(target, placed[1])
        if position < len(target) and target[position] == placed[1]:
            del target[position]

    def probe_into(self, value: Value, out: Dict[int, QueryInstance]) -> None:
        """Add every entry whose interval contains ``value`` to ``out``."""
        key = SortKey(value)
        for item in self.uppers[bisect_left(self.uppers, (key, 0, _SEQ_INF)) :]:
            out[item[3]] = self.members[item[3]]
        for item in self.lowers[: bisect_left(self.lowers, (key, 1))]:
            out[item[3]] = self.members[item[3]]
        for item in self.bounded[: bisect_left(self.bounded, (key, 1))]:
            iid = item[3]
            high, high_incl = self.placement[iid][2:]
            order = sql_compare(value, high)
            if order is not None and (order < 0 or (order == 0 and high_incl)):
                out[iid] = self.members[iid]


class _TableIndex:
    """All index structures for one base table."""

    __slots__ = (
        "entries",
        "by_type",
        "residuals",
        "static_ids",
        "hash_cols",
        "interval_cols",
        "null_cols",
    )

    def __init__(self) -> None:
        self.entries: Dict[int, _Entry] = {}
        #: type_id → [QueryType, live instance count] — lets callers
        #: account for pruned pairs per type without touching instances.
        self.by_type: Dict[int, list] = {}
        self.residuals: Dict[int, QueryInstance] = {}
        #: Instance ids parked by a conflict-matrix whole-table proof.
        self.static_ids: Set[int] = set()
        self.hash_cols: Dict[str, _HashColumn] = {}
        self.interval_cols: Dict[str, _IntervalColumn] = {}
        self.null_cols: Dict[str, _NullColumn] = {}

    def add(self, entry: _Entry) -> None:
        instance = entry.instance
        self.entries[instance.instance_id] = entry
        tally = self.by_type.setdefault(
            instance.query_type.type_id, [instance.query_type, 0]
        )
        tally[1] += 1
        if entry.mode == "residual":
            self.residuals[instance.instance_id] = instance
        elif entry.mode == "hash":
            self.hash_cols.setdefault(entry.column, _HashColumn()).add(
                instance, entry.payload
            )
        elif entry.mode == "interval":
            self.interval_cols.setdefault(entry.column, _IntervalColumn()).add(
                instance, entry.payload
            )
        elif entry.mode == "isnull":
            self.null_cols.setdefault(entry.column, _NullColumn()).add(
                instance, entry.payload
            )
        elif entry.mode == "static":
            self.static_ids.add(instance.instance_id)
        # "never"/"static" entries live only in entries/by_type (plus the
        # static id set): always pruned.

    def remove(self, instance_id: int) -> Optional[_Entry]:
        entry = self.entries.pop(instance_id, None)
        if entry is None:
            return None
        type_id = entry.instance.query_type.type_id
        tally = self.by_type.get(type_id)
        if tally is not None:
            tally[1] -= 1
            if tally[1] <= 0:
                del self.by_type[type_id]
        if entry.mode == "residual":
            self.residuals.pop(instance_id, None)
        elif entry.mode == "hash":
            self.hash_cols[entry.column].remove(instance_id)
        elif entry.mode == "interval":
            self.interval_cols[entry.column].remove(instance_id)
        elif entry.mode == "isnull":
            self.null_cols[entry.column].remove(instance_id)
        elif entry.mode == "static":
            self.static_ids.discard(instance_id)
        return entry


class PredicateIndex(RegistryListener):
    """Update → candidate-instance index over a query registry.

    Args:
        analysis_for: optional shared ``QueryType → TypeAnalysis``
            provider (e.g. ``GroupedChecker.analysis_for``) so type
            decompositions are computed once per process, not per
            consumer.
        conflict: optional
            :class:`~repro.core.invalidator.conflict.ConflictMatrix`.
            When it proves an instance disjoint from *every* possible
            record of a table (``index_drop``), the instance is parked
            in a never-matching entry instead of any probe structure.
    """

    def __init__(self, analysis_for=None, conflict=None) -> None:
        self._tables: Dict[str, _TableIndex] = {}
        self._analyses: Dict[int, TypeAnalysis] = {}
        self._analysis_for = analysis_for or self._own_analysis
        self._conflict = conflict
        # Live composition counters, per (instance, table) entry.
        self.entries_indexed = 0
        self.entries_residual = 0
        self.entries_never = 0
        self.entries_static = 0
        # Probe counters.
        self.probes = 0
        self.probe_seconds = 0.0
        self.candidates_returned = 0
        self.pairs_pruned = 0

    # -- registry listener protocol ------------------------------------------

    def attach_to(self, registry: QueryTypeRegistry) -> "PredicateIndex":
        """Subscribe to ``registry`` and index its existing instances."""
        registry.add_listener(self)
        for instance in registry.instances():
            self.instance_registered(instance)
        return self

    def instance_registered(self, instance: QueryInstance) -> None:
        analysis = self._analysis_for(instance.query_type)
        for table in instance.query_type.tables:
            entry = self._classify(instance, analysis, table)
            self._tables.setdefault(table, _TableIndex()).add(entry)
            if entry.mode == "residual":
                self.entries_residual += 1
            elif entry.mode == "never":
                self.entries_never += 1
            elif entry.mode == "static":
                self.entries_static += 1
            else:
                self.entries_indexed += 1

    def instance_dropped(self, instance: QueryInstance) -> None:
        for table in instance.query_type.tables:
            table_index = self._tables.get(table)
            if table_index is None:
                continue
            entry = table_index.remove(instance.instance_id)
            if entry is None:
                continue
            if entry.mode == "residual":
                self.entries_residual -= 1
            elif entry.mode == "never":
                self.entries_never -= 1
            elif entry.mode == "static":
                self.entries_static -= 1
            else:
                self.entries_indexed -= 1

    # -- probing --------------------------------------------------------------

    def probe(self, table: str, record: UpdateRecord) -> ProbeResult:
        """Candidate instances for one changed tuple of ``table``.

        Cost is O(indexed columns · log n + candidates); every instance
        outside the result is provably UNAFFECTED by ``record``.
        """
        started = time.perf_counter()
        table_index = self._tables.get(table.lower())
        if table_index is None:
            self.probes += 1
            self.probe_seconds += time.perf_counter() - started
            return ProbeResult(table, [], set(), 0)
        tuple_values = record.as_dict()
        found: Dict[int, QueryInstance] = dict(table_index.residuals)
        for column, hash_column in table_index.hash_cols.items():
            if column not in tuple_values:
                found.update(hash_column.members)
                continue
            value = tuple_values[column]
            if value is None:
                continue  # NULL equals nothing: every entry pruned
            bucket = hash_column.by_value.get(value)
            if bucket:
                found.update(bucket)
        for column, interval_column in table_index.interval_cols.items():
            if column not in tuple_values:
                found.update(interval_column.members)
                continue
            value = tuple_values[column]
            if value is None:
                continue  # NULL is inside no interval
            interval_column.probe_into(value, found)
        for column, null_column in table_index.null_cols.items():
            if column not in tuple_values:
                found.update(null_column.members)
            elif tuple_values[column] is None:
                found.update(null_column.null_entries)
            else:
                found.update(null_column.notnull_entries)
        candidates = sorted(found.values(), key=lambda i: i.instance_id)
        pruned = len(table_index.entries) - len(candidates)
        self.probes += 1
        self.candidates_returned += len(candidates)
        self.pairs_pruned += pruned
        self.probe_seconds += time.perf_counter() - started
        return ProbeResult(table, candidates, set(found), pruned)

    def table_type_counts(self, table: str) -> Dict[int, list]:
        """Live ``type_id → [QueryType, count]`` view for one table."""
        table_index = self._tables.get(table.lower())
        return table_index.by_type if table_index is not None else {}

    def statically_dropped_ids(self, table: str) -> Set[int]:
        """Instance ids parked by conflict-matrix whole-table proofs."""
        table_index = self._tables.get(table.lower())
        return table_index.static_ids if table_index is not None else set()

    def registered(self, table: str) -> int:
        """Live instance count currently indexed under ``table``."""
        table_index = self._tables.get(table.lower())
        return len(table_index.entries) if table_index is not None else 0

    def stats(self) -> Dict[str, object]:
        return {
            "tables": len(self._tables),
            "entries_indexed": self.entries_indexed,
            "entries_residual": self.entries_residual,
            "entries_never": self.entries_never,
            "entries_static": self.entries_static,
            "probes": self.probes,
            "probe_time_ms": round(1000.0 * self.probe_seconds, 3),
            "candidates_returned": self.candidates_returned,
            "pairs_pruned": self.pairs_pruned,
        }

    # -- classification --------------------------------------------------------

    def _own_analysis(self, query_type: QueryType) -> TypeAnalysis:
        analysis = self._analyses.get(query_type.type_id)
        if analysis is None:
            analysis = TypeAnalysis.of(query_type)
            self._analyses[query_type.type_id] = analysis
        return analysis

    def _classify(
        self, instance: QueryInstance, analysis: TypeAnalysis, table: str
    ) -> _Entry:
        """Pick the entry mode for (instance, table), mirroring the
        grouped checker's decision ladder so pruning can never contradict
        a verdict."""
        safety = instance.query_type.safety
        if safety is not None and safety.verdict not in (
            SafetyVerdict.SAFE,
            SafetyVerdict.VERSION_KEY,
        ):
            # Safety enforcement replaces the precise analysis for this
            # type; the instance must surface as a candidate for every
            # record so enforcement runs identically on both paths.
            # VERSION_KEY types stay index-eligible: their fast path only
            # ever *skips* checker work, so pruning a pair the counter
            # would also have skipped cannot change a verdict.
            return _Entry(instance, "residual")
        if analysis.is_union or analysis.has_left_join:
            return _Entry(instance, "residual")
        if table not in set(analysis.aliases.values()):
            return _Entry(instance, "residual")  # subquery-only: conservative
        bindings = [
            binding for binding, base in analysis.aliases.items() if base == table
        ]
        if len(bindings) != 1:
            # Self-join: UNAFFECTED requires *every* occurrence to fail a
            # local conjunct; one probe structure cannot prove that.
            return _Entry(instance, "residual")
        binding_analysis = analysis.by_binding[bindings[0]]
        # Checker parity: when any template of this binding is unbindable
        # the grouped checker abandons local pruning for the instance
        # (conservative AFFECTED path), so the index must not prune either.
        try:
            for template in binding_analysis.local_templates:
                bind_expression(template, instance.bindings)
            for template in binding_analysis.residual_templates:
                bind_expression(template, instance.bindings)
        except ReproError:
            return _Entry(instance, "residual")
        for template in analysis.constant_templates:
            if self._constant(template, instance.bindings) is False:
                return _Entry(instance, "never")
        if self._conflict is not None and self._conflict.index_drop(
            instance, table
        ):
            # The conflict matrix proved this instance disjoint from
            # every record the table can ever log: no probe structure
            # needed, the entry only participates in bulk accounting.
            return _Entry(instance, "static")
        for conjunct in binding_analysis.indexable_templates:
            entry = self._build_entry(instance, conjunct)
            if entry is not None:
                return entry
        return _Entry(instance, "residual")

    def _build_entry(
        self, instance: QueryInstance, conjunct: IndexableConjunct
    ) -> Optional[_Entry]:
        """Fold the conjunct's bound value side(s) into an index entry, or
        None when the values do not reduce to constants."""
        template = conjunct.template
        if conjunct.kind == "isnull":
            return _Entry(instance, "isnull", conjunct.column, conjunct.negated)
        if conjunct.kind == "in":
            keys = []
            for item in template.items:
                value = self._constant(item, instance.bindings)
                if value is _UNEVALUABLE:
                    return None
                keys.append(value)
            return _Entry(instance, "hash", conjunct.column, tuple(keys))
        if isinstance(template, ast.Between):
            low = self._constant(template.low, instance.bindings)
            high = self._constant(template.high, instance.bindings)
            if low is _UNEVALUABLE or high is _UNEVALUABLE:
                return None
            spec = (low, True, high, True, True, True)
            return _Entry(instance, "interval", conjunct.column, spec)
        # Binary comparison; conjunct.op is normalized (column on the left),
        # but the template keeps its original orientation.
        left_is_column = isinstance(template.left, ast.ColumnRef)
        value_side = template.right if left_is_column else template.left
        bound = self._constant(value_side, instance.bindings)
        if bound is _UNEVALUABLE:
            return None
        if conjunct.kind == "eq":
            return _Entry(instance, "hash", conjunct.column, (bound,))
        op = conjunct.op
        if op is ast.BinaryOp.LT:
            spec = (None, False, bound, False, False, True)
        elif op is ast.BinaryOp.LE:
            spec = (None, False, bound, True, False, True)
        elif op is ast.BinaryOp.GT:
            spec = (bound, False, None, False, True, False)
        else:  # GE
            spec = (bound, True, None, False, True, False)
        return _Entry(instance, "interval", conjunct.column, spec)

    def _constant(self, expr: ast.Expr, bindings: Tuple[Value, ...]):
        """Bind and fold a column-free expression to a constant, or
        :data:`_UNEVALUABLE` (mirrors the checker's skip-on-error)."""
        try:
            bound = bind_expression(expr, bindings)
            return evaluate(bound, (), _EMPTY_SCOPE)
        except ReproError:
            return _UNEVALUABLE
