"""Schedule generation: deadlines and the polling budget (§4.2.2).

The invalidator must function in real time, so the number of polling
queries it may issue per cycle is limited.  The scheduler orders the
candidate polls — most valuable first — and cuts the list at the budget.
Candidates that miss the cut are *over-invalidated*: their pages are
ejected without polling.  This is precisely the paper's trade-off between
polling amount and invalidation quality: a small budget keeps the DBMS
load down but drives the invalidation rate (and hence cache-miss rate) up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class PollCandidate:
    """One pending polling decision.

    Attributes:
        key: opaque identity for the caller to correlate results.
        priority: higher first (from the query type's registration).
        cost: estimated work units for the polling query.
        urls_at_stake: pages that will be needlessly ejected if the poll
            is skipped; the scheduler protects the largest stakes first.
        deadline_ms: freshness requirement of the most sensitive servlet
            involved (tighter deadlines get scheduled earlier).
        batch_key: set-oriented polling group identity — candidates that
            share a non-None key fold into ONE batched polling query, so
            only the first admitted member of a group pays a round trip
            (budget slot + planned cost); the rest ride along for free.
    """

    key: object
    priority: int = 0
    cost: float = 1.0
    urls_at_stake: int = 1
    deadline_ms: float = 1000.0
    batch_key: Optional[object] = None


@dataclass
class Schedule:
    """Scheduler output: the polls to run and the ones to over-invalidate."""

    to_poll: List[PollCandidate] = field(default_factory=list)
    over_invalidate: List[PollCandidate] = field(default_factory=list)

    @property
    def round_trips(self) -> int:
        """Database round trips this schedule will actually issue: one per
        unbatched candidate plus one per distinct batch group."""
        seen = set()
        trips = 0
        for candidate in self.to_poll:
            if candidate.batch_key is None:
                trips += 1
            elif candidate.batch_key not in seen:
                seen.add(candidate.batch_key)
                trips += 1
        return trips

    @property
    def planned_cost(self) -> float:
        """Planned work, amortized across batches: a batch group's cost is
        counted once (its first admitted member), not per instance."""
        seen = set()
        total = 0.0
        for candidate in self.to_poll:
            if candidate.batch_key is None:
                total += candidate.cost
            elif candidate.batch_key not in seen:
                seen.add(candidate.batch_key)
                total += candidate.cost
        return total


class InvalidationScheduler:
    """Budgeted selection of polling queries.

    Args:
        polling_budget: maximum polling queries per cycle (None = unlimited).
        cost_budget: optional cap on summed poll cost per cycle.
    """

    def __init__(
        self,
        polling_budget: Optional[int] = None,
        cost_budget: Optional[float] = None,
    ) -> None:
        self.polling_budget = polling_budget
        self.cost_budget = cost_budget
        self.cycles = 0
        self.total_candidates = 0
        self.total_scheduled = 0
        self.total_round_trips = 0
        self.total_over_invalidated = 0

    @property
    def budget_utilization(self) -> float:
        """Issued round trips over offered poll slots across all cycles.

        A budget slot is one database round trip.  Batched candidates
        sharing a ``batch_key`` consume a single slot between them, so
        utilization reflects queries actually sent — counting every
        batched instance would over-report pressure and starve later
        cycles.  With an unbounded budget every candidate is a slot, so
        the value is 1.0 whenever any poll ran; streaming metrics use
        this as the poll-budget utilization gauge.
        """
        if self.polling_budget is None:
            offered = self.total_candidates
            used = self.total_scheduled
        else:
            offered = self.cycles * self.polling_budget
            used = self.total_round_trips
        if not offered:
            return 0.0
        return min(1.0, used / offered)

    def schedule(self, candidates: List[PollCandidate]) -> Schedule:
        """Split candidates into polls-to-run and over-invalidations.

        Ordering: higher priority first, then more URLs at stake (skipping
        them hurts the hit ratio most), then tighter deadline, then lower
        cost.  The order is deterministic for reproducible experiments.

        Batching: a candidate whose ``batch_key`` matches an already
        admitted candidate joins that batch's round trip — it costs no
        budget slot and no additional planned cost (the batched query is
        issued either way), so nearly-free riders are never deferred.
        """
        self.cycles += 1
        self.total_candidates += len(candidates)
        ranked = sorted(
            candidates,
            key=lambda c: (-c.priority, -c.urls_at_stake, c.deadline_ms, c.cost),
        )
        schedule = Schedule()
        spent_cost = 0.0
        round_trips = 0
        admitted_batches = set()
        for candidate in ranked:
            rides_along = (
                candidate.batch_key is not None
                and candidate.batch_key in admitted_batches
            )
            if rides_along:
                schedule.to_poll.append(candidate)
                continue
            over_count_budget = (
                self.polling_budget is not None
                and round_trips >= self.polling_budget
            )
            over_cost_budget = (
                self.cost_budget is not None
                and spent_cost + candidate.cost > self.cost_budget
            )
            if over_count_budget or over_cost_budget:
                schedule.over_invalidate.append(candidate)
            else:
                schedule.to_poll.append(candidate)
                spent_cost += candidate.cost
                round_trips += 1
                if candidate.batch_key is not None:
                    admitted_batches.add(candidate.batch_key)
        self.total_scheduled += len(schedule.to_poll)
        self.total_round_trips += round_trips
        self.total_over_invalidated += len(schedule.over_invalidate)
        return schedule
