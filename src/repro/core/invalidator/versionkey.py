"""Version-keyed O(1) single-table invalidation fast path.

Even after grouping (§4.1.2), predicate indexing, and set-oriented
polling, every live instance of a single-table query class still pays a
per-(instance, update) independence check each cycle.  Following the
interval/version-key argument of Łopuszański (arxiv 2310.15360), that
whole class can be resolved by a *counter comparison* instead: keep one
monotone version counter per predicate region — a point key for
equality conjuncts, an interval entry for range conjuncts, and a
per-table coarse counter as the fallback watermark — bump it from the
update stream, and an instance whose counter has not moved past its
registration stamp is provably untouched.

The contract is deliberately one-sided so the fast path can never
change an eject decision:

* ``fresh(instance, record)`` returns **True** only when the counter
  *proves* the pair UNAFFECTED — the grouped checker would reach the
  same verdict, so the caller may skip it.
* Anything unprovable (no key, counter moved, stamp missing, record
  predates the stamp, record not yet observed) returns **False** and
  the caller falls back to the precise checker.  Ejects are therefore
  bit-identical with the fast path on or off; only the number of
  checker invocations changes.

Soundness rests on three invariants:

1. **Stamp**: an instance is stamped with the update cursor at
   registration time.  The sniffer-first cycle order guarantees every
   record at or below that cursor is reflected in the cached page, so
   only records *above* the stamp can matter — and ``fresh`` refuses to
   vouch for records at or below it.
2. **Bump-before-check**: both consumers feed each pulled batch through
   :meth:`VersionKeyIndex.observe` before any pair of that batch is
   checked, so a record that satisfies *all* of a key's conjuncts has
   already bumped the key when its own pair is examined.  The per-table
   coarse counter records the highest observed LSN and gates every
   answer: a record the index has not seen cannot be vouched for.
3. **Floor**: the index only vouches for stamps at or above its bump
   floor (creation cursor, raised by log truncation and conservative
   restores); below it, bump coverage is unknown.

Checkpointing: :meth:`snapshot_state` captures the floor, the coarse
watermarks, and every key counter; instances persist their stamps in
the registry snapshot.  On restore the keys themselves are rebuilt by
registry replay (never deserialized) and :meth:`restore_state` overlays
the counters — a missing or old-format snapshot degrades to "never
fresh" for restored instances rather than to staleness.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.db.expr import Scope, evaluate
from repro.db.log import UpdateRecord
from repro.sql import ast
from repro.sql.params import bind_expression
from repro.sql.printer import to_sql
from repro.core.invalidator.grouping import (
    BindingAnalysis,
    IndexableConjunct,
    TypeAnalysis,
)
# The probe structures are shared with the predicate index on purpose:
# candidate discovery at bump time must honour exactly the same
# missing-column / NULL-value soundness cases as candidate discovery at
# check time, so the same implementation serves both.
from repro.core.invalidator.predindex import (
    _EMPTY_SCOPE,
    _UNEVALUABLE,
    _HashColumn,
    _IntervalColumn,
    _NullColumn,
)
from repro.core.invalidator.registration import (
    QueryInstance,
    QueryType,
    QueryTypeRegistry,
    RegistryListener,
)
from repro.core.invalidator.safety import (
    SafetyClassification,
    SafetyVerdict,
)


def analysis_qualifies(analysis: TypeAnalysis) -> bool:
    """True when a type's WHERE is a single-table indexable conjunction.

    Mirrors the grouped checker's decision ladder: every shape that
    would make the checker conservative (unions, LEFT JOINs, subquery
    references, residual conjuncts, non-indexable locals) disqualifies
    the type from the fast path.
    """
    if analysis.is_union or analysis.has_left_join:
        return False
    if len(analysis.aliases) != 1:
        return False
    if analysis.all_tables != frozenset(analysis.aliases.values()):
        return False  # also referenced via a subquery: conservative
    binding_analysis = next(iter(analysis.by_binding.values()))
    if binding_analysis.residual_templates:
        return False
    if not binding_analysis.local_templates:
        return False  # no WHERE: every touching update affects it anyway
    return len(binding_analysis.indexable_templates) == len(
        binding_analysis.local_templates
    )


class _TemplateShim:
    """Minimal ``QueryType`` stand-in: :meth:`TypeAnalysis.of` reads only
    the template, so classification can run before a type exists."""

    __slots__ = ("template",)

    def __init__(self, template) -> None:
        self.template = template


def template_qualifies(template) -> bool:
    """Qualify a bare template (no registered type yet)."""
    try:
        return analysis_qualifies(TypeAnalysis.of(_TemplateShim(template)))
    except ReproError:
        return False


def upgrade_classification(
    classification: SafetyClassification, template
) -> SafetyClassification:
    """Upgrade a SAFE classification to VERSION_KEY when the template
    qualifies for the fast path.

    The upgrade applies **only** from SAFE: a finding that floors the
    verdict above SAFE can never be masked by the fast path (the
    satellite guarantee asserted by the test suite).
    """
    if classification.verdict is not SafetyVerdict.SAFE:
        return classification
    if not template_qualifies(template):
        return classification
    return SafetyClassification(
        verdict=SafetyVerdict.VERSION_KEY, findings=classification.findings
    )


class _Key:
    """One refcounted version counter for a predicate region.

    ``instance_id`` is the key's own integer id — named so the key can
    duck-type into the predicate index's probe structures, which index
    their members by that attribute.
    """

    __slots__ = (
        "instance_id",
        "canonical",
        "table",
        "binding",
        "conjuncts",
        "probe",
        "last_bump_lsn",
        "refs",
    )

    def __init__(
        self,
        key_id: int,
        canonical: str,
        table: str,
        binding: str,
        conjuncts: List[ast.Expr],
        probe: Optional[Tuple],
    ) -> None:
        self.instance_id = key_id
        self.canonical = canonical
        self.table = table
        self.binding = binding
        self.conjuncts = conjuncts
        #: ("hash", column, values) | ("interval", column, spec) |
        #: ("isnull", column, negated) | None (always a bump candidate).
        self.probe = probe
        self.last_bump_lsn = 0
        self.refs: Set[int] = set()


class _TableKeys:
    """Bump-time probe structures for one base table's keys."""

    __slots__ = ("members", "hash_cols", "interval_cols", "null_cols", "unprobed")

    def __init__(self) -> None:
        self.members: Dict[int, _Key] = {}
        self.hash_cols: Dict[str, _HashColumn] = {}
        self.interval_cols: Dict[str, _IntervalColumn] = {}
        self.null_cols: Dict[str, _NullColumn] = {}
        #: Keys with no foldable probe conjunct: candidates for every
        #: record of the table (evaluation still decides the bump).
        self.unprobed: Dict[int, _Key] = {}

    def add(self, key: _Key) -> None:
        self.members[key.instance_id] = key
        if key.probe is None:
            self.unprobed[key.instance_id] = key
            return
        mode, column, payload = key.probe
        if mode == "hash":
            self.hash_cols.setdefault(column, _HashColumn()).add(key, payload)
        elif mode == "interval":
            self.interval_cols.setdefault(column, _IntervalColumn()).add(key, payload)
        else:  # isnull
            self.null_cols.setdefault(column, _NullColumn()).add(key, payload)

    def remove(self, key: _Key) -> None:
        self.members.pop(key.instance_id, None)
        if key.probe is None:
            self.unprobed.pop(key.instance_id, None)
            return
        mode, column, _payload = key.probe
        if mode == "hash":
            structure = self.hash_cols.get(column)
        elif mode == "interval":
            structure = self.interval_cols.get(column)
        else:
            structure = self.null_cols.get(column)
        if structure is not None:
            structure.remove(key.instance_id)

    def candidates(self, tuple_values: Dict) -> Dict[int, _Key]:
        """Keys the changed tuple could possibly bump (soundness cases
        identical to :meth:`PredicateIndex.probe`)."""
        found: Dict[int, _Key] = dict(self.unprobed)
        for column, hash_column in self.hash_cols.items():
            if column not in tuple_values:
                found.update(hash_column.members)
                continue
            value = tuple_values[column]
            if value is None:
                continue  # NULL equals nothing
            bucket = hash_column.by_value.get(value)
            if bucket:
                found.update(bucket)
        for column, interval_column in self.interval_cols.items():
            if column not in tuple_values:
                found.update(interval_column.members)
                continue
            value = tuple_values[column]
            if value is None:
                continue  # NULL is inside no interval
            interval_column.probe_into(value, found)
        for column, null_column in self.null_cols.items():
            if column not in tuple_values:
                found.update(null_column.members)
            elif tuple_values[column] is None:
                found.update(null_column.null_entries)
            else:
                found.update(null_column.notnull_entries)
        return found


class VersionKeyIndex(RegistryListener):
    """Monotone version counters over the VERSION_KEY instance class.

    Args:
        analysis_for: optional shared ``QueryType → TypeAnalysis``
            provider (e.g. ``GroupedChecker.analysis_for``).
        stamp_source: zero-argument callable returning the consumer's
            current update cursor; newly registered fast-path instances
            are stamped with it.  ``None`` leaves stamps unset (the
            index then never vouches — restore overlays real stamps).
    """

    def __init__(self, analysis_for=None, stamp_source=None) -> None:
        self._lock = threading.RLock()
        self._analyses: Dict[int, TypeAnalysis] = {}
        self._analysis_for = analysis_for or self._own_analysis
        self._stamp_source = stamp_source
        self._key_ids = itertools.count(1)
        self._keys: Dict[str, _Key] = {}
        self._key_of: Dict[int, _Key] = {}
        #: Instances whose bound WHERE is provably constant-false: no
        #: update can ever affect them, so they are fresh forever.
        self._never: Set[int] = set()
        self._tables: Dict[str, _TableKeys] = {}
        #: Highest observed LSN per table: the coarse counter.  It gates
        #: every precise answer — a record above it was never observed,
        #: so no key counter can vouch for it.
        self._coarse: Dict[str, int] = {}
        #: Stamps below the floor predate complete bump coverage.
        self._floor = 0
        #: The part of the floor owed to log truncation specifically —
        #: a checkpoint restore may replace the construction-time floor
        #: (the snapshot supplies the missing coverage) but never this.
        self._truncation_floor = 0
        if stamp_source is not None:
            self._floor = int(stamp_source())
        # Observability counters.
        self.records_observed = 0
        self.keys_bumped = 0
        self.checks = 0
        self.fresh_hits = 0
        self.instances_unkeyed = 0

    # -- registry listener protocol -------------------------------------------

    def attach_to(self, registry: QueryTypeRegistry) -> "VersionKeyIndex":
        registry.add_listener(self)
        for instance in registry.instances():
            self.instance_registered(instance)
        return self

    def instance_registered(self, instance: QueryInstance) -> None:
        classification = instance.query_type.safety
        if (
            classification is None
            or classification.verdict is not SafetyVerdict.VERSION_KEY
        ):
            return
        with self._lock:
            if self._stamp_source is not None:
                instance.version_stamp_lsn = int(self._stamp_source())
            analysis = self._analysis_for(instance.query_type)
            built = self._build_key_parts(instance, analysis)
            if built == "never":
                self._never.add(instance.instance_id)
                return
            if built is None:
                self.instances_unkeyed += 1
                return
            canonical, table, binding, conjuncts, probe = built
            key = self._keys.get(canonical)
            if key is None:
                key = _Key(
                    next(self._key_ids), canonical, table, binding, conjuncts, probe
                )
                self._keys[canonical] = key
                self._tables.setdefault(table, _TableKeys()).add(key)
            key.refs.add(instance.instance_id)
            self._key_of[instance.instance_id] = key

    def instance_dropped(self, instance: QueryInstance) -> None:
        with self._lock:
            self._never.discard(instance.instance_id)
            key = self._key_of.pop(instance.instance_id, None)
            if key is None:
                return
            key.refs.discard(instance.instance_id)
            if key.refs:
                return
            del self._keys[key.canonical]
            table_keys = self._tables.get(key.table)
            if table_keys is not None:
                table_keys.remove(key)
                if not table_keys.members:
                    del self._tables[key.table]

    # -- the update stream -----------------------------------------------------

    def observe(self, records: Sequence[UpdateRecord]) -> int:
        """Bump counters for one batch of update records.

        Must run before any (instance, record) pair of the batch is
        checked — both consumers call it right after pulling a batch.
        Returns the number of key bumps performed.
        """
        bumped = 0
        with self._lock:
            for record in records:
                table = record.table.lower()
                if self._coarse.get(table, -1) < record.lsn:
                    self._coarse[table] = record.lsn
                table_keys = self._tables.get(table)
                if table_keys is None or not table_keys.members:
                    continue
                tuple_values = record.as_dict()
                for key in table_keys.candidates(tuple_values).values():
                    if key.last_bump_lsn >= record.lsn:
                        continue
                    if self._matches(key, tuple_values):
                        key.last_bump_lsn = record.lsn
                        bumped += 1
            self.records_observed += len(records)
            self.keys_bumped += bumped
        return bumped

    def note_truncation(self, floor_lsn: int) -> None:
        """The log truncated past the cursor: bump coverage up to the
        resynced cursor is unknowable, so no older stamp may be vouched
        for again.  Pass the consumer's resynced cursor."""
        with self._lock:
            self._truncation_floor = max(self._truncation_floor, int(floor_lsn))
            self._floor = max(self._floor, int(floor_lsn))

    # -- the O(1) check --------------------------------------------------------

    def fresh(self, instance: QueryInstance, record: UpdateRecord) -> bool:
        """True iff the counter *proves* the pair UNAFFECTED.

        False means "cannot vouch", never "affected" — the caller falls
        back to the precise checker.
        """
        with self._lock:
            self.checks += 1
            instance_id = instance.instance_id
            if instance_id in self._never:
                self.fresh_hits += 1
                return True
            key = self._key_of.get(instance_id)
            if key is None:
                return False
            stamp = instance.version_stamp_lsn
            if stamp is None or stamp < self._floor:
                return False
            if record.lsn <= stamp:
                # At or below the stamp the page's own render already
                # reflects the record — or, for a restored instance, the
                # record was handled before the checkpoint.  Either way
                # this index has nothing to add; stay conservative.
                return False
            if self._coarse.get(record.table.lower(), -1) < record.lsn:
                return False  # record not yet observed: cannot vouch
            if key.last_bump_lsn <= stamp:
                self.fresh_hits += 1
                return True
            return False

    # -- checkpointing ---------------------------------------------------------

    def snapshot_state(self) -> Dict:
        """JSON-compatible counter state; keys themselves are derived
        state and are rebuilt by registry replay on restore."""
        with self._lock:
            return {
                "floor": self._floor,
                "coarse": dict(self._coarse),
                "keys": {
                    canonical: key.last_bump_lsn
                    for canonical, key in self._keys.items()
                },
            }

    def restore_state(self, state: Optional[Dict], fallback_floor: int) -> int:
        """Overlay checkpointed counters onto the replay-rebuilt keys.

        Returns the number of key counters restored.  With no usable
        state (old-format snapshot) the floor rises to ``fallback_floor``
        (the restored cursor) so pre-checkpoint stamps are never vouched
        for — conservative, not stale.
        """
        with self._lock:
            if not state:
                self._floor = max(self._floor, int(fallback_floor))
                for key in self._keys.values():
                    key.last_bump_lsn = max(key.last_bump_lsn, int(fallback_floor))
                return 0
            # The snapshot's floor *replaces* the construction-time one:
            # its counters cover everything from that floor through the
            # checkpoint, and the rewound cursor replays the rest through
            # ``observe`` before any pair is checked.  Truncation floors
            # are the exception — lost bumps stay lost.
            self._floor = max(
                int(state.get("floor", fallback_floor)), self._truncation_floor
            )
            for table, lsn in (state.get("coarse") or {}).items():
                if self._coarse.get(table, -1) < int(lsn):
                    self._coarse[table] = int(lsn)
            counters = state.get("keys") or {}
            restored = 0
            for key in self._keys.values():
                if key.canonical in counters:
                    key.last_bump_lsn = max(
                        key.last_bump_lsn, int(counters[key.canonical])
                    )
                    restored += 1
                else:
                    # Unknown to the snapshot: assume bumped through the
                    # checkpoint so only post-restore quiet can vouch.
                    key.last_bump_lsn = max(key.last_bump_lsn, int(fallback_floor))
            return restored

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "keys": len(self._keys),
                "keyed_instances": len(self._key_of),
                "never_instances": len(self._never),
                "unkeyed_instances": self.instances_unkeyed,
                "tables": len(self._tables),
                "floor": self._floor,
                "records_observed": self.records_observed,
                "keys_bumped": self.keys_bumped,
                "checks": self.checks,
                "fresh_hits": self.fresh_hits,
            }

    # -- key construction ------------------------------------------------------

    def _own_analysis(self, query_type: QueryType) -> TypeAnalysis:
        analysis = self._analyses.get(query_type.type_id)
        if analysis is None:
            analysis = TypeAnalysis.of(query_type)
            self._analyses[query_type.type_id] = analysis
        return analysis

    def _build_key_parts(self, instance: QueryInstance, analysis: TypeAnalysis):
        """Fold one instance into key parts.

        Returns ``"never"`` for a provably constant-false instance,
        ``None`` when no sound key exists (the instance stays on the
        precise checker), or ``(canonical, table, binding, conjuncts,
        probe)``.
        """
        if not analysis_qualifies(analysis):
            return None  # defensive: verdicts and analyses agree in practice
        binding_analysis = next(iter(analysis.by_binding.values()))
        for template in analysis.constant_templates:
            if self._constant(template, instance.bindings) is False:
                return "never"
        try:
            conjuncts = [
                bind_expression(template, instance.bindings)
                for template in binding_analysis.local_templates
            ]
        except ReproError:
            # Unbindable: the checker treats every touching record as
            # AFFECTED, and so must we — no counter can prove otherwise.
            return None
        probe = self._fold_probe(binding_analysis, instance.bindings)
        canonical = "{}|{}".format(
            binding_analysis.base_table,
            " AND ".join(sorted(to_sql(conjunct) for conjunct in conjuncts)),
        )
        return (
            canonical,
            binding_analysis.base_table,
            binding_analysis.binding,
            conjuncts,
            probe,
        )

    def _fold_probe(
        self, binding_analysis: BindingAnalysis, bindings: Tuple
    ) -> Optional[Tuple]:
        """Best-ranked indexable conjunct, folded to constants — the
        same folding the predicate index applies (point keys for
        equality, interval entries for ranges, NULL buckets)."""
        for conjunct in binding_analysis.indexable_templates:
            folded = self._fold_one(conjunct, bindings)
            if folded is not None:
                return folded
        return None

    def _fold_one(
        self, conjunct: IndexableConjunct, bindings: Tuple
    ) -> Optional[Tuple]:
        template = conjunct.template
        if conjunct.kind == "isnull":
            return ("isnull", conjunct.column, conjunct.negated)
        if conjunct.kind == "in":
            values = []
            for item in template.items:
                value = self._constant(item, bindings)
                if value is _UNEVALUABLE:
                    return None
                values.append(value)
            return ("hash", conjunct.column, tuple(values))
        if isinstance(template, ast.Between):
            low = self._constant(template.low, bindings)
            high = self._constant(template.high, bindings)
            if low is _UNEVALUABLE or high is _UNEVALUABLE:
                return None
            return ("interval", conjunct.column, (low, True, high, True, True, True))
        left_is_column = isinstance(template.left, ast.ColumnRef)
        value_side = template.right if left_is_column else template.left
        bound = self._constant(value_side, bindings)
        if bound is _UNEVALUABLE:
            return None
        if conjunct.kind == "eq":
            return ("hash", conjunct.column, (bound,))
        op = conjunct.op
        if op is ast.BinaryOp.LT:
            spec = (None, False, bound, False, False, True)
        elif op is ast.BinaryOp.LE:
            spec = (None, False, bound, True, False, True)
        elif op is ast.BinaryOp.GT:
            spec = (bound, False, None, False, True, False)
        else:  # GE
            spec = (bound, True, None, False, True, False)
        return ("interval", conjunct.column, spec)

    def _matches(self, key: _Key, tuple_values: Dict) -> bool:
        """True when the tuple satisfies every bound conjunct of the key
        — mirroring the grouped checker's local-condition loop, where an
        unevaluable condition cannot rule the tuple out."""
        scope = Scope([(key.binding, list(tuple_values.keys()))])
        row = tuple(tuple_values.values())
        for condition in key.conjuncts:
            try:
                value = evaluate(condition, row, scope)
            except ReproError:
                continue  # cannot evaluate: cannot rule out the bump
            if value is not True:
                return False
        return True

    def _constant(self, expr: ast.Expr, bindings: Tuple):
        try:
            bound = bind_expression(expr, bindings)
            return evaluate(bound, (), _EMPTY_SCOPE)
        except ReproError:
            return _UNEVALUABLE
