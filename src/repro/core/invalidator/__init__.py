"""The invalidator module (paper §4).

Sub-modules follow the paper's decomposition:

* :mod:`registration` — query-type registration and discovery (§4.1);
* :mod:`policies` — invalidation-policy registration and discovery
  (§4.1.3–4.1.4);
* :mod:`updates` — update processing into Δ⁺/Δ⁻ tables (§4.2.1);
* :mod:`analysis` — the independence check deciding, per (query instance,
  update), affected / unaffected / needs-polling (Example 4.1);
* :mod:`polling` — polling-query generation and execution (§4.2.2–4.2.3);
* :mod:`scheduler` — deadlines and the polling budget (§4.2.2);
* :mod:`infomgmt` — the information management module (§4.3);
* :mod:`generator` — invalidation message creation (§4.2.4);
* :mod:`safety` — lint-derived SAFE / POLL_ONLY / ALWAYS_EJECT
  enforcement verdicts and the conservative-fallback enforcer;
* :mod:`invalidator` — the orchestrator, plus the two baseline
  invalidators (trigger-based and materialized-view-based) the paper
  argues against.
"""

from repro.core.invalidator.analysis import IndependenceChecker, Verdict, VerdictKind
from repro.core.invalidator.generator import InvalidationMessageGenerator
from repro.core.invalidator.grouping import (
    GroupedChecker,
    IndexableConjunct,
    TypeAnalysis,
)
from repro.core.invalidator.infomgmt import InformationManager
from repro.core.invalidator.invalidator import (
    InvalidationReport,
    Invalidator,
    MatViewInvalidator,
    TriggerInvalidator,
)
from repro.core.invalidator.policies import InvalidationPolicy, PolicyEngine
from repro.core.invalidator.predindex import PredicateIndex, ProbeResult
from repro.core.invalidator.polling import PollingQueryGenerator
from repro.core.invalidator.registration import (
    QueryInstance,
    QueryType,
    QueryTypeRegistry,
    RegistrationModule,
    RegistryListener,
)
from repro.core.invalidator.safety import (
    RULE_VERDICT_FLOORS,
    SafetyClassification,
    SafetyEnforcer,
    SafetyVerdict,
    classify_findings,
    classify_template,
)
from repro.core.invalidator.scheduler import InvalidationScheduler
from repro.core.invalidator.updates import UpdateProcessor

__all__ = [
    "GroupedChecker",
    "IndependenceChecker",
    "IndexableConjunct",
    "TypeAnalysis",
    "InformationManager",
    "InvalidationMessageGenerator",
    "InvalidationPolicy",
    "InvalidationReport",
    "InvalidationScheduler",
    "Invalidator",
    "MatViewInvalidator",
    "PolicyEngine",
    "PollingQueryGenerator",
    "PredicateIndex",
    "ProbeResult",
    "QueryInstance",
    "QueryType",
    "QueryTypeRegistry",
    "RULE_VERDICT_FLOORS",
    "RegistrationModule",
    "RegistryListener",
    "SafetyClassification",
    "SafetyEnforcer",
    "SafetyVerdict",
    "TriggerInvalidator",
    "classify_findings",
    "classify_template",
    "UpdateProcessor",
    "Verdict",
    "VerdictKind",
]
