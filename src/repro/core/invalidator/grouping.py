"""Type-level grouped independence checking (paper §4.1.2).

*"Since the number of query types and instances to be maintained can be
large, instead of treating each query instance individually, the
invalidator finds the related instances and process them as a group."*

The plain :class:`~repro.core.invalidator.analysis.IndependenceChecker`
re-derives the alias map and re-classifies every WHERE conjunct for every
(instance, update) pair.  All of that structure is a property of the
*query type*: instances differ only in their parameter bindings.  This
module performs the structural analysis once per type
(:class:`TypeAnalysis`) and reduces the per-instance work to binding
parameters into pre-classified conjunct templates.

:class:`GroupedChecker` produces verdicts identical to the per-instance
checker (tested property), at a fraction of the cost when many instances
share a type — the common case for servlet-generated queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import DatabaseError, ReproError
from repro.sql import ast
from repro.sql.analysis import all_conditions, alias_map, conjoin, has_left_join
from repro.sql.params import Value, bind_expression
from repro.sql.printer import to_sql
from repro.db.expr import Scope, evaluate
from repro.db.log import UpdateRecord
from repro.core.invalidator.analysis import (
    IndependenceChecker,
    Verdict,
    VerdictKind,
    _ValueSubstituter,
)
from repro.core.invalidator.registration import QueryInstance, QueryType


@dataclass(frozen=True)
class IndexableConjunct:
    """One local conjunct template the predicate index can turn into a
    probe structure.

    Kinds (``column`` is the tuple column the probe reads):

    * ``"eq"`` — ``column = <value>``; value side is column-free.
    * ``"in"`` — ``column IN (<values>)`` (non-negated).
    * ``"range"`` — ``column <op> <value>`` for ``< <= > >=``, or
      ``column BETWEEN <low> AND <high>`` (non-negated).  ``op`` is
      normalized so the column sits on the left; for BETWEEN it is None.
    * ``"isnull"`` — ``column IS [NOT] NULL``.

    Soundness requires that the grouped checker could itself evaluate the
    conjunct against a changed tuple: the column reference is either
    unqualified (single-binding queries) or qualified by the *binding*
    name — never by a base-table name hidden behind an alias, which the
    checker's scope cannot resolve.
    """

    kind: str
    column: str
    template: ast.Expr
    op: Optional[ast.BinaryOp] = None
    negated: bool = False


#: Preference order when one instance offers several indexable conjuncts:
#: equality prunes hardest, IS NULL barely at all.
_INDEX_KIND_RANK = {"eq": 0, "in": 1, "range": 2, "isnull": 3}


@dataclass
class BindingAnalysis:
    """Pre-classified conjunct templates for one table occurrence."""

    binding: str
    base_table: str
    #: Conjuncts referencing only this binding (parameters unbound).
    local_templates: List[ast.Expr] = field(default_factory=list)
    #: Conjuncts also referencing other bindings.
    residual_templates: List[ast.Expr] = field(default_factory=list)
    #: The subset of ``local_templates`` with an index-probe shape,
    #: best-pruning kinds first (see :class:`IndexableConjunct`).
    indexable_templates: List[IndexableConjunct] = field(default_factory=list)


@dataclass
class TypeAnalysis:
    """The once-per-type structural decomposition."""

    aliases: Dict[str, str]
    has_left_join: bool
    constant_templates: List[ast.Expr]
    by_binding: Dict[str, BindingAnalysis]
    #: All referenced tables, including via subqueries and UNION parts.
    all_tables: frozenset = frozenset()
    #: Compound (UNION) templates get only table-level treatment.
    is_union: bool = False

    @classmethod
    def of(cls, query_type: QueryType) -> "TypeAnalysis":
        from repro.sql.analysis import referenced_tables

        template = query_type.template
        all_tables = frozenset(referenced_tables(template))
        if isinstance(template, ast.Union):
            return cls(
                aliases={},
                has_left_join=False,
                constant_templates=[],
                by_binding={},
                all_tables=all_tables,
                is_union=True,
            )
        aliases = alias_map(template)
        conditions = all_conditions(template)
        single_binding = len(aliases) == 1
        constant_templates: List[ast.Expr] = []
        by_binding = {
            binding: BindingAnalysis(binding, base_table)
            for binding, base_table in aliases.items()
        }
        for condition in conditions:
            referenced: Set[Optional[str]] = set()
            for node in ast.walk(condition):
                if isinstance(node, ast.ColumnRef):
                    referenced.add(node.table.lower() if node.table else None)
            if not referenced:
                constant_templates.append(condition)
                continue
            for binding, analysis in by_binding.items():
                placement = cls._placement(
                    referenced, binding, analysis.base_table, single_binding
                )
                if placement == "local":
                    analysis.local_templates.append(condition)
                elif placement == "residual":
                    analysis.residual_templates.append(condition)
        for analysis in by_binding.values():
            indexable = [
                found
                for condition in analysis.local_templates
                for found in [cls._indexable(condition, analysis.binding)]
                if found is not None
            ]
            indexable.sort(key=lambda c: _INDEX_KIND_RANK[c.kind])
            analysis.indexable_templates = indexable
        return cls(
            aliases=aliases,
            has_left_join=has_left_join(template),
            constant_templates=constant_templates,
            by_binding=by_binding,
            all_tables=all_tables,
        )

    @classmethod
    def _indexable(
        cls, condition: ast.Expr, binding: str
    ) -> Optional[IndexableConjunct]:
        """Classify one local conjunct template for the predicate index,
        or return None when it has no probe-friendly shape."""
        if isinstance(condition, ast.Binary) and condition.op in ast.COMPARISONS:
            if condition.op is ast.BinaryOp.NE:
                return None  # "everything but one value" prunes nothing
            column = cls._probe_column(condition.left, binding)
            if column is not None and cls._column_free(condition.right):
                op = condition.op
            else:
                column = cls._probe_column(condition.right, binding)
                if column is None or not cls._column_free(condition.left):
                    return None
                op = ast.FLIPPED[condition.op]
            kind = "eq" if op is ast.BinaryOp.EQ else "range"
            return IndexableConjunct(kind, column, condition, op=op)
        if isinstance(condition, ast.Between) and not condition.negated:
            column = cls._probe_column(condition.expr, binding)
            if (
                column is not None
                and cls._column_free(condition.low)
                and cls._column_free(condition.high)
            ):
                return IndexableConjunct("range", column, condition)
            return None
        if isinstance(condition, ast.InList) and not condition.negated:
            column = cls._probe_column(condition.expr, binding)
            if column is not None and all(
                cls._column_free(item) for item in condition.items
            ):
                return IndexableConjunct("in", column, condition)
            return None
        if isinstance(condition, ast.IsNull):
            column = cls._probe_column(condition.expr, binding)
            if column is not None:
                return IndexableConjunct(
                    "isnull", column, condition, negated=condition.negated
                )
        return None

    @staticmethod
    def _probe_column(expr: ast.Expr, binding: str) -> Optional[str]:
        """Lower-case column name when ``expr`` is a plain reference the
        checker's tuple scope could resolve (unqualified, or qualified by
        the binding name — not by an aliased-away base table)."""
        if not isinstance(expr, ast.ColumnRef):
            return None
        if expr.table is not None and expr.table.lower() != binding:
            return None
        return expr.column.lower()

    @staticmethod
    def _column_free(expr: ast.Expr) -> bool:
        """True when ``expr`` references no columns (and no subqueries),
        so binding the instance's parameters makes it a constant."""
        return not any(
            isinstance(
                node, (ast.ColumnRef, ast.Exists, ast.InSelect, ast.ScalarSubquery)
            )
            for node in ast.walk(expr)
        )

    @staticmethod
    def _placement(
        referenced: Set[Optional[str]],
        binding: str,
        base_table: str,
        single_binding: bool,
    ) -> str:
        if None in referenced and not single_binding:
            return "residual"
        qualified = {name for name in referenced if name is not None}
        if qualified <= {binding, base_table}:
            return "local"
        return "residual"


class GroupedChecker:
    """Independence checking with per-type analysis caching.

    Drop-in alternative to :class:`IndependenceChecker` for instances that
    carry their :class:`QueryType`.  Analyses are cached by type id for
    the checker's lifetime (types are immutable once registered).
    """

    def __init__(self) -> None:
        self._analyses: Dict[int, TypeAnalysis] = {}
        # Per-instance bound conditions: an instance's bindings never
        # change, so binding parameters into the templates happens once.
        self._bound: Dict[Tuple[int, str], Tuple[list, list]] = {}
        self.analyses_computed = 0
        self.checks_performed = 0

    def analysis_for(self, query_type: QueryType) -> TypeAnalysis:
        analysis = self._analyses.get(query_type.type_id)
        if analysis is None:
            analysis = TypeAnalysis.of(query_type)
            self._analyses[query_type.type_id] = analysis
            self.analyses_computed += 1
        return analysis

    def check_instance(self, instance: QueryInstance, record: UpdateRecord) -> Verdict:
        """Classify one update against one instance via its type analysis."""
        self.checks_performed += 1
        analysis = self.analysis_for(instance.query_type)
        if record.table not in analysis.all_tables:
            return Verdict(VerdictKind.UNAFFECTED, reason="table not referenced")
        if analysis.is_union:
            return Verdict(VerdictKind.AFFECTED, reason="union: conservative")
        if record.table not in set(analysis.aliases.values()):
            return Verdict(
                VerdictKind.AFFECTED, reason="referenced via subquery: conservative"
            )
        if analysis.has_left_join:
            return Verdict(VerdictKind.AFFECTED, reason="left join: conservative")

        bindings = instance.bindings
        # Constant conditions apply query-wide: a provably false one means
        # the query is always empty, hence unaffected by anything.
        for template in analysis.constant_templates:
            value = self._evaluate_constant(template, bindings)
            if value is False:
                return Verdict(VerdictKind.UNAFFECTED, reason="constant-false condition")

        tuple_values = record.as_dict()
        overall: Optional[Verdict] = None
        for binding, binding_analysis in analysis.by_binding.items():
            if binding_analysis.base_table != record.table:
                continue
            locals_bound, residuals_bound = self._bound_conditions(
                instance, binding_analysis
            )
            verdict = self._check_binding(
                analysis, binding_analysis, locals_bound, residuals_bound, tuple_values
            )
            overall = IndependenceChecker._combine(overall, verdict)
            if overall.kind is VerdictKind.AFFECTED:
                return overall
        return overall or Verdict(VerdictKind.UNAFFECTED)

    def _bound_conditions(
        self, instance: QueryInstance, binding_analysis: BindingAnalysis
    ) -> Tuple[list, list]:
        """Bind the instance's parameters into the templates, memoized."""
        key = (instance.instance_id, binding_analysis.binding)
        cached = self._bound.get(key)
        if cached is not None:
            return cached
        try:
            locals_bound = [
                bind_expression(template, instance.bindings)
                for template in binding_analysis.local_templates
            ]
            residuals_bound = [
                bind_expression(template, instance.bindings)
                for template in binding_analysis.residual_templates
            ]
        except (DatabaseError, ReproError):
            locals_bound, residuals_bound = [], None  # None: unbindable
        self._bound[key] = (locals_bound, residuals_bound)
        return locals_bound, residuals_bound

    # -- internals --------------------------------------------------------------

    def _evaluate_constant(
        self, template: ast.Expr, bindings: Tuple[Value, ...]
    ) -> Optional[bool]:
        try:
            bound = bind_expression(template, bindings)
            value = evaluate(bound, (), Scope([]))
        except (DatabaseError, ReproError):
            return None
        if value is True:
            return True
        if value is False:
            return False
        return None

    def _check_binding(
        self,
        analysis: TypeAnalysis,
        binding_analysis: BindingAnalysis,
        locals_bound: list,
        residuals_bound: Optional[list],
        tuple_values: Dict[str, Value],
    ) -> Verdict:
        scope = Scope([(binding_analysis.binding, list(tuple_values.keys()))])
        row = tuple(tuple_values.values())
        for condition in locals_bound:
            try:
                value = evaluate(condition, row, scope)
            except (DatabaseError, ReproError):
                continue  # cannot evaluate: do not use it to rule out
            if value is not True:
                return Verdict(
                    VerdictKind.UNAFFECTED,
                    reason=f"tuple fails local condition {to_sql(condition)}",
                )

        other_bindings = [
            name for name in analysis.aliases if name != binding_analysis.binding
        ]
        if not other_bindings:
            return Verdict(VerdictKind.AFFECTED, reason="single-table query")

        if residuals_bound is None:
            return Verdict(VerdictKind.AFFECTED, reason="unbindable residual")
        substituter = _ValueSubstituter(
            binding_analysis.binding, tuple_values, binding_analysis.base_table
        )
        substituted: List[ast.Expr] = []
        for bound in residuals_bound:
            rewritten = substituter.rewrite(bound)
            if substituter.failed:
                return Verdict(VerdictKind.AFFECTED, reason="unsubstitutable residual")
            for node in ast.walk(rewritten):
                if isinstance(node, ast.ColumnRef) and node.table is not None:
                    if node.table.lower() == binding_analysis.binding:
                        return Verdict(
                            VerdictKind.AFFECTED,
                            reason="unsubstitutable residual",
                        )
            substituted.append(rewritten)
        sources = tuple(
            ast.TableRef(
                analysis.aliases[name],
                alias=name if name != analysis.aliases[name] else None,
            )
            for name in sorted(analysis.aliases)
            if name != binding_analysis.binding
        )
        polling = ast.Select(
            items=(ast.SelectItem(ast.FunctionCall("COUNT", (ast.Star(),))),),
            sources=sources,
            where=conjoin(substituted),
        )
        return Verdict(VerdictKind.NEEDS_POLLING, polling_query=polling)
