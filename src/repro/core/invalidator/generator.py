"""Invalidation message generation (paper §4.2.4).

Once the URLs to invalidate are identified, the generator creates the
``Cache-Control: eject`` HTTP messages — "simply an HTTP header sent as
part of a normal client request", after NetCache 4.0 — and delivers them
to every cache holding the page.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from repro.web.cache import WebCache
from repro.web.http import HttpRequest, make_eject_request


@dataclass
class EjectOutcome:
    """Delivery record for one invalidation message."""

    url_key: str
    caches_notified: int
    pages_removed: int
    delivery_failures: int = 0


class InvalidationMessageGenerator:
    """Builds and delivers eject messages to a set of caches.

    Delivery is best-effort per cache: an unreachable or failing cache
    (its ``handle_message`` raises) must not prevent ejects from reaching
    the healthy ones.  Failures are counted — a failed eject means that
    cache may still serve the stale page until it recovers, which the
    operator needs to know.
    """

    def __init__(self, caches: Sequence[WebCache]) -> None:
        self.caches: List[WebCache] = list(caches)
        self.messages_sent = 0
        self.pages_removed = 0
        self.delivery_failures = 0

    def add_cache(self, cache: WebCache) -> None:
        self.caches.append(cache)

    def build_message(self, url_key: str) -> HttpRequest:
        return make_eject_request(url_key)

    def invalidate(self, url_keys: Iterable[str]) -> List[EjectOutcome]:
        """Send one eject message per URL to every cache."""
        outcomes: List[EjectOutcome] = []
        for url_key in url_keys:
            message = self.build_message(url_key)
            removed = 0
            failures = 0
            for cache in self.caches:
                self.messages_sent += 1
                try:
                    if cache.handle_message(message, url_key):
                        removed += 1
                except Exception:
                    failures += 1
            self.pages_removed += removed
            self.delivery_failures += failures
            outcomes.append(
                EjectOutcome(
                    url_key=url_key,
                    caches_notified=len(self.caches),
                    pages_removed=removed,
                    delivery_failures=failures,
                )
            )
        return outcomes
