"""The independence check: does an update affect a query instance?

This implements the decision procedure of paper Example 4.1.  Given a
bound SELECT and one changed tuple (an insertion into or deletion from
relation R), classify:

* **UNAFFECTED** — the tuple provably cannot satisfy the query's
  conditions on R, so the cached pages built from this query stay fresh;
* **AFFECTED** — the tuple satisfies all conditions the query places on R
  and the query reads no other table, so the result has changed;
* **NEEDS_POLLING** — the tuple satisfies R's local conditions but the
  query joins R with other tables; a *polling query* over the remaining
  tables (with R's columns substituted by the tuple's values) decides.

The checker is conservative by construction: whenever a condition cannot
be evaluated or attributed, it errs towards AFFECTED/NEEDS_POLLING.
Over-invalidation costs a cache miss; under-invalidation serves stale
data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import DatabaseError, ReproError
from repro.sql import ast
from repro.sql.analysis import all_conditions, alias_map, conjoin, has_left_join
from repro.sql.printer import to_sql
from repro.db.expr import Scope, evaluate
from repro.db.log import UpdateRecord
from repro.db.types import Value

# Historical alias: the helper moved to repro.sql.analysis once the
# grouped checker needed it too.
_has_left_join = has_left_join


class VerdictKind(enum.Enum):
    UNAFFECTED = "unaffected"
    AFFECTED = "affected"
    NEEDS_POLLING = "needs-polling"


@dataclass
class Verdict:
    """Outcome of the independence check for one (instance, update) pair."""

    kind: VerdictKind
    polling_query: Optional[ast.Select] = None
    reason: str = ""

    @property
    def polling_sql(self) -> Optional[str]:
        if self.polling_query is None:
            return None
        return to_sql(self.polling_query)


class _ValueSubstituter:
    """Rewrites references to one binding's columns into literals.

    Matching is by the *binding* name only: in a self-join (``car a,
    car b``) a reference qualified by the base-table name belongs to the
    unaliased occurrence, never to an aliased one, so substituting it with
    another role's tuple values would corrupt the polling query.
    """

    def __init__(self, binding: str, values: Dict[str, Value], base_table: str) -> None:
        self.binding = binding
        self.base_table = base_table
        self.values = values
        self.failed = False

    def rewrite(self, node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.ColumnRef):
            table = node.table.lower() if node.table else None
            if table == self.binding:
                column = node.column.lower()
                if column not in self.values:
                    self.failed = True
                    return node
                return ast.Literal(self.values[column])
            return node
        if isinstance(node, ast.Binary):
            return ast.Binary(node.op, self.rewrite(node.left), self.rewrite(node.right))
        if isinstance(node, ast.Unary):
            return ast.Unary(node.op, self.rewrite(node.operand))
        if isinstance(node, ast.Between):
            return ast.Between(
                self.rewrite(node.expr),
                self.rewrite(node.low),
                self.rewrite(node.high),
                node.negated,
            )
        if isinstance(node, ast.InList):
            return ast.InList(
                self.rewrite(node.expr),
                tuple(self.rewrite(item) for item in node.items),
                node.negated,
            )
        if isinstance(node, ast.IsNull):
            return ast.IsNull(self.rewrite(node.expr), node.negated)
        if isinstance(node, ast.FunctionCall):
            return ast.FunctionCall(
                node.name, tuple(self.rewrite(arg) for arg in node.args), node.distinct
            )
        if isinstance(node, ast.Case):
            whens = tuple(
                (self.rewrite(cond), self.rewrite(value)) for cond, value in node.whens
            )
            default = self.rewrite(node.default) if node.default is not None else None
            return ast.Case(whens, default)
        return node


class IndependenceChecker:
    """Stateless decision procedure over (SELECT, changed tuple) pairs."""

    def check(self, stmt, record: UpdateRecord) -> Verdict:
        """Classify one update against one bound query instance."""
        from repro.sql.analysis import referenced_tables

        if isinstance(stmt, ast.Union):
            # Compound queries: the combinator hides which part a tuple
            # lands in; stay conservative per referenced table.
            if record.table in referenced_tables(stmt):
                return Verdict(VerdictKind.AFFECTED, reason="union: conservative")
            return Verdict(VerdictKind.UNAFFECTED, reason="table not referenced")
        aliases = alias_map(stmt)
        outer_tables = set(aliases.values())
        all_tables = referenced_tables(stmt)  # includes subquery tables
        if record.table not in all_tables:
            return Verdict(VerdictKind.UNAFFECTED, reason="table not referenced")
        if record.table not in outer_tables:
            # Referenced only inside a subquery: subquery results can
            # flip without any outer-table change we could reason about.
            return Verdict(
                VerdictKind.AFFECTED, reason="referenced via subquery: conservative"
            )
        if _has_left_join(stmt):
            # A LEFT JOIN makes absence of matches observable; local
            # reasoning on one side is unsound, so stay conservative.
            return Verdict(VerdictKind.AFFECTED, reason="left join: conservative")

        bindings_of_table = [
            binding for binding, table in aliases.items() if table == record.table
        ]
        conditions = all_conditions(stmt)
        tuple_values = record.as_dict()

        overall: Optional[Verdict] = None
        for binding in bindings_of_table:
            verdict = self._check_binding(
                stmt, binding, aliases, conditions, tuple_values, record
            )
            overall = self._combine(overall, verdict)
            if overall.kind is VerdictKind.AFFECTED:
                return overall
        return overall or Verdict(VerdictKind.UNAFFECTED)

    # -- per-binding analysis ---------------------------------------------------

    def _check_binding(
        self,
        stmt: ast.Select,
        binding: str,
        aliases: Dict[str, str],
        conditions: Sequence[ast.Expr],
        tuple_values: Dict[str, Value],
        record: UpdateRecord,
    ) -> Verdict:
        single_binding = len(aliases) == 1
        local: List[ast.Expr] = []
        residual: List[ast.Expr] = []
        for condition in conditions:
            placement = self._classify(condition, binding, aliases, single_binding)
            if placement == "local":
                local.append(condition)
            elif placement == "constant":
                verdict = self._evaluate_constant(condition)
                if verdict is False:
                    return Verdict(
                        VerdictKind.UNAFFECTED, reason="constant-false condition"
                    )
                # TRUE/unknown constants don't constrain the tuple.
            else:
                residual.append(condition)

        # Evaluate the local conditions directly on the changed tuple.
        scope = Scope([(binding, list(tuple_values.keys()))])
        row = tuple(tuple_values.values())
        for condition in local:
            try:
                value = evaluate(condition, row, scope)
            except (DatabaseError, ReproError):
                continue  # cannot evaluate: do not use it to rule out
            if value is not True:
                # FALSE or NULL: the tuple cannot satisfy the query's
                # conditions on this occurrence of R.
                return Verdict(
                    VerdictKind.UNAFFECTED,
                    reason=f"tuple fails local condition {to_sql(condition)}",
                )

        other_bindings = [name for name in aliases if name != binding]
        if not other_bindings:
            return Verdict(VerdictKind.AFFECTED, reason="single-table query")
        if not residual:
            # The tuple joins unconditionally with the other tables; any
            # non-empty other table makes the change visible.  Checking
            # emptiness requires a (trivial) polling query.
            residual = []
        polling = self._build_polling_query(
            stmt, binding, aliases, residual, tuple_values, record
        )
        if polling is None:
            return Verdict(VerdictKind.AFFECTED, reason="unsubstitutable residual")
        return Verdict(VerdictKind.NEEDS_POLLING, polling_query=polling)

    def _classify(
        self,
        condition: ast.Expr,
        binding: str,
        aliases: Dict[str, str],
        single_binding: bool,
    ) -> str:
        """'local' (only this binding), 'constant' (no columns), 'residual'."""
        base_table = aliases[binding]
        referenced: Set[Optional[str]] = set()
        for node in ast.walk(condition):
            if isinstance(node, ast.ColumnRef):
                referenced.add(node.table.lower() if node.table else None)
        if not referenced:
            return "constant"
        if None in referenced and not single_binding:
            return "residual"  # ambiguous without a schema: be conservative
        qualified = {name for name in referenced if name is not None}
        if qualified <= {binding, base_table}:
            return "local"
        return "residual"

    def _evaluate_constant(self, condition: ast.Expr) -> Optional[bool]:
        try:
            value = evaluate(condition, (), Scope([]))
        except (DatabaseError, ReproError):
            return None
        if value is True:
            return True
        if value is None:
            return None
        return bool(value) if isinstance(value, bool) else None

    # -- polling-query construction ------------------------------------------------

    def _build_polling_query(
        self,
        stmt: ast.Select,
        binding: str,
        aliases: Dict[str, str],
        residual: Sequence[ast.Expr],
        tuple_values: Dict[str, Value],
        record: UpdateRecord,
    ) -> Optional[ast.Select]:
        """Example 4.1's PollQuery: the remaining tables, with the changed
        tuple's values substituted for R's columns."""
        substituter = _ValueSubstituter(binding, tuple_values, aliases[binding])
        substituted: List[ast.Expr] = []
        for condition in residual:
            rewritten = substituter.rewrite(condition)
            if substituter.failed:
                return None
            # Leftover qualified references to the substituted binding
            # (e.g. inside a subquery the substituter does not descend
            # into) would make the polling query unexecutable or wrong.
            for node in ast.walk(rewritten):
                if isinstance(node, ast.ColumnRef) and node.table is not None:
                    if node.table.lower() == binding:
                        return None
            substituted.append(rewritten)
        sources = tuple(
            ast.TableRef(aliases[name], alias=name if name != aliases[name] else None)
            for name in sorted(aliases)
            if name != binding
        )
        return ast.Select(
            items=(ast.SelectItem(ast.FunctionCall("COUNT", (ast.Star(),))),),
            sources=sources,
            where=conjoin(substituted),
        )

    @staticmethod
    def _combine(current: Optional[Verdict], new: Verdict) -> Verdict:
        if current is None:
            return new
        order = {
            VerdictKind.UNAFFECTED: 0,
            VerdictKind.NEEDS_POLLING: 1,
            VerdictKind.AFFECTED: 2,
        }
        return new if order[new.kind] > order[current.kind] else current
