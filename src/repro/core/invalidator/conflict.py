"""Static (query-template × update-class) conflict matrix.

Every runtime layer below this one — the §4 independence checker, the
predicate index, the version-key counters — decides freshness per
(instance, update) pair *at runtime*.  A large share of those pairs is
decidable once, statically: if the conjunctive conditions a query
template places on table R cannot be satisfied together with the
predicate class of an update, no binding of either can ever conflict.

:class:`ConflictMatrix` holds that analysis.  Updates are grouped into
:class:`UpdateClass` rows — per-table defaults (``car/insert``,
``car/delete``: every change of that kind) plus optionally declared
refinements (``car/insert WHERE price >= 30000``).  For each (query
type, update class) cell it asks the satisfiability engine
(:mod:`repro.sql.satisfiability`) for a three-valued verdict:

``DISJOINT``
    proved: no row can satisfy both predicates.  The verdict carries a
    certificate, re-validated by the independent checker before it is
    ever cached — a proof that fails verification degrades to UNKNOWN.
``MAY_OVERLAP``
    the recognized regions genuinely intersect;
``UNKNOWN``
    the analysis was incomplete (parameters on the decisive column,
    disjunctions, guards).  Treated exactly like MAY_OVERLAP.

Because templates are fully parameterized, most template-level cells
resolve only through nullness or parameter unification; the workhorse is
the *instance-level refinement*: with an instance's bindings substituted
the same conjuncts become constant intervals, and the cell is re-decided
per instance (cached, invalidated on drop).

Runtime contract — *eject parity*, not just staleness-safety: a skip is
only served when the runtime checker would itself have returned
UNAFFECTED for the pair, so enabling the matrix never changes which
pages get ejected.  This is enforced by construction:

* extraction uses exactly the conjuncts the grouped checker evaluates
  locally (same binding scope — base-table qualifiers under an alias
  stay opaque);
* types under POLL_ONLY / ALWAYS_EJECT enforcement, unions, LEFT JOINs,
  subquery-referenced tables and unbindable instances are ineligible
  (the checker is conservative there, so must we be);
* a skip requires every column the certificate cites to be present in
  the changed tuple (the checker skips unevaluable conjuncts, so a
  proof resting on an absent column could diverge);
* a record only joins a *constrained* class when its constraint atoms
  evaluate strictly true on the tuple — uncertain membership means no
  skip.

Consistency: the matrix implements the
:class:`~repro.core.invalidator.registration.RegistryListener` protocol.
Attach it to a registry and instance proofs follow discovery and
eviction; checkpoint restore replays registration, after which
:meth:`compare_cells` recomputes every persisted cell and reports any
verdict drift (a stale matrix can never survive a code change).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import RegistrationError, ReproError
from repro.db.log import UpdateRecord
from repro.sql import ast
from repro.sql.parser import parse_expression
from repro.sql.satisfiability import (
    Atom,
    Decision,
    Extraction,
    Verdict,
    _compare,
    check_disjoint,
    extract,
    scoped_resolver,
    verify_certificate,
)
from repro.core.invalidator.grouping import TypeAnalysis
from repro.core.invalidator.registration import (
    QueryInstance,
    QueryType,
    QueryTypeRegistry,
    RegistryListener,
)
from repro.core.invalidator.safety import SafetyVerdict

#: Change kinds an update class may be restricted to.
_KINDS = ("insert", "delete")


@dataclass(frozen=True)
class UpdateClass:
    """One update predicate class: a named, conjunctive region of
    changes to one table, optionally restricted to one change kind."""

    name: str
    table: str
    kind: Optional[str]  # "insert" | "delete" | None (both)
    where: str  # declared constraint SQL ("" = unconstrained)
    atoms: Tuple[Atom, ...]
    default: bool = False

    def matches(self, record: UpdateRecord) -> bool:
        """Strict membership: kind matches and every constraint atom
        evaluates true on the tuple.  Uncertain (NULL, missing column)
        means *not* a member — the sound direction, since membership is
        what licenses skipping the runtime check."""
        if self.kind is not None and record.kind.value != self.kind:
            return False
        if not self.atoms:
            return True
        values = record.as_dict()
        return all(_atom_true(atom, values) for atom in self.atoms)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "table": self.table,
            "kind": self.kind,
            "where": self.where,
            "default": self.default,
        }


def _atom_true(atom: Atom, values: Dict[str, object]) -> bool:
    if atom.op == "false" or atom.op == "eqparam":
        return False
    if atom.column not in values:
        return False
    value = values[atom.column]
    if atom.op == "isnull":
        return value is None
    if atom.op == "notnull":
        return value is not None
    if value is None:
        return False  # three-valued logic: NULL satisfies no comparison
    if atom.op == "in":
        members = atom.value if isinstance(atom.value, tuple) else ()
        return any(_compare(value, member) == 0 for member in members)  # type: ignore[arg-type]
    if isinstance(atom.value, tuple):
        return False  # malformed: list payload on a scalar operator
    order = _compare(value, atom.value)  # type: ignore[arg-type]
    if order is None:
        return False
    if atom.op == "eq":
        return order == 0
    if atom.op == "lt":
        return order < 0
    if atom.op == "le":
        return order <= 0
    if atom.op == "gt":
        return order > 0
    if atom.op == "ge":
        return order >= 0
    return False


@dataclass
class Cell:
    """One decided (query type, update class) template-level cell."""

    verdict: Verdict
    reason: str
    #: Per-binding certificates backing a DISJOINT verdict.
    certificates: List[Dict[str, object]] = field(default_factory=list)
    #: Columns a changed tuple must carry for a skip to be served.
    columns_required: FrozenSet[str] = frozenset()

    def to_dict(self) -> Dict[str, object]:
        return {
            "verdict": self.verdict.value,
            "reason": self.reason,
            "certificates": self.certificates,
        }


@dataclass
class _InstanceProof:
    """An instance-level DISJOINT refinement of a non-disjoint cell."""

    certificates: List[Dict[str, object]]
    columns_required: FrozenSet[str]


def _split_conjuncts(expr: Optional[ast.Expr]) -> List[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.Binary) and expr.op is ast.BinaryOp.AND:
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


class ConflictMatrix(RegistryListener):
    """Registration-time disjointness classification, queried per pair.

    Args:
        analysis_for: optional shared ``QueryType → TypeAnalysis``
            provider (e.g. ``GroupedChecker.analysis_for``) so type
            decompositions are computed once per process.
        columns_of: optional ``table → column names`` schema accessor.
            Required only for :meth:`index_drop` — a predicate-index
            drop must hold for *every* future record, which is only
            provable when the cited columns are known to be part of the
            table's full row image.
    """

    def __init__(
        self,
        analysis_for: Optional[Callable[[QueryType], TypeAnalysis]] = None,
        columns_of: Optional[Callable[[str], Optional[List[str]]]] = None,
    ) -> None:
        self._lock = threading.RLock()
        self._analysis_for = analysis_for or self._own_analysis
        self._columns_of = columns_of
        self._analyses: Dict[int, TypeAnalysis] = {}
        self._classes: Dict[str, UpdateClass] = {}
        self._classes_by_table: Dict[str, Dict[str, UpdateClass]] = {}
        self._cells: Dict[Tuple[int, str], Cell] = {}
        #: class name → instance_id → proof (None: tried, no proof).
        self._instance_proofs: Dict[str, Dict[int, Optional[_InstanceProof]]] = {}
        #: instance_id → class-name tuple → skip candidates, hottest
        #: cache in the runtime path: one cycle asks the same
        #: (instance, class set) question once per update record.
        self._skip_memo: Dict[
            int, Dict[Tuple[str, ...], List[Tuple[str, FrozenSet[str]]]]
        ] = {}
        self._instance_extractions: Dict[int, Optional[Dict[str, Extraction]]] = {}
        self._template_extractions: Dict[int, Dict[str, Extraction]] = {}
        self._constant_false: Set[int] = set()
        self._types_seen: Dict[int, QueryType] = {}
        # Proof/bookkeeping counters (consumer-side skips are counted by
        # the consumers themselves).
        self.cells_computed = 0
        self.template_disjoint = 0
        self.instance_proofs_found = 0
        self.certificate_failures = 0

    # -- registry listener protocol -------------------------------------------

    def attach_to(self, registry: QueryTypeRegistry) -> "ConflictMatrix":
        """Subscribe to ``registry`` and absorb its existing instances."""
        registry.add_listener(self)
        for instance in registry.instances():
            self.instance_registered(instance)
        return self

    def instance_registered(self, instance: QueryInstance) -> None:
        with self._lock:
            self._types_seen[instance.query_type.type_id] = instance.query_type
            for table in instance.query_type.tables:
                self.ensure_table(table)
            # Eligibility and extractions are computed lazily on first
            # use; a constant-false instance (``WHERE 1 = 2`` bound) is
            # precomputed because it short-circuits every class.
            if self._instance_constant_false(instance):
                self._constant_false.add(instance.instance_id)

    def instance_dropped(self, instance: QueryInstance) -> None:
        with self._lock:
            iid = instance.instance_id
            self._constant_false.discard(iid)
            self._instance_extractions.pop(iid, None)
            self._skip_memo.pop(iid, None)
            for proofs in self._instance_proofs.values():
                proofs.pop(iid, None)

    # -- update classes --------------------------------------------------------

    def ensure_table(self, table: str) -> None:
        """Make sure the per-kind default classes for ``table`` exist."""
        key = table.lower()
        with self._lock:
            if key in self._classes_by_table:
                return
            self._classes_by_table[key] = {}
            for kind in _KINDS:
                name = f"{key}/{kind}"
                cls = UpdateClass(
                    name=name,
                    table=key,
                    kind=kind,
                    where="",
                    atoms=(),
                    default=True,
                )
                self._classes[name] = cls
                self._classes_by_table[key][name] = cls

    def declare_class(
        self,
        name: str,
        table: str,
        kind: Optional[str] = None,
        where: str = "",
    ) -> UpdateClass:
        """Declare a refined update class.

        The constraint must be a conjunction the satisfiability engine
        represents *exactly* (per-column constants, IN-lists, IS [NOT]
        NULL); anything lossier is rejected, because class membership is
        what licenses skipping runtime checks.
        """
        key = table.lower()
        if kind is not None and kind not in _KINDS:
            raise RegistrationError(
                f"unknown update-class kind {kind!r} (expected insert/delete)"
            )
        atoms: Tuple[Atom, ...] = ()
        if where.strip():
            try:
                constraint = parse_expression(where)
            except ReproError as exc:
                raise RegistrationError(
                    f"unparseable update-class constraint {where!r}: {exc}"
                ) from exc
            extraction = extract(
                _split_conjuncts(constraint),
                bindings=(),
                resolve=scoped_resolver(key),
            )
            if not extraction.complete or any(
                atom.op == "eqparam" for atom in extraction.atoms
            ):
                raise RegistrationError(
                    "update-class constraints must be exact conjunctions of "
                    "per-column constants, IN-lists, and IS [NOT] NULL tests: "
                    f"{where!r}"
                )
            atoms = tuple(extraction.atoms)
        with self._lock:
            self.ensure_table(key)
            existing = self._classes.get(name)
            if existing is not None:
                if (existing.table, existing.kind, existing.where) == (
                    key,
                    kind,
                    where,
                ):
                    return existing
                raise RegistrationError(f"update class {name!r} already declared")
            cls = UpdateClass(
                name=name, table=key, kind=kind, where=where, atoms=atoms
            )
            self._classes[name] = cls
            self._classes_by_table[key][name] = cls
            return cls

    def classes(self) -> List[UpdateClass]:
        with self._lock:
            return list(self._classes.values())

    def classes_for_table(self, table: str) -> List[UpdateClass]:
        with self._lock:
            self.ensure_table(table)
            return list(self._classes_by_table[table.lower()].values())

    def classes_for_record(self, record: UpdateRecord) -> List[str]:
        """Names of every class the changed tuple provably belongs to."""
        with self._lock:
            self.ensure_table(record.table)
            return [
                cls.name
                for cls in self._classes_by_table[record.table].values()
                if cls.matches(record)
            ]

    # -- cells -----------------------------------------------------------------

    def cell(self, query_type: QueryType, class_name: str) -> Cell:
        """The template-level cell for (``query_type``, class)."""
        with self._lock:
            update_class = self._classes[class_name]
            key = (query_type.type_id, class_name)
            cached = self._cells.get(key)
            if cached is None:
                cached = self._compute_cell(query_type, update_class)
                self._cells[key] = cached
                self._types_seen[query_type.type_id] = query_type
                self.cells_computed += 1
                if cached.verdict is Verdict.DISJOINT:
                    self.template_disjoint += 1
            return cached

    def _own_analysis(self, query_type: QueryType) -> TypeAnalysis:
        analysis = self._analyses.get(query_type.type_id)
        if analysis is None:
            analysis = TypeAnalysis.of(query_type)
            self._analyses[query_type.type_id] = analysis
        return analysis

    def _type_guard(self, query_type: QueryType) -> Optional[str]:
        """Reason this type is ineligible for static verdicts, or None.

        Mirrors the conservative branches of the grouped checker and the
        predicate index: wherever they refuse to prove UNAFFECTED, a
        static skip could change which pages get ejected.
        """
        safety = query_type.safety
        if safety is not None and safety.verdict not in (
            SafetyVerdict.SAFE,
            SafetyVerdict.VERSION_KEY,
        ):
            return f"safety-enforced ({safety.verdict.name})"
        analysis = self._analysis_for(query_type)
        if analysis.is_union:
            return "union: coarse analysis"
        if analysis.has_left_join:
            return "left join: null extension"
        return None

    def _bindings_for(self, query_type: QueryType, table: str) -> List[str]:
        analysis = self._analysis_for(query_type)
        return [
            binding
            for binding, base in analysis.aliases.items()
            if base == table
        ]

    def _template_extraction(
        self, query_type: QueryType, binding: str
    ) -> Extraction:
        per_binding = self._template_extractions.setdefault(
            query_type.type_id, {}
        )
        extraction = per_binding.get(binding)
        if extraction is None:
            analysis = self._analysis_for(query_type)
            extraction = extract(
                analysis.by_binding[binding].local_templates,
                bindings=None,
                resolve=scoped_resolver(binding),
            )
            per_binding[binding] = extraction
        return extraction

    def _class_extraction(self, update_class: UpdateClass) -> Extraction:
        extraction = Extraction()
        for atom in update_class.atoms:
            extraction.add(atom, None)
        return extraction

    def _compute_cell(
        self, query_type: QueryType, update_class: UpdateClass
    ) -> Cell:
        guard = self._type_guard(query_type)
        if guard is not None:
            return Cell(Verdict.UNKNOWN, guard)
        if update_class.table not in query_type.tables:
            return Cell(Verdict.UNKNOWN, "table not referenced by template")
        bindings = self._bindings_for(query_type, update_class.table)
        if not bindings:
            return Cell(Verdict.UNKNOWN, "table referenced via subquery only")
        class_side = self._class_extraction(update_class)
        decisions: List[Decision] = []
        for binding in bindings:
            extraction = self._template_extraction(query_type, binding)
            decision = check_disjoint(extraction, class_side)
            if decision.verdict is not Verdict.DISJOINT:
                return Cell(
                    decision.verdict,
                    f"{binding}: {decision.reason}" if decision.reason else "",
                )
            assert decision.certificate is not None
            errors = verify_certificate(
                decision.certificate, extraction.atoms, list(update_class.atoms)
            )
            if errors:
                self.certificate_failures += 1
                return Cell(
                    Verdict.UNKNOWN,
                    f"certificate rejected: {errors[0]}",
                )
            decisions.append(decision)
        certificates = [d.certificate for d in decisions if d.certificate]
        return Cell(
            Verdict.DISJOINT,
            "; ".join(d.reason for d in decisions if d.reason),
            certificates,
            _required_columns(certificates),
        )

    # -- instance-level refinement --------------------------------------------

    def _instance_constant_false(self, instance: QueryInstance) -> bool:
        """True when some query-wide constant condition folds to False
        for this instance's bindings — the checker then answers
        UNAFFECTED for every record, so every class is skippable."""
        if self._type_guard(instance.query_type) is not None:
            return False
        analysis = self._analysis_for(instance.query_type)
        from repro.sql.satisfiability import _fold_constant

        for template in analysis.constant_templates:
            if _fold_constant(template, instance.bindings) is False:
                return True
        return False

    def _instance_extraction(
        self, instance: QueryInstance
    ) -> Optional[Dict[str, Extraction]]:
        """Per-binding extraction with the instance's bindings folded
        in, or None when the instance is ineligible (guards fire or the
        templates do not bind — the checker is conservative there)."""
        iid = instance.instance_id
        if iid in self._instance_extractions:
            return self._instance_extractions[iid]
        result: Optional[Dict[str, Extraction]] = None
        if self._type_guard(instance.query_type) is None:
            analysis = self._analysis_for(instance.query_type)
            from repro.sql.params import bind_expression

            try:
                for binding_analysis in analysis.by_binding.values():
                    for template in binding_analysis.local_templates:
                        bind_expression(template, instance.bindings)
                    for template in binding_analysis.residual_templates:
                        bind_expression(template, instance.bindings)
            except ReproError:
                result = None  # unbindable: checker returns AFFECTED
            else:
                result = {
                    binding: extract(
                        binding_analysis.local_templates,
                        bindings=instance.bindings,
                        resolve=scoped_resolver(binding),
                    )
                    for binding, binding_analysis in analysis.by_binding.items()
                }
        self._instance_extractions[iid] = result
        return result

    def _instance_proof(
        self, instance: QueryInstance, class_name: str
    ) -> Optional[_InstanceProof]:
        proofs = self._instance_proofs.setdefault(class_name, {})
        iid = instance.instance_id
        if iid in proofs:
            return proofs[iid]
        proof = self._compute_instance_proof(instance, self._classes[class_name])
        proofs[iid] = proof
        if proof is not None:
            self.instance_proofs_found += 1
        return proof

    def _compute_instance_proof(
        self, instance: QueryInstance, update_class: UpdateClass
    ) -> Optional[_InstanceProof]:
        extractions = self._instance_extraction(instance)
        if extractions is None:
            return None
        bindings = self._bindings_for(instance.query_type, update_class.table)
        if not bindings:
            return None
        class_side = self._class_extraction(update_class)
        certificates: List[Dict[str, object]] = []
        for binding in bindings:
            extraction = extractions[binding]
            decision = check_disjoint(extraction, class_side)
            if decision.verdict is not Verdict.DISJOINT:
                return None
            assert decision.certificate is not None
            errors = verify_certificate(
                decision.certificate, extraction.atoms, list(update_class.atoms)
            )
            if errors:
                self.certificate_failures += 1
                return None
            certificates.append(decision.certificate)
        return _InstanceProof(certificates, _required_columns(certificates))

    # -- runtime queries -------------------------------------------------------

    def skip_level(
        self,
        instance: QueryInstance,
        record_columns: Set[str],
        class_names: Sequence[str],
    ) -> Optional[str]:
        """Skip justification for one (instance, changed tuple) pair.

        ``class_names`` must be the classes the tuple *provably belongs
        to* (:meth:`classes_for_record`).  Returns ``"template"`` when a
        template-level cell decides the pair, ``"instance"`` for an
        instance-level refinement, or None — serve the runtime check.

        Proof lookups are memoized per (instance, class set): cells and
        instance proofs never change once computed, so only the
        per-record column guard is re-evaluated pair by pair.
        """
        with self._lock:
            iid = instance.instance_id
            if iid in self._constant_false:
                return "instance"
            key = tuple(class_names)
            per_instance = self._skip_memo.setdefault(iid, {})
            candidates = per_instance.get(key)
            if candidates is None:
                candidates = self._skip_candidates(instance, class_names)
                per_instance[key] = candidates
            for level, required in candidates:
                if required <= record_columns:
                    return level
            return None

    def _skip_candidates(
        self, instance: QueryInstance, class_names: Sequence[str]
    ) -> List[Tuple[str, FrozenSet[str]]]:
        """Every proof that could decide (``instance``, one of these
        classes), template-level first, each with its column guard."""
        query_type = instance.query_type
        template_level: List[Tuple[str, FrozenSet[str]]] = []
        instance_level: List[Tuple[str, FrozenSet[str]]] = []
        for name in class_names:
            cell = self.cell(query_type, name)
            if (
                cell.verdict is Verdict.DISJOINT
                # Template cells hold for every binding; instances
                # still must be bindable for checker parity.
                and self._instance_extraction(instance) is not None
            ):
                template_level.append(("template", cell.columns_required))
            proof = self._instance_proof(instance, name)
            if proof is not None:
                instance_level.append(("instance", proof.columns_required))
        return template_level + instance_level

    def instance_certificates(
        self, instance: QueryInstance, class_name: str
    ) -> Optional[List[Dict[str, object]]]:
        """Certificates of the instance-level disjointness proof for
        (``instance``, class), or None when no proof exists.  Used by
        ``repro analyze`` for per-cell provenance."""
        with self._lock:
            proof = self._instance_proof(instance, class_name)
            return None if proof is None else list(proof.certificates)

    def index_drop(self, instance: QueryInstance, table: str) -> bool:
        """True when ``instance`` is provably unaffected by *any* record
        of ``table`` — the predicate index may then park it in a
        never-matching entry.

        Requires schema knowledge: the proof's cited columns must be
        part of the table's full row image (every logged record carries
        all schema columns).  Refined classes only ever narrow the
        defaults, so disjointness against both per-kind defaults covers
        every future record and stays monotone under later
        ``declare_class`` calls.
        """
        with self._lock:
            if instance.instance_id in self._constant_false:
                return True
            if self._columns_of is None:
                return False
            columns = self._columns_of(table)
            if columns is None:
                return False
            available = {column.lower() for column in columns}
            self.ensure_table(table)
            for kind in _KINDS:
                name = f"{table.lower()}/{kind}"
                cell = self.cell(instance.query_type, name)
                if (
                    cell.verdict is Verdict.DISJOINT
                    and cell.columns_required <= available
                    and self._instance_extraction(instance) is not None
                ):
                    continue
                proof = self._instance_proof(instance, name)
                if proof is not None and proof.columns_required <= available:
                    continue
                return False
            return True

    # -- checkpointing ---------------------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        """JSON-compatible dump: declared classes plus every computed
        template-level cell verdict (keyed by type signature)."""
        with self._lock:
            classes = [
                cls.to_dict() for cls in self._classes.values() if not cls.default
            ]
            cells = []
            for (type_id, class_name), cell in sorted(self._cells.items()):
                query_type = self._types_seen.get(type_id)
                if query_type is None:
                    continue
                cells.append(
                    {
                        "signature": query_type.signature,
                        "class": class_name,
                        "verdict": cell.verdict.value,
                    }
                )
            return {"classes": classes, "cells": cells}

    def restore_classes(self, state: Dict[str, object]) -> int:
        """Re-declare the snapshot's refined classes (before registry
        replay, so instance proofs see them).  Returns the count."""
        restored = 0
        for spec in state.get("classes", []):  # type: ignore[union-attr]
            if not isinstance(spec, dict):
                continue
            kind = spec.get("kind")
            self.declare_class(
                str(spec["name"]),
                str(spec["table"]),
                str(kind) if kind is not None else None,
                str(spec.get("where", "")),
            )
            restored += 1
        return restored

    def compare_cells(
        self, state: Dict[str, object], registry: QueryTypeRegistry
    ) -> Dict[str, int]:
        """Recompute every persisted cell and report drift.

        The recomputed verdict always wins — the snapshot's copy is
        never trusted (the decision procedure may have changed since the
        checkpoint).  Returns ``{"compared", "mismatches", "stale"}``;
        stale entries name types or classes that no longer exist.
        """
        types_by_signature = {
            query_type.signature: query_type for query_type in registry.types()
        }
        compared = mismatches = stale = 0
        for spec in state.get("cells", []):  # type: ignore[union-attr]
            if not isinstance(spec, dict):
                stale += 1
                continue
            query_type = types_by_signature.get(str(spec.get("signature")))
            class_name = str(spec.get("class"))
            with self._lock:
                known = class_name in self._classes
            if query_type is None or not known:
                stale += 1
                continue
            compared += 1
            recomputed = self.cell(query_type, class_name)
            if recomputed.verdict.value != spec.get("verdict"):
                mismatches += 1
        return {"compared": compared, "mismatches": mismatches, "stale": stale}

    def stats(self) -> Dict[str, object]:
        with self._lock:
            instance_proofs = sum(
                1
                for proofs in self._instance_proofs.values()
                for proof in proofs.values()
                if proof is not None
            )
            return {
                "classes": len(self._classes),
                "cells_computed": self.cells_computed,
                "template_disjoint": self.template_disjoint,
                "instance_disjoint_proofs": instance_proofs,
                "constant_false_instances": len(self._constant_false),
                "certificate_failures": self.certificate_failures,
            }


def _required_columns(
    certificates: Sequence[Dict[str, object]]
) -> FrozenSet[str]:
    """Columns a changed tuple must carry for the cited proofs to match
    what the runtime checker would conclude."""
    required: Set[str] = set()
    for certificate in certificates:
        for side in ("query_atoms", "update_atoms"):
            atoms = certificate.get(side)
            if not isinstance(atoms, list):
                continue
            for entry in atoms:
                if isinstance(entry, dict):
                    column = entry.get("column")
                    if isinstance(column, str) and column:
                        required.add(column)
    return frozenset(required)
