"""The invalidator orchestrator and the two baseline invalidators.

:class:`Invalidator` wires the paper's sub-modules into the cycle shown in
Figure 11: pull the update log into Δ tables, run the independence check
for every (live query instance, change) pair, schedule polling queries
within the budget, and send ``Cache-Control: eject`` messages for every
affected page.

:class:`TriggerInvalidator` and :class:`MatViewInvalidator` implement the
two alternatives the paper rejects (§4, first two paragraphs): DB triggers
firing synchronously inside each update, and materialized views with
change detection.  Both are functionally correct; the benchmarks show
their cost lands on the DBMS, which is the paper's argument.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.db.engine import Database
from repro.db.log import ChangeKind, UpdateRecord
from repro.db.matview import MaterializedViewManager
from repro.web.cache import WebCache
from repro.core.qiurl import QIURLMap
from repro.core.invalidator.analysis import IndependenceChecker, Verdict, VerdictKind
from repro.core.invalidator.batchpoll import BatchPollExecutor, batch_key
from repro.core.invalidator.generator import InvalidationMessageGenerator
from repro.core.invalidator.infomgmt import InformationManager
from repro.core.invalidator.policies import InvalidationPolicy, PolicyEngine
from repro.core.invalidator.registration import (
    QueryInstance,
    QueryTypeRegistry,
    RegistrationModule,
)
from repro.core.invalidator.safety import SafetyEnforcer, SafetyVerdict
from repro.core.invalidator.scheduler import InvalidationScheduler, PollCandidate
from repro.core.invalidator.updates import UpdateProcessor, dedupe_records


@dataclass
class InvalidationReport:
    """Per-cycle outcome summary."""

    records_processed: int = 0
    duplicate_records_skipped: int = 0
    #: True when the update log was truncated past the cursor: the cycle
    #: could not know what changed and flushed every watched page (the
    #: safety valve for an invalidator that fell behind a bounded log).
    updates_lost: bool = False
    pairs_checked: int = 0
    unaffected: int = 0
    affected: int = 0
    #: Of the pairs checked, how many the predicate index resolved as
    #: UNAFFECTED without invoking the independence checker.
    pairs_pruned: int = 0
    index_probes: int = 0
    probe_time_ms: float = 0.0
    polls_requested: int = 0
    polls_executed: int = 0
    polls_impacted: int = 0
    over_invalidated: int = 0
    urls_ejected: int = 0
    pages_removed: int = 0
    polling_work_units: int = 0
    #: Safety enforcement (lint verdicts): live instances whose type
    #: classified SAFE at cycle end, pages ejected by the ALWAYS_EJECT
    #: fallback, fingerprint polls for POLL_ONLY pairs, and the total
    #: lint findings across registered types.
    safe_instances: int = 0
    fallback_ejects: int = 0
    poll_only_checks: int = 0
    lint_findings: int = 0
    #: Version-key fast path (VERSION_KEY verdicts): live instances on
    #: the fast path at cycle end, counter checks performed, and pairs
    #: the counter resolved without the precise checker.
    version_key_instances: int = 0
    version_key_checks: int = 0
    polls_avoided: int = 0
    #: Set-oriented polling (this cycle): delta-join queries issued, the
    #: instances folded into them, and demultiplexed ids that matched no
    #: pending instance (always 0 unless the engine misbehaves).
    batched_queries: int = 0
    batched_instances: int = 0
    demux_misses: int = 0
    #: Static conflict analysis: pairs the registration-time matrix
    #: resolved as provably DISJOINT (no probe, no checker), and the
    #: subset decided at template level (valid for every binding).
    static_disjoint_skips: int = 0
    template_pairs_pruned: int = 0

    @property
    def poll_round_trips_saved(self) -> int:
        """Per-instance round trips this cycle's batching avoided."""
        return max(0, self.batched_instances - self.batched_queries)

    @property
    def precision_saved(self) -> int:
        """Pairs resolved without touching the cache: pure wins of the
        independence check."""
        return self.unaffected

    @property
    def checker_invocations(self) -> int:
        """Pairs that actually reached the independence checker."""
        return self.pairs_checked - self.pairs_pruned


@dataclass
class _PollTask:
    instance: QueryInstance
    verdict: Verdict


class Invalidator:
    """The CachePortal invalidator (paper §4)."""

    def __init__(
        self,
        database: Database,
        caches: Sequence[WebCache],
        qiurl_map: QIURLMap,
        policy: Optional[InvalidationPolicy] = None,
        polling_budget: Optional[int] = None,
        use_data_cache: bool = False,
        grouped_analysis: bool = True,
        predicate_index: bool = True,
        batch_polling: bool = True,
        servlet_deadline: Optional[Callable[[str], float]] = None,
        safety_enforcement: bool = True,
        version_keys: bool = True,
        conflict_matrix: bool = True,
    ) -> None:
        self.database = database
        self.registry = QueryTypeRegistry()
        self.registration = RegistrationModule(self.registry)
        # Safety verdicts (lint-derived) override the precise check for
        # query types the analyzer cannot reason about soundly.
        self.safety = SafetyEnforcer(database, enabled=safety_enforcement)
        self.registry.add_listener(self.safety)
        self.policy_engine = PolicyEngine(policy)
        self.updates = UpdateProcessor(database)
        self.checker = IndependenceChecker()
        self.grouped_analysis = grouped_analysis
        # Type-level grouped checking (§4.1.2): structural analysis done
        # once per query type, shared by all its instances.
        from repro.core.invalidator.grouping import GroupedChecker

        self.grouped_checker = GroupedChecker()
        # Static conflict matrix: (template × update-class) disjointness
        # proved once at registration; both runtime paths consult it
        # before probing.  Attached before the predicate index so its
        # listener sees each instance first (index classification may
        # ask it for whole-table drop proofs).
        from repro.core.invalidator.conflict import ConflictMatrix

        self.conflict_matrix: Optional[ConflictMatrix] = None
        if conflict_matrix:
            self.conflict_matrix = ConflictMatrix(
                analysis_for=self.grouped_checker.analysis_for,
                columns_of=self._table_columns,
            ).attach_to(self.registry)
        # Predicate index: probes replace most checker invocations; the
        # registry listener keeps it consistent with discovery/eviction.
        from repro.core.invalidator.predindex import PredicateIndex

        self.pred_index: Optional[PredicateIndex] = None
        if predicate_index:
            self.pred_index = PredicateIndex(
                analysis_for=self.grouped_checker.analysis_for,
                conflict=self.conflict_matrix,
            ).attach_to(self.registry)
        # Version-key fast path (O(1) per pair): counters prove
        # single-table instances untouched without a checker run.  Off,
        # VERSION_KEY pairs simply take the precise checker path — the
        # A/B arm with bit-identical ejects.
        from repro.core.invalidator.versionkey import VersionKeyIndex

        self.version_index: Optional[VersionKeyIndex] = None
        if version_keys:
            self.version_index = VersionKeyIndex(
                analysis_for=self.grouped_checker.analysis_for,
                stamp_source=lambda: self.updates.cursor,
            ).attach_to(self.registry)
        self.scheduler = InvalidationScheduler(polling_budget=polling_budget)
        self.infomgmt = InformationManager(
            database, self.policy_engine, use_data_cache=use_data_cache
        )
        self.polling = self.infomgmt.polling_generator()
        # Set-oriented polling: fold a cycle's may-affect checks into one
        # delta-join query per polling-query type.  The per-instance path
        # stays available as the A/B control arm (and the oracle the
        # batched verdicts are property-tested against).
        self.batch_polling = batch_polling
        self.batch_poller = BatchPollExecutor(self.infomgmt, self.polling)
        self.messages = InvalidationMessageGenerator(caches)
        self.qiurl_map = qiurl_map
        #: Resolver: servlet name → temporal sensitivity in ms (§3.1).
        #: Poll candidates inherit the *tightest* deadline among the
        #: servlets whose pages they feed.
        self.servlet_deadline = servlet_deadline
        self.cycles_run = 0
        self.last_report: Optional[InvalidationReport] = None

    # -- registration entry points --------------------------------------------------

    def register_query_type(self, template_sql: str, name: Optional[str] = None):
        """Offline registration of a known query type (§4.1.1)."""
        return self.registration.register_query_type(template_sql, name)

    def ingest_qiurl_rows(self) -> int:
        """Online discovery: pull new QI/URL rows into the registry (§4.1.2)."""
        return self.registration.scan(self.qiurl_map.read_new())

    def _table_columns(self, table: str) -> Optional[List[str]]:
        """Schema accessor for the conflict matrix's whole-table proofs."""
        from repro.errors import ReproError

        try:
            return self.database.table_columns(table)
        except ReproError:
            return None

    def _deadline_for(self, instance: QueryInstance) -> float:
        deadline = instance.query_type.deadline_ms
        if self.servlet_deadline is not None:
            for servlet in instance.servlets:
                try:
                    deadline = min(deadline, self.servlet_deadline(servlet))
                except Exception:
                    continue  # unknown servlet: keep the type default
        return deadline

    def servlet_cacheable(self, servlet) -> bool:
        """Feedback hook for the sniffer's request logger."""
        return self.policy_engine.servlet_cacheable(servlet.name)

    # -- the invalidation cycle ---------------------------------------------------------

    def run_cycle(self) -> InvalidationReport:
        """One full invalidation cycle (Figure 11, arrows (A)-(C))."""
        import time as _time

        cycle_start = _time.perf_counter()

        def elapsed_ms() -> float:
            """Time from the synchronization point to this invalidation —
            the per-type latency statistic of §4.1.1 (item 4)."""
            return 1000.0 * (_time.perf_counter() - cycle_start)

        self.cycles_run += 1
        report = InvalidationReport()
        self.ingest_qiurl_rows()
        # Fingerprint newly discovered POLL_ONLY instances before any
        # update is examined; the synchronous cycle always promotes the
        # previous baseline (its records are fully processed).
        self.safety.prepare_cycle(promote=True)
        deltas, lost = self.updates.pull_or_lose()
        if lost:
            # The bounded log wrapped past our cursor: the missed changes
            # are unknowable, so every watched page must be ejected.
            report.updates_lost = True
            if self.version_index is not None:
                # Bumps for the lost range never happened: older stamps
                # must not be vouched for again.
                self.version_index.note_truncation(self.updates.cursor)
            all_urls = sorted(
                {url for instance in self.registry.instances() for url in instance.urls}
            )
            outcomes = self.messages.invalidate(all_urls)
            report.urls_ejected = len(outcomes)
            report.pages_removed = sum(o.pages_removed for o in outcomes)
            for url in all_urls:
                self.qiurl_map.drop_url(url)
                self.registry.drop_url(url)
            self._finish_report(report)
            return report
        report.records_processed = len(deltas)
        if deltas.is_empty():
            self._finish_report(report)
            return report
        self.infomgmt.on_cycle_deltas(set(deltas.tables()))
        if self.version_index is not None:
            # Bump-before-check: every record of the batch moves its
            # counters before any (instance, record) pair is examined.
            for table in deltas.tables():
                self.version_index.observe(deltas.changes_for(table))

        urls_to_eject: Set[str] = set()
        doomed_instances: Dict[int, QueryInstance] = {}
        poll_tasks: List[_PollTask] = []

        for table in deltas.tables():
            # §4.2.1: related updates are processed as a group — identical
            # change records (same kind, same tuple) yield identical
            # verdicts for every instance, so only the first is checked.
            records, duplicates = dedupe_records(deltas.changes_for(table))
            report.duplicate_records_skipped += duplicates
            if self.conflict_matrix is not None:
                # Classify each deduped tuple into its update classes
                # once; skip_level answers per instance from the cache.
                record_classes = [
                    self.conflict_matrix.classes_for_record(record)
                    for record in records
                ]
                record_columns = [set(record.columns) for record in records]
            else:
                record_classes = record_columns = None
            if self.pred_index is not None:
                candidate_ids, instances = self._probe_candidates(
                    table, records, report, doomed_instances
                )
            else:
                candidate_ids = None
                instances = self.registry.instances_touching(table)
            for instance in instances:
                if instance.instance_id in doomed_instances:
                    continue
                stats = instance.query_type.stats
                safety_verdict = self.safety.verdict_for(instance.query_type)
                for position, record in enumerate(records):
                    report.pairs_checked += 1
                    stats.updates_seen += 1
                    if safety_verdict >= SafetyVerdict.POLL_ONLY:
                        # Enforcement replaces the precise check entirely:
                        # findings of this severity mean the analyzer's
                        # verdict cannot be trusted for this type.
                        if self._enforce_safety(
                            safety_verdict, instance, record, report, elapsed_ms
                        ):
                            urls_to_eject.update(instance.urls)
                            doomed_instances[instance.instance_id] = instance
                            break
                        continue
                    if record_classes is not None:
                        # Static conflict matrix: a registration-time
                        # DISJOINT proof answers the pair before any
                        # runtime machinery — same UNAFFECTED verdict the
                        # checker would reach, no probe, no counter.
                        level = self.conflict_matrix.skip_level(
                            instance,
                            record_columns[position],
                            record_classes[position],
                        )
                        if level is not None:
                            report.static_disjoint_skips += 1
                            if level == "template":
                                report.template_pairs_pruned += 1
                            report.unaffected += 1
                            continue
                    if (
                        safety_verdict is SafetyVerdict.VERSION_KEY
                        and self.version_index is not None
                    ):
                        # Version-key fast path: a quiet counter proves
                        # the pair UNAFFECTED in O(1); anything
                        # unprovable falls through to the index prune and
                        # the precise check.  Consulted before the probe
                        # result so the counter — not the per-record
                        # probe — is the primary resolver for this tier.
                        # The streaming workers run this same decision
                        # table.
                        report.version_key_checks += 1
                        if self.version_index.fresh(instance, record):
                            report.polls_avoided += 1
                            report.unaffected += 1
                            continue
                    if (
                        candidate_ids is not None
                        and instance.instance_id not in candidate_ids[position]
                    ):
                        # Proven UNAFFECTED by the index probe: same
                        # verdict the checker would reach, no invocation.
                        report.pairs_pruned += 1
                        report.unaffected += 1
                        continue
                    if self.grouped_analysis:
                        verdict = self.grouped_checker.check_instance(
                            instance, record
                        )
                    else:
                        verdict = self.checker.check(instance.statement, record)
                    if verdict.kind is VerdictKind.UNAFFECTED:
                        report.unaffected += 1
                        continue
                    if verdict.kind is VerdictKind.AFFECTED:
                        report.affected += 1
                        stats.record_invalidation(elapsed=elapsed_ms())
                        urls_to_eject.update(instance.urls)
                        doomed_instances[instance.instance_id] = instance
                        break
                    report.polls_requested += 1
                    poll_tasks.append(_PollTask(instance, verdict))

        # Budgeted polling (§4.2.2): what we cannot afford to check, we
        # over-invalidate.
        candidates = [
            PollCandidate(
                key=index,
                priority=task.instance.query_type.priority,
                cost=task.instance.query_type.cost,
                urls_at_stake=len(task.instance.urls),
                deadline_ms=self._deadline_for(task.instance),
                batch_key=(
                    batch_key(task.verdict.polling_query)
                    if self.batch_polling
                    else None
                ),
            )
            for index, task in enumerate(poll_tasks)
        ]
        schedule = self.scheduler.schedule(candidates)
        self.polling.begin_cycle()
        if self.batch_polling:
            self._run_batched_polls(
                schedule, poll_tasks, doomed_instances, urls_to_eject,
                report, elapsed_ms,
            )
        else:
            for candidate in schedule.to_poll:
                task = poll_tasks[candidate.key]
                if task.instance.instance_id in doomed_instances:
                    continue
                work_before = self.polling.stats.total_work_units
                impacted = self.infomgmt.poll_with_caching(
                    self.polling, task.verdict.polling_query
                )
                report.polls_executed += 1
                query_type = task.instance.query_type
                query_type.stats.polling_queries_issued += 1
                # Self-tuning cost estimate (§4.1.1 item 4): an exponential
                # moving average of measured polling work feeds the
                # scheduler's cost-budget decisions in later cycles.
                poll_work = self.polling.stats.total_work_units - work_before
                if poll_work > 0:
                    query_type.cost = 0.8 * query_type.cost + 0.2 * poll_work
                if impacted:
                    report.polls_impacted += 1
                    task.instance.query_type.stats.record_invalidation(
                        elapsed=elapsed_ms()
                    )
                    urls_to_eject.update(task.instance.urls)
                    doomed_instances[task.instance.instance_id] = task.instance
        for candidate in schedule.over_invalidate:
            task = poll_tasks[candidate.key]
            if task.instance.instance_id in doomed_instances:
                continue
            report.over_invalidated += 1
            task.instance.query_type.stats.record_invalidation(
                elapsed=elapsed_ms()
            )
            urls_to_eject.update(task.instance.urls)
            doomed_instances[task.instance.instance_id] = task.instance

        outcomes = self.messages.invalidate(sorted(urls_to_eject))
        report.urls_ejected = len(outcomes)
        report.pages_removed = sum(outcome.pages_removed for outcome in outcomes)
        report.polling_work_units = self.polling.stats.total_work_units
        for url in urls_to_eject:
            self.qiurl_map.drop_url(url)
            self.registry.drop_url(url)

        # Policy discovery runs at the end of each cycle (§4.1.4).
        self.policy_engine.discover(self.registry)
        self._finish_report(report)
        return report

    def _run_batched_polls(
        self,
        schedule,
        poll_tasks: List["_PollTask"],
        doomed_instances: Dict[int, QueryInstance],
        urls_to_eject: Set[str],
        report: InvalidationReport,
        elapsed_ms: Callable[[], float],
    ) -> None:
        """Set-oriented arm of the poll phase: one delta-join per group.

        The schedule is applied in the same order as the per-instance arm;
        tasks whose instance a batch result already doomed are skipped at
        apply time (uncounted, exactly as the sequential loop skips them),
        so eject sets and report counters line up between arms.
        """
        stats = self.polling.stats
        batched_before = (
            stats.batched_queries, stats.batched_instances, stats.demux_misses
        )
        pending = [
            (candidate.key, poll_tasks[candidate.key].verdict.polling_query)
            for candidate in schedule.to_poll
            if poll_tasks[candidate.key].instance.instance_id
            not in doomed_instances
        ]
        outcomes = self.batch_poller.execute(pending)
        for candidate in schedule.to_poll:
            task = poll_tasks[candidate.key]
            if task.instance.instance_id in doomed_instances:
                continue
            outcome = outcomes.get(candidate.key)
            if outcome is None:  # pragma: no cover - defensive
                continue
            report.polls_executed += 1
            query_type = task.instance.query_type
            query_type.stats.polling_queries_issued += 1
            # The same self-tuning EMA as the per-instance arm, fed the
            # task's amortized share of the batch's measured work.
            if outcome.work_units > 0:
                query_type.cost = (
                    0.8 * query_type.cost + 0.2 * outcome.work_units
                )
            if outcome.impacted:
                report.polls_impacted += 1
                query_type.stats.record_invalidation(elapsed=elapsed_ms())
                urls_to_eject.update(task.instance.urls)
                doomed_instances[task.instance.instance_id] = task.instance
        report.batched_queries += stats.batched_queries - batched_before[0]
        report.batched_instances += stats.batched_instances - batched_before[1]
        report.demux_misses += stats.demux_misses - batched_before[2]

    def _enforce_safety(
        self,
        verdict: SafetyVerdict,
        instance: QueryInstance,
        record: UpdateRecord,
        report: InvalidationReport,
        elapsed_ms: Callable[[], float],
    ) -> bool:
        """Apply a non-SAFE verdict to one (instance, record) pair.

        Returns True when the instance's pages must be ejected.  The
        streaming workers run the same decision table so both paths stay
        counter-for-counter identical.
        """
        stats = instance.query_type.stats
        if verdict is SafetyVerdict.ALWAYS_EJECT:
            report.fallback_ejects += 1
            report.affected += 1
            stats.record_invalidation(elapsed=elapsed_ms())
            return True
        report.poll_only_checks += 1
        if self.safety.check_poll_only(instance, record):
            report.affected += 1
            stats.record_invalidation(elapsed=elapsed_ms())
            return True
        report.unaffected += 1
        return False

    def _finish_report(self, report: InvalidationReport) -> None:
        """Fill the cycle-end safety observability counters."""
        for query_type in self.registry.types():
            if query_type.safety is not None:
                report.lint_findings += len(query_type.safety.findings)
        for instance in self.registry.instances():
            verdict = self.safety.verdict_for(instance.query_type)
            if verdict is SafetyVerdict.SAFE:
                report.safe_instances += 1
            elif verdict is SafetyVerdict.VERSION_KEY:
                report.version_key_instances += 1
        self.last_report = report

    def _probe_candidates(
        self,
        table: str,
        records: Sequence[UpdateRecord],
        report: InvalidationReport,
        doomed_instances: Dict[int, QueryInstance],
    ) -> Tuple[List[Set[int]], List[QueryInstance]]:
        """Probe the predicate index once per deduped record.

        Returns the per-record candidate-id sets plus the *relevant*
        instances (candidate for at least one record), in registration
        order — the same relative order the scan path iterates.  Every
        instance registered for ``table`` that no probe returned is
        proven UNAFFECTED for the whole record group; those pairs are
        accounted in bulk per query type, so counters and per-type
        ``updates_seen`` statistics match the scan exactly.
        """
        index = self.pred_index
        started = time.perf_counter()
        candidate_ids: List[Set[int]] = []
        relevant: Dict[int, QueryInstance] = {}
        for record in records:
            result = index.probe(table, record)
            candidate_ids.append(result.candidate_ids)
            for candidate in result.candidates:
                relevant.setdefault(candidate.instance_id, candidate)
        report.index_probes += len(records)
        report.probe_time_ms += 1000.0 * (time.perf_counter() - started)
        if self.version_index is not None:
            # Version-keyed instances bypass the bulk probe skip: their
            # counter check — not the per-record probe — is this tier's
            # primary resolver, so every pair must materialize and reach
            # the decision table.
            for instance in self.registry.instances_touching(table):
                if (
                    self.safety.verdict_for(instance.query_type)
                    is SafetyVerdict.VERSION_KEY
                ):
                    relevant.setdefault(instance.instance_id, instance)

        relevant_by_type: Dict[int, int] = {}
        for instance in relevant.values():
            type_id = instance.query_type.type_id
            relevant_by_type[type_id] = relevant_by_type.get(type_id, 0) + 1
        # Instances doomed earlier in this cycle are skipped uncounted by
        # the scan path; subtract the non-relevant ones from the bulk.
        doomed_by_type: Dict[int, int] = {}
        for instance_id, instance in doomed_instances.items():
            if instance_id in relevant:
                continue
            if table in instance.query_type.tables:
                type_id = instance.query_type.type_id
                doomed_by_type[type_id] = doomed_by_type.get(type_id, 0) + 1
        for type_id, (query_type, live) in index.table_type_counts(table).items():
            skipped = (
                live
                - relevant_by_type.get(type_id, 0)
                - doomed_by_type.get(type_id, 0)
            )
            if skipped <= 0:
                continue
            pairs = skipped * len(records)
            query_type.stats.updates_seen += pairs
            report.pairs_checked += pairs
            report.pairs_pruned += pairs
            report.unaffected += pairs
        # Instances the conflict matrix parked in never-matching entries
        # are part of the bulk above; surface them in the static counter
        # too, so the matrix's contribution stays visible.
        static_ids = index.statically_dropped_ids(table)
        if static_ids:
            skipped_static = sum(
                1
                for instance_id in static_ids
                if instance_id not in relevant
                and instance_id not in doomed_instances
            )
            report.static_disjoint_skips += skipped_static * len(records)
        ordered = sorted(relevant.values(), key=lambda inst: inst.instance_id)
        return candidate_ids, ordered


class TriggerInvalidator:
    """Baseline: invalidation via database triggers (§4, paragraph 1).

    A trigger per (table, change kind) runs the same independence check
    synchronously inside every DML statement.  Needed polling queries are
    issued inline against the DBMS — the database pays for everything,
    including keeping the table of cached pages.
    """

    def __init__(self, database: Database, caches: Sequence[WebCache]) -> None:
        self.database = database
        self.registry = QueryTypeRegistry()
        self.checker = IndependenceChecker()
        self.messages = InvalidationMessageGenerator(caches)
        self.pages_ejected = 0
        self.checks_performed = 0
        self.polls_issued = 0
        self.db_work_units = 0
        self._installed = False

    def watch(self, sql: str, url_key: str) -> None:
        """Declare that ``url_key`` depends on query instance ``sql``."""
        self.registry.observe_instance(sql, url_key)
        self._ensure_triggers()

    def _ensure_triggers(self) -> None:
        if self._installed:
            return
        for table in self.database.table_names():
            for kind in (ChangeKind.INSERT, ChangeKind.DELETE):
                self.database.triggers.register(
                    f"cacheportal-{table}-{kind.value}",
                    table,
                    kind,
                    self._on_change,
                )
        self._installed = True

    def _on_change(self, record: UpdateRecord) -> None:
        ejected: Set[str] = set()
        for instance in self.registry.instances_touching(record.table):
            self.checks_performed += 1
            verdict = self.checker.check(instance.statement, record)
            if verdict.kind is VerdictKind.UNAFFECTED:
                continue
            if verdict.kind is VerdictKind.NEEDS_POLLING:
                self.polls_issued += 1
                result = self.database.execute(verdict.polling_query)
                self.db_work_units += result.work_units
                if not (result.rows and result.rows[0][0]):
                    continue
            ejected.update(instance.urls)
        if ejected:
            outcomes = self.messages.invalidate(sorted(ejected))
            self.pages_ejected += sum(o.pages_removed for o in outcomes)
            for url in ejected:
                self.registry.drop_url(url)


class MatViewInvalidator:
    """Baseline: invalidation via materialized views (§4, paragraph 2).

    One materialized view per watched query instance; a change in the view
    contents ejects the dependent pages.  Expressive — the view *is* the
    query — but every base-table change recomputes every dependent view,
    inside the update path.
    """

    def __init__(self, database: Database, caches: Sequence[WebCache]) -> None:
        self.database = database
        self.views = MaterializedViewManager(database)
        self.messages = InvalidationMessageGenerator(caches)
        self._urls_by_view: Dict[str, Set[str]] = {}
        self._view_by_sql: Dict[str, str] = {}
        self._ids = itertools.count(1)
        self.pages_ejected = 0
        self.views.on_view_change(self._on_view_change)

    def watch(self, sql: str, url_key: str) -> None:
        view_name = self._view_by_sql.get(sql)
        if view_name is None:
            view_name = f"cacheportal_view_{next(self._ids)}"
            self.views.define(view_name, sql)
            self._view_by_sql[sql] = view_name
            self._urls_by_view[view_name] = set()
        self._urls_by_view[view_name].add(url_key)

    @property
    def maintenance_work(self) -> int:
        """Total DB work spent keeping the views fresh."""
        return sum(
            self.views.get(name).maintenance_work for name in self.views.names()
        )

    def _on_view_change(self, view) -> None:
        urls = self._urls_by_view.get(view.name, set())
        if not urls:
            return
        outcomes = self.messages.invalidate(sorted(urls))
        self.pages_ejected += sum(o.pages_removed for o in outcomes)
        self._urls_by_view[view.name] = set()
