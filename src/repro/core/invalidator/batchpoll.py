"""Set-oriented polling: batch may-affect checks into delta-join queries.

The per-instance polling path (§4.2.2) issues one ``SELECT COUNT(*) ...``
round trip per (instance, changed tuple) pair that needs polling.  Under
bursty update load thousands of those queries differ only in constants:
they are instances of the *same* polling-query type, with different
parameter bindings and tuple values substituted in.

This module folds each such group into ONE set-oriented query.  The
per-instance polling query is parameterized (:func:`repro.sql.params
.parameterize`); its signature is the group key.  All member bindings are
packed into an inline ``VALUES`` derived table that also projects a
synthetic instance id, the residual condition is rewritten to reference
the probe's columns, and the batched query returns the ids of exactly the
members whose per-instance ``COUNT(*)`` would have been positive::

    -- per instance (one of thousands):
    SELECT COUNT(*) FROM car WHERE car.model = 'A4' AND car.price < 20000
    -- batched (one round trip):
    SELECT DISTINCT __probe.__tid
    FROM (VALUES (0, 'A4', 20000), (1, 'TT', 45000), ...)
         AS __probe (__tid, __p1, __p2), car
    WHERE car.model = __probe.__p1 AND car.price < __probe.__p2

Equivalence: ``COUNT(*) > 0`` is row existence, and a probe row's id
appears in the DISTINCT semi-join output exactly when a joined row
exists for its constants — including NULL bindings, which fail
comparisons identically inline or via the probe column.

Demultiplexing threads each id's yes/no verdict back through the same
per-instance bookkeeping the sequential path maintains: the cross-cycle
polling-result cache is consulted first and updated per member, and the
per-cycle coalescing memo (keyed by canonical ``polling_key``) absorbs
duplicate members, so PR 3/4 semantics (result caching, POLL_ONLY
fingerprints) observe per-instance results either way.

Queries the compiler cannot express set-orientedly — subquery residuals
(probe references inside them would be correlated), non-``COUNT(*)``
shapes, or any polling while a middle-tier data cache is the target —
fall back to the per-instance oracle, one task at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.sql import ast
from repro.sql.params import ParameterizedQuery, parameterize
from repro.sql.printer import to_sql
from repro.core.invalidator.infomgmt import InformationManager
from repro.core.invalidator.polling import PollingQueryGenerator

#: Binding name of the synthetic derived table.  Per-instance polling
#: queries never contain dunder-named bindings (``batch_key`` enforces
#: it), so the probe cannot collide with a real table occurrence.
PROBE_NAME = "__probe"

#: Probe column carrying the synthetic member id.
TID_COLUMN = "__tid"


def batch_key(
    query: object, parameterized: "Optional[ParameterizedQuery]" = None
) -> Optional[str]:
    """Group identity of a per-instance polling query, or None.

    Two polling queries fold into the same batch exactly when they are
    instances of one parameterized template — the returned key is that
    template's canonical signature.  None means the query must take the
    per-instance path: it is not the generator's ``SELECT COUNT(*)``
    shape, mixes in subqueries (a probe reference inside one would be a
    correlated subquery, which the engine rejects), or already contains
    placeholders (only fully bound instances carry batchable constants).

    ``parameterized`` may carry the query's precomputed
    :func:`~repro.sql.params.parameterize` result; callers that already
    have one (the batch poller computes it for coalescing) avoid a
    second template rewrite here.
    """
    if not isinstance(query, ast.Select):
        return None
    if query.distinct or query.group_by or query.having is not None:
        return None
    if query.order_by or query.limit is not None or query.offset is not None:
        return None
    if len(query.items) != 1 or not query.sources:
        return None
    expr = query.items[0].expr
    if (
        not isinstance(expr, ast.FunctionCall)
        or expr.name.upper() != "COUNT"
        or expr.distinct
        or len(expr.args) != 1
        or not isinstance(expr.args[0], ast.Star)
    ):
        return None
    for source in query.sources:
        if not isinstance(source, ast.TableRef):
            return None
        if source.binding.lower().startswith("__"):
            return None
    if query.where is not None:
        for node in ast.walk(query.where):
            if isinstance(node, (ast.Exists, ast.InSelect, ast.ScalarSubquery)):
                return None
            if isinstance(node, ast.Parameter):
                return None
            if isinstance(node, ast.ColumnRef) and node.column.startswith("__"):
                return None
    if parameterized is None:
        parameterized = parameterize(query)
    return parameterized.signature


class _ParamToProbe:
    """Rewrites ``$k`` parameters into ``__probe.__pk`` column references.

    Applied to the parameterized template's WHERE clause; subqueries were
    excluded by :func:`batch_key`, so the expression grammar here is the
    subquery-free subset.
    """

    def rewrite(self, node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.Parameter):
            return ast.ColumnRef(f"__p{node.index}", PROBE_NAME)
        if isinstance(node, ast.Binary):
            return ast.Binary(node.op, self.rewrite(node.left), self.rewrite(node.right))
        if isinstance(node, ast.Unary):
            return ast.Unary(node.op, self.rewrite(node.operand))
        if isinstance(node, ast.Between):
            return ast.Between(
                self.rewrite(node.expr),
                self.rewrite(node.low),
                self.rewrite(node.high),
                node.negated,
            )
        if isinstance(node, ast.InList):
            return ast.InList(
                self.rewrite(node.expr),
                tuple(self.rewrite(item) for item in node.items),
                node.negated,
            )
        if isinstance(node, ast.IsNull):
            return ast.IsNull(self.rewrite(node.expr), node.negated)
        if isinstance(node, ast.FunctionCall):
            return ast.FunctionCall(
                node.name, tuple(self.rewrite(arg) for arg in node.args), node.distinct
            )
        if isinstance(node, ast.Case):
            whens = tuple(
                (self.rewrite(cond), self.rewrite(value)) for cond, value in node.whens
            )
            default = self.rewrite(node.default) if node.default is not None else None
            return ast.Case(whens, default)
        return node


def compile_batch(
    template: ast.Select, rows: Sequence[Tuple[ast.Expr, ...]]
) -> ast.Select:
    """Build the one set-oriented query for a group of member rows.

    ``template`` is the shared parameterized polling template; each row is
    ``(Literal(member id), Literal(binding 1), ...)`` in parameter order.
    The result is the DISTINCT delta-join of the probe against the
    template's sources — the planner recognizes this shape and runs it as
    a (hash) semi-join, stopping at each probe row's first match.
    """
    width = len(rows[0]) if rows else 1
    columns = (TID_COLUMN,) + tuple(f"__p{i}" for i in range(1, width))
    probe = ast.ValuesSource(rows=tuple(rows), name=PROBE_NAME, columns=columns)
    where = (
        _ParamToProbe().rewrite(template.where)
        if template.where is not None
        else None
    )
    return ast.Select(
        items=(ast.SelectItem(ast.ColumnRef(TID_COLUMN, PROBE_NAME)),),
        sources=(probe,) + template.sources,
        where=where,
        distinct=True,
    )


@dataclass
class PollOutcome:
    """One task's demultiplexed polling answer.

    ``work_units`` is the task's share of measured database work (an even
    split of its batch's cost), which feeds the same per-type EMA cost
    estimate the per-instance path maintains.  ``source`` records how the
    answer was obtained: ``cache`` (cross-cycle result cache),
    ``coalesced`` (another task this cycle), ``batched``, or ``fallback``
    (per-instance oracle).
    """

    impacted: bool
    work_units: float = 0.0
    source: str = "batched"


@dataclass
class _Group:
    """One pending batch: shared template plus accumulated member rows."""

    template: ast.Select
    rows: List[Tuple[ast.Expr, ...]] = field(default_factory=list)
    #: bindings tuple → member id, for within-batch coalescing.
    row_ids: Dict[Tuple, int] = field(default_factory=dict)
    #: member id → [(task key, query, printed sql, polling key), ...]
    members: List[List[Tuple[Hashable, ast.Select, str, Tuple]]] = field(
        default_factory=list
    )


class BatchPollExecutor:
    """Executes one cycle's scheduled polls set-orientedly.

    Shared by both consumers (the synchronous invalidator and the
    streaming shard workers); all statistics flow into the given
    generator's :class:`~repro.core.invalidator.polling.PollingStats`, so
    existing counters (``issued``, ``coalesced``, ``cache_hits``,
    ``total_work_units``) keep their meaning and the new round-trip
    counters ride alongside.
    """

    def __init__(
        self, infomgmt: InformationManager, generator: PollingQueryGenerator
    ) -> None:
        self.infomgmt = infomgmt
        self.generator = generator

    def execute(
        self, tasks: Sequence[Tuple[Hashable, ast.Select]]
    ) -> Dict[Hashable, PollOutcome]:
        """Answer every (key, polling query) task; returns key → outcome.

        Per-task order of authority matches ``poll_with_caching`` exactly:
        cross-cycle result cache, then this cycle's coalescing memo, then
        the database — batched when possible, per instance otherwise.
        """
        outcomes: Dict[Hashable, PollOutcome] = {}
        groups: "Dict[str, _Group]" = {}
        generator = self.generator
        stats = generator.stats
        result_cache = self.infomgmt.result_cache
        for key, query in tasks:
            sql = to_sql(query)
            cached = result_cache.get(sql)
            if cached is not None:
                stats.cache_hits += 1
                outcomes[key] = PollOutcome(cached, 0.0, "cache")
                continue
            # One parameterize pass per task: its (signature, bindings)
            # pair is both the cycle-coalescing key and (signature alone)
            # the batch group identity, so compute it once and thread it
            # through rather than re-deriving it at each step.
            parameterized = parameterize(query)
            pkey = (parameterized.signature, parameterized.bindings)
            memoized = generator.cycle_result_keyed(pkey)
            if memoized is not None:
                stats.coalesced += 1
                result_cache.put(sql, query, memoized)
                outcomes[key] = PollOutcome(memoized, 0.0, "coalesced")
                continue
            signature = (
                batch_key(query, parameterized)
                if self.infomgmt.data_cache is None
                else None
            )
            if signature is None:
                outcomes[key] = self._poll_single(query, sql)
                continue
            group = groups.get(signature)
            if group is None:
                group = _Group(template=parameterized.template)
                groups[signature] = group
            member_id = group.row_ids.get(parameterized.bindings)
            if member_id is None:
                member_id = len(group.rows)
                group.row_ids[parameterized.bindings] = member_id
                group.rows.append(
                    tuple(
                        ast.Literal(value)
                        for value in (member_id,) + parameterized.bindings
                    )
                )
                group.members.append([])
            else:
                # Same canonical polling key as an earlier member: one
                # probe row serves both (the per-instance path would have
                # coalesced the second poll the same way).
                stats.coalesced += 1
            group.members[member_id].append((key, query, sql, pkey))
        for group in groups.values():
            self._execute_group(group, outcomes)
        return outcomes

    def _poll_single(self, query: ast.Select, sql: str) -> PollOutcome:
        """Per-instance oracle: ``poll_with_caching`` minus the cache read
        (already performed by the caller's loop)."""
        generator = self.generator
        before = generator.stats.total_work_units
        if self.infomgmt.data_cache is not None:
            result = self.infomgmt.data_cache.execute(sql)
            impacted = bool(result.rows) and bool(result.rows[0][0])
            generator.stats.issued += 1
        else:
            impacted = generator.poll(query)
        self.infomgmt.result_cache.put(sql, query, impacted)
        work = generator.stats.total_work_units - before
        return PollOutcome(impacted, float(work), "fallback")

    def _execute_group(
        self, group: _Group, outcomes: Dict[Hashable, PollOutcome]
    ) -> None:
        batched = compile_batch(group.template, group.rows)
        result = self.generator.database.execute(batched)
        stats = self.generator.stats
        stats.batched_queries += 1
        stats.batched_instances += len(group.rows)
        stats.total_work_units += result.work_units
        returned = set()
        for row in result.rows:
            member_id = row[0]
            if isinstance(member_id, int) and 0 <= member_id < len(group.rows):
                returned.add(member_id)
            else:  # pragma: no cover - engine would have to corrupt ids
                stats.demux_misses += 1
        share = float(result.work_units) / len(group.rows) if group.rows else 0.0
        for member_id, members in enumerate(group.members):
            impacted = member_id in returned
            for key, query, sql, pkey in members:
                self.generator.record_cycle_result_keyed(pkey, impacted)
                self.infomgmt.result_cache.put(sql, query, impacted)
                outcomes[key] = PollOutcome(impacted, share, "batched")
