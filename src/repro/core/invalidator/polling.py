"""Polling-query generation, coalescing, and execution (§4.2.2–4.2.3).

The query generator / result interpreter converts the independence
checker's residual conditions into SQL understandable to the DBMS and
turns the results back into a yes/no "does this update reach the query"
answer.

Two optimizations from the paper are implemented:

* **coalescing** — identical polling queries arising from different query
  instances within one cycle are issued once (queries "share subqueries"
  when instances of the same type see the same changed tuple);
* **result caching** — the information-management module may keep polling
  results across cycles for hot (query type, tuple) pairs; see
  :mod:`repro.core.invalidator.infomgmt`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.sql import ast
from repro.sql.params import polling_key
from repro.db.engine import Database


@dataclass
class PollingStats:
    issued: int = 0
    coalesced: int = 0
    cache_hits: int = 0
    total_work_units: int = 0
    # Set-oriented (batched) polling: round-trip accounting.
    batched_queries: int = 0
    batched_instances: int = 0
    demux_misses: int = 0

    @property
    def poll_round_trips_saved(self) -> int:
        """Per-instance round trips avoided by folding tasks into batches."""
        return max(0, self.batched_instances - self.batched_queries)


class PollingQueryGenerator:
    """Executes polling queries against a target database.

    The target may be the origin DBMS or the invalidator's own data cache
    (§2.4: "polling queries can either be directed to the original
    database or ... to a middle-tier data cache maintained by the
    invalidator").
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        self.stats = PollingStats()
        self._cycle_results: Dict[Tuple[str, Tuple], bool] = {}

    def begin_cycle(self) -> None:
        """Reset per-cycle coalescing state."""
        self._cycle_results = {}

    def cycle_result(self, query: ast.Select) -> Optional[bool]:
        """This cycle's memoized outcome for an equivalent query, if any."""
        return self._cycle_results.get(polling_key(query))

    def cycle_result_keyed(self, key: Tuple[str, Tuple]) -> Optional[bool]:
        """Like :meth:`cycle_result` for a precomputed ``polling_key`` —
        lets bulk callers (the batch poller) parameterize each query once
        instead of once per lookup."""
        return self._cycle_results.get(key)

    def record_cycle_result(self, query: ast.Select, impacted: bool) -> None:
        """Memoize an outcome obtained elsewhere (e.g. a batched poll) so
        later per-instance polls of an equivalent query coalesce onto it."""
        self._cycle_results[polling_key(query)] = impacted

    def record_cycle_result_keyed(
        self, key: Tuple[str, Tuple], impacted: bool
    ) -> None:
        """Keyed variant of :meth:`record_cycle_result`."""
        self._cycle_results[key] = impacted

    def poll(self, query: ast.Select) -> bool:
        """True when the polling query returns a non-empty/positive result.

        The generator emits ``SELECT COUNT(*) ...`` queries, so "impact"
        means a count greater than zero.

        Coalescing (§4.2.2) keys the cycle memo by the canonical
        (type signature, bindings) pair, not printed SQL: literal/``?``/
        ``$n`` spellings and formatting variants of the same selection
        coalesce, while equal-looking queries with different constants
        never do.
        """
        key = polling_key(query)
        if key in self._cycle_results:
            self.stats.coalesced += 1
            return self._cycle_results[key]
        result = self.database.execute(query)
        self.stats.issued += 1
        self.stats.total_work_units += result.work_units
        impacted = bool(result.rows) and bool(result.rows[0][0])
        self._cycle_results[key] = impacted
        return impacted
