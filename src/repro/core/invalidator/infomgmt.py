"""The information management module (paper §4.3).

Maintains the four kinds of information the paper enumerates:

* **polling queries** — the per-cycle dedup lives in the polling
  generator; this module decides *where* polls are directed (origin DBMS
  vs. the invalidator's own data cache) and keeps cross-cycle state;
* **polling query results** — a result cache refreshed by a daemon hook
  wired to the update log, so repeated polls for hot tuples are free;
* **invalidation policies** — owned by the policy engine, referenced here;
* **statistics** — per query type (in the registry) and per servlet.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.sql import ast
from repro.sql.analysis import referenced_tables
from repro.sql.printer import to_sql
from repro.db.engine import Database
from repro.web.datacache import DataCache
from repro.core.invalidator.policies import PolicyEngine
from repro.core.invalidator.polling import PollingQueryGenerator


@dataclass
class ServletStats:
    """Per-servlet statistics kept for tuning (§3.1 item 4)."""

    pages_generated: int = 0
    pages_invalidated: int = 0
    queries_mapped: int = 0


class PollingResultCache:
    """Cross-cycle cache of polling-query outcomes.

    Entries are invalidated when any base table of the cached polling
    query changes — the "daemon process that will watch the update logs"
    of §4.3.  Because a poll's tables are a subset of the instance's
    tables, the daemon only needs the per-cycle delta table names.
    """

    def __init__(self, capacity: int = 10000) -> None:
        self.capacity = capacity
        self._results: "OrderedDict[str, bool]" = OrderedDict()
        self._tables: Dict[str, Set[str]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def get(self, sql: str) -> Optional[bool]:
        if sql in self._results:
            self.hits += 1
            self._results.move_to_end(sql)
            return self._results[sql]
        self.misses += 1
        return None

    def put(self, sql: str, query: ast.Select, impacted: bool) -> None:
        if sql in self._results:
            self._results.move_to_end(sql)
        elif len(self._results) >= self.capacity:
            # LRU eviction: a full cache must keep admitting hot new
            # (query, result) pairs or it silently stops being a cache.
            evicted, _ = self._results.popitem(last=False)
            del self._tables[evicted]
            self.evictions += 1
        self._results[sql] = impacted
        self._tables[sql] = referenced_tables(query)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._results),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }

    def invalidate_tables(self, changed_tables: Set[str]) -> int:
        """Drop cached results whose polling query reads a changed table."""
        dropped = [
            sql
            for sql, tables in self._tables.items()
            if tables & changed_tables
        ]
        for sql in dropped:
            del self._results[sql]
            del self._tables[sql]
        self.invalidations += len(dropped)
        return len(dropped)


class InformationManager:
    """Auxiliary structures and statistics for the invalidation module.

    Args:
        database: the origin DBMS.
        policy_engine: shared policy store.
        use_data_cache: when True, polling queries go to a middle-tier
            data cache maintained by the invalidator instead of the
            origin DBMS (§2.4), trading memory for DBMS load.
    """

    def __init__(
        self,
        database: Database,
        policy_engine: PolicyEngine,
        use_data_cache: bool = False,
        result_cache_capacity: int = 10000,
    ) -> None:
        self.database = database
        self.policy_engine = policy_engine
        self.data_cache: Optional[DataCache] = (
            DataCache(database) if use_data_cache else None
        )
        self.result_cache = PollingResultCache(capacity=result_cache_capacity)
        self.servlet_stats: Dict[str, ServletStats] = {}

    def polling_generator(self) -> PollingQueryGenerator:
        """Build the generator pointed at the right polling target."""
        # The DataCache shares the origin database object; routing through
        # it still avoids origin work for repeated identical polls because
        # results are served from the cache's result store.
        return PollingQueryGenerator(self.database)

    def poll_with_caching(
        self, generator: PollingQueryGenerator, query: ast.Select
    ) -> bool:
        """Answer a polling query via the result cache when possible."""
        sql = to_sql(query)
        cached = self.result_cache.get(sql)
        if cached is not None:
            generator.stats.cache_hits += 1
            return cached
        if self.data_cache is not None:
            result = self.data_cache.execute(sql)
            impacted = bool(result.rows) and bool(result.rows[0][0])
            generator.stats.issued += 1
        else:
            impacted = generator.poll(query)
        self.result_cache.put(sql, query, impacted)
        return impacted

    def on_cycle_deltas(self, changed_tables: Set[str]) -> None:
        """Daemon hook: refresh caches after a pull of the update log."""
        self.result_cache.invalidate_tables(changed_tables)
        if self.data_cache is not None:
            self.data_cache.synchronize()

    def servlet(self, name: str) -> ServletStats:
        stats = self.servlet_stats.get(name)
        if stats is None:
            stats = ServletStats()
            self.servlet_stats[name] = stats
        return stats
