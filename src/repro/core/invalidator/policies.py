"""Invalidation policies: registration and discovery (§4.1.3–4.1.4).

A policy decides which pages are worth caching at all.  The paper lists
three discovery heuristics, all implemented here:

* a query type that requires too much processing overhead may not be
  cached;
* a query type that invalidates more than a certain percentage of all
  query instances (per update) may not be cached;
* a query type/instance that is updated very often may not be cached.

Policies come in two flavours: *query-based* (about query types) and
*request-based* (about servlets).  The policy engine aggregates registered
rules plus discovered ones and answers the two questions the rest of the
system asks: "is this query type cacheable?" and "is this servlet
cacheable?" — the latter is the feedback channel into the sniffer's
request logger (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.core.invalidator.registration import QueryType, QueryTypeRegistry


@dataclass(frozen=True)
class InvalidationPolicy:
    """Thresholds governing cacheability decisions.

    Attributes:
        max_invalidation_time: query types whose average invalidation
            handling exceeds this (clock units) stop being cached.
        max_invalidation_ratio: query types where one update invalidates
            more than this fraction of instances stop being cached.
        max_update_frequency: query types whose tables see more than this
            many updates per cycle on average stop being cached.
        min_observations: updates a type must have seen before the
            discovery heuristics may disable it (avoids cold-start flaps).
    """

    max_invalidation_time: float = float("inf")
    max_invalidation_ratio: float = 1.0
    max_update_frequency: float = float("inf")
    min_observations: int = 10


QueryRule = Callable[[QueryType], bool]


class PolicyEngine:
    """Aggregates hard-coded and discovered invalidation policies."""

    def __init__(self, policy: Optional[InvalidationPolicy] = None) -> None:
        self.policy = policy or InvalidationPolicy()
        self._query_rules: List[QueryRule] = []
        self._uncacheable_servlets: Set[str] = set()
        self._uncacheable_types: Set[str] = set()  # type signatures
        self.cycles_observed = 0

    # -- registration (offline mode) ------------------------------------------

    def register_query_rule(self, rule: QueryRule) -> None:
        """Add a hard-coded query-based rule: True means "may cache"."""
        self._query_rules.append(rule)

    def mark_servlet_uncacheable(self, servlet_name: str) -> None:
        """Hard-coded request-based rule."""
        self._uncacheable_servlets.add(servlet_name)

    def mark_type_uncacheable(self, signature: str) -> None:
        self._uncacheable_types.add(signature)

    # -- decisions ----------------------------------------------------------------

    def query_type_cacheable(self, query_type: QueryType) -> bool:
        if query_type.signature in self._uncacheable_types:
            return False
        if not query_type.cacheable:
            return False
        return all(rule(query_type) for rule in self._query_rules)

    def servlet_cacheable(self, servlet_name: str) -> bool:
        return servlet_name not in self._uncacheable_servlets

    # -- discovery (online mode, §4.1.4) --------------------------------------------

    def discover(self, registry: QueryTypeRegistry) -> List[QueryType]:
        """Re-evaluate every query type's stats against the thresholds.

        Returns the types newly marked non-cacheable this round.  The
        registration module calls this after each invalidation cycle.
        """
        self.cycles_observed += 1
        newly_disabled: List[QueryType] = []
        for query_type in registry.types():
            if not query_type.cacheable:
                continue
            stats = query_type.stats
            if stats.updates_seen < self.policy.min_observations:
                continue
            too_slow = (
                stats.average_invalidation_time > self.policy.max_invalidation_time
            )
            too_broad = (
                stats.invalidation_ratio > self.policy.max_invalidation_ratio
            )
            update_rate = stats.updates_seen / max(1, self.cycles_observed)
            too_hot = update_rate > self.policy.max_update_frequency
            if too_slow or too_broad or too_hot:
                query_type.cacheable = False
                self._uncacheable_types.add(query_type.signature)
                newly_disabled.append(query_type)
        return newly_disabled
