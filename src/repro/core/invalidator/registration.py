"""Query-type registration and discovery (paper §4.1.1–4.1.2).

Query *types* are parameterized SELECT templates (``... WHERE price <
$1``); query *instances* are bound executions of a type, each carrying the
set of page URLs generated from it.  Grouping instances under their type
is the key scalability device: the per-type analysis (which tables, which
conjuncts, which residuals) is done once and shared by every instance.

Types enter the registry two ways:

* **registration** (offline): a domain expert declares the templates the
  application uses, optionally with a friendly name;
* **discovery** (online): the registration module scans new QI/URL rows,
  parameterizes each unseen instance, and creates its type on the fly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import RegistrationError
from repro.sql import ast
from repro.sql.analysis import alias_map, referenced_tables
from repro.sql.params import Value, parameterize
from repro.sql.parser import parse_statement
from repro.core.invalidator.safety import SafetyClassification, classify_template
from repro.core.qiurl import QIURLEntry


@dataclass
class QueryTypeStats:
    """Self-tuning statistics per query type (§4.1.1 item 4).

    Times are in the invalidator's clock units; frequencies are counts
    since registration (rates are derived by callers who know the elapsed
    time).
    """

    instances_seen: int = 0
    updates_seen: int = 0
    invalidations: int = 0
    polling_queries_issued: int = 0
    total_invalidation_time: float = 0.0
    max_invalidation_time: float = 0.0

    @property
    def average_invalidation_time(self) -> float:
        if not self.invalidations:
            return 0.0
        return self.total_invalidation_time / self.invalidations

    @property
    def invalidation_ratio(self) -> float:
        """Invalidated instances per update seen (the §4.1.4 heuristic)."""
        if not self.updates_seen:
            return 0.0
        return self.invalidations / self.updates_seen

    def record_invalidation(self, elapsed: float) -> None:
        self.invalidations += 1
        self.total_invalidation_time += elapsed
        self.max_invalidation_time = max(self.max_invalidation_time, elapsed)


@dataclass
class QueryType:
    """One registered query type."""

    type_id: int
    name: str
    signature: str  # canonical parameterized SQL — the registry key
    template: ast.Select
    tables: Set[str]
    aliases: Dict[str, str]  # binding → base table
    stats: QueryTypeStats = field(default_factory=QueryTypeStats)
    cacheable: bool = True  # flipped by policy discovery

    #: Cost/priority/deadline assigned by the registration module
    #: (§4.1.4 last paragraph); consumed by the scheduler.
    cost: float = 1.0
    priority: int = 0
    deadline_ms: float = 1000.0

    #: Lint-derived safety verdict, computed once at registration and
    #: consulted per (instance, update) pair by both invalidation paths.
    safety: Optional[SafetyClassification] = None


@dataclass
class QueryInstance:
    """One bound instance of a query type, with its dependent pages."""

    instance_id: int
    query_type: QueryType
    sql: str  # canonical bound SQL
    bindings: Tuple[Value, ...]
    statement: ast.Select
    urls: Set[str] = field(default_factory=set)
    #: Names of the servlets whose pages this instance feeds — used to
    #: derive invalidation deadlines from servlet temporal sensitivity.
    servlets: Set[str] = field(default_factory=set)
    registered_at: float = 0.0

    #: POLL_ONLY enforcement state: digest of the instance's last known
    #: result set and the log position it was taken at.  Managed by the
    #: :class:`~repro.core.invalidator.safety.SafetyEnforcer`.
    result_fingerprint: Optional[str] = None
    fingerprint_lsn: Optional[int] = None

    #: VERSION_KEY fast-path state: the update cursor at registration
    #: time.  A version counter that has not moved past this stamp
    #: proves the instance untouched.  Managed by the
    #: :class:`~repro.core.invalidator.versionkey.VersionKeyIndex`.
    version_stamp_lsn: Optional[int] = None


class RegistryListener:
    """Observer for instance lifecycle events.

    Attach with :meth:`QueryTypeRegistry.add_listener`; the predicate
    index uses this to stay consistent with discovery and eviction
    without the registry importing it.
    """

    def instance_registered(self, instance: QueryInstance) -> None:
        """A previously unseen instance entered the registry."""

    def instance_dropped(self, instance: QueryInstance) -> None:
        """An instance lost its last dependent URL and was removed."""


class QueryTypeRegistry:
    """Type and instance store with per-table indexes."""

    def __init__(self) -> None:
        self._types_by_signature: Dict[str, QueryType] = {}
        self._types_by_name: Dict[str, QueryType] = {}
        self._instances_by_sql: Dict[str, QueryInstance] = {}
        # Inner dicts are insertion-ordered: instances_touching returns
        # registration order, which both invalidation paths rely on for
        # identical poll-candidate submission order.
        self._instances_by_table: Dict[str, Dict[str, QueryInstance]] = {}
        self._instances_by_url: Dict[str, Set[str]] = {}
        self._listeners: List[RegistryListener] = []
        self._type_ids = itertools.count(1)
        self._instance_ids = itertools.count(1)

    def add_listener(self, listener: RegistryListener) -> None:
        self._listeners.append(listener)

    # -- types ---------------------------------------------------------------

    def register_type(self, template_sql: str, name: Optional[str] = None) -> QueryType:
        """Register a query type from its parameterized SQL template."""
        statement = parse_statement(template_sql)
        if not isinstance(statement, (ast.Select, ast.Union)):
            raise RegistrationError("query types must be SELECT statements")
        # Canonicalize through the parameterizer: a template that still
        # contains literals gets them lifted into parameters, matching how
        # discovered instances will look.
        canonical = parameterize(statement)
        return self._ensure_type(canonical.template, canonical.signature, name)

    def _ensure_type(
        self, template, signature: str, name: Optional[str] = None
    ) -> QueryType:
        existing = self._types_by_signature.get(signature)
        if existing is not None:
            if name and existing.name != name and name not in self._types_by_name:
                self._types_by_name[name] = existing
            return existing
        # Lint first, then upgrade SAFE single-table indexable templates
        # to the VERSION_KEY fast path.  Imported lazily: versionkey
        # depends on grouping, which imports this module's classes.
        from repro.core.invalidator.versionkey import upgrade_classification

        type_id = next(self._type_ids)
        query_type = QueryType(
            type_id=type_id,
            name=name or f"QT{type_id}",
            signature=signature,
            template=template,
            tables=referenced_tables(template),
            aliases=alias_map(template) if isinstance(template, ast.Select) else {},
            safety=upgrade_classification(classify_template(template), template),
        )
        self._types_by_signature[signature] = query_type
        if query_type.name in self._types_by_name:
            raise RegistrationError(f"query type name {query_type.name!r} in use")
        self._types_by_name[query_type.name] = query_type
        return query_type

    def type_by_name(self, name: str) -> QueryType:
        query_type = self._types_by_name.get(name)
        if query_type is None:
            raise RegistrationError(f"no query type named {name!r}")
        return query_type

    def types(self) -> List[QueryType]:
        return sorted(self._types_by_signature.values(), key=lambda t: t.type_id)

    # -- instances --------------------------------------------------------------

    def observe_instance(
        self,
        sql: str,
        url_key: str,
        observed_at: float = 0.0,
        servlet: Optional[str] = None,
    ) -> QueryInstance:
        """Record one (query instance, URL) observation from the QI/URL map.

        Discovers the instance's type if unseen (§4.1.2), then attaches
        the URL to the instance's dependent-page set.
        """
        instance = self._instances_by_sql.get(sql)
        if instance is None:
            statement = parse_statement(sql)
            if not isinstance(statement, (ast.Select, ast.Union)):
                raise RegistrationError("query instances must be SELECTs")
            canonical = parameterize(statement)
            query_type = self._ensure_type(canonical.template, canonical.signature)
            query_type.stats.instances_seen += 1
            instance = QueryInstance(
                instance_id=next(self._instance_ids),
                query_type=query_type,
                sql=sql,
                bindings=canonical.bindings,
                statement=statement,
                registered_at=observed_at,
            )
            self._instances_by_sql[sql] = instance
            for table in query_type.tables:
                self._instances_by_table.setdefault(table, {})[sql] = instance
            for listener in self._listeners:
                listener.instance_registered(instance)
        instance.urls.add(url_key)
        self._instances_by_url.setdefault(url_key, set()).add(sql)
        if servlet is not None:
            instance.servlets.add(servlet)
        return instance

    def instances(self) -> List[QueryInstance]:
        return sorted(
            self._instances_by_sql.values(), key=lambda i: i.instance_id
        )

    def instances_touching(self, table: str) -> List[QueryInstance]:
        """Live instances whose type references ``table``, in
        registration order (== ascending instance id)."""
        return list(self._instances_by_table.get(table.lower(), {}).values())

    def drop_url(self, url_key: str) -> int:
        """Detach a page from all instances; drop orphaned instances.

        Called after a page is ejected: its QI/URL rows are gone, so
        instances that fed only that page no longer need watching.  The
        per-URL map makes this O(instances of the page), not O(registry).
        """
        dropped = 0
        for sql in self._instances_by_url.pop(url_key, ()):
            instance = self._instances_by_sql.get(sql)
            if instance is None:
                continue
            instance.urls.discard(url_key)
            if not instance.urls:
                del self._instances_by_sql[sql]
                for table in instance.query_type.tables:
                    table_map = self._instances_by_table.get(table)
                    if table_map is not None:
                        table_map.pop(sql, None)
                dropped += 1
                for listener in self._listeners:
                    listener.instance_dropped(instance)
        return dropped

    def stats(self) -> Dict[str, int]:
        """Registry size counters for status surfaces and the CLI."""
        return {
            "query_types": len(self._types_by_signature),
            "query_instances": len(self._instances_by_sql),
            "urls": len(self._instances_by_url),
        }

    def __len__(self) -> int:
        return len(self._instances_by_sql)

    # -- checkpointing --------------------------------------------------------

    def snapshot_state(self) -> Dict:
        """JSON-compatible dump of every type and live instance.

        Only *source* state is serialized: type signatures (canonical
        parameterized SQL — parseable, so restore re-derives templates,
        table sets, and aliases), tuning knobs, statistics, and each
        instance's bound SQL plus dependent URLs.  Derived structures
        (parsed ASTs, per-table maps, any attached predicate index) are
        rebuilt on restore, never persisted.
        """
        types = [
            {
                "signature": query_type.signature,
                "name": query_type.name,
                "cacheable": query_type.cacheable,
                "cost": query_type.cost,
                "priority": query_type.priority,
                "deadline_ms": query_type.deadline_ms,
                # Observability only: restore re-derives the verdict from
                # the signature, it never trusts the snapshot's copy.
                "safety": (
                    query_type.safety.verdict.name
                    if query_type.safety is not None
                    else None
                ),
                "stats": {
                    "instances_seen": query_type.stats.instances_seen,
                    "updates_seen": query_type.stats.updates_seen,
                    "invalidations": query_type.stats.invalidations,
                    "polling_queries_issued": query_type.stats.polling_queries_issued,
                    "total_invalidation_time": query_type.stats.total_invalidation_time,
                    "max_invalidation_time": query_type.stats.max_invalidation_time,
                },
            }
            for query_type in self.types()
        ]
        instances = [
            {
                "sql": instance.sql,
                "urls": sorted(instance.urls),
                "servlets": sorted(instance.servlets),
                "registered_at": instance.registered_at,
                "result_fingerprint": instance.result_fingerprint,
                "fingerprint_lsn": instance.fingerprint_lsn,
                "version_stamp_lsn": instance.version_stamp_lsn,
            }
            for instance in self.instances()
        ]
        return {"types": types, "instances": instances}

    def restore_state(self, data: Dict) -> Dict[str, int]:
        """Rebuild the registry from a snapshot; returns :meth:`stats`.

        Existing instances are dropped through the listener path first,
        so attached derived indexes stay consistent; restored instances
        replay through :meth:`observe_instance` in their original
        instance-id order, firing ``instance_registered`` for each —
        which is exactly how a predicate index is rebuilt rather than
        deserialized.
        """
        for url_key in list(self._instances_by_url):
            self.drop_url(url_key)
        self._types_by_signature.clear()
        self._types_by_name.clear()
        self._instances_by_sql.clear()
        self._instances_by_table.clear()
        self._instances_by_url.clear()
        self._type_ids = itertools.count(1)
        self._instance_ids = itertools.count(1)
        # Types first (in original type-id order) so friendly names and
        # discovery order survive; tuning knobs now, stats after replay.
        for spec in data.get("types", []):
            query_type = self.register_type(spec["signature"], spec.get("name"))
            query_type.cacheable = spec.get("cacheable", True)
            query_type.cost = spec.get("cost", 1.0)
            query_type.priority = spec.get("priority", 0)
            query_type.deadline_ms = spec.get("deadline_ms", 1000.0)
        for spec in data.get("instances", []):
            for url_key in spec["urls"]:
                self.observe_instance(
                    spec["sql"], url_key, spec.get("registered_at", 0.0)
                )
            instance = self._instances_by_sql[spec["sql"]]
            instance.servlets.update(spec.get("servlets", ()))
            instance.result_fingerprint = spec.get("result_fingerprint")
            instance.fingerprint_lsn = spec.get("fingerprint_lsn")
            # Overwrites whatever stamp the replay's listener assigned:
            # only the checkpointed stamp describes the cached page.
            instance.version_stamp_lsn = spec.get("version_stamp_lsn")
        # Statistics last: the replay above bumps instances_seen counters
        # that the snapshot already accounts for.
        for spec in data.get("types", []):
            query_type = self._types_by_signature.get(spec["signature"])
            if query_type is not None and "stats" in spec:
                query_type.stats = QueryTypeStats(**spec["stats"])
        return self.stats()


class RegistrationModule:
    """The registration module: feeds QI/URL rows into the registry (§4.1).

    In its *offline* mode, :meth:`register_query_type` (and hard-coded
    policies via the policy engine) are called by the administrator.  In
    its *online* mode, :meth:`scan` consumes new QI/URL rows, discovering
    types and instances.
    """

    def __init__(self, registry: QueryTypeRegistry) -> None:
        self.registry = registry
        self.rows_scanned = 0

    def register_query_type(self, template_sql: str, name: Optional[str] = None) -> QueryType:
        return self.registry.register_type(template_sql, name)

    def scan(self, rows: List[QIURLEntry]) -> int:
        """Process new QI/URL rows; returns how many were ingested."""
        for row in rows:
            self.registry.observe_instance(
                row.sql, row.url_key, row.mapped_at, servlet=row.servlet
            )
        self.rows_scanned += len(rows)
        return len(rows)
