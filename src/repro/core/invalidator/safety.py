"""Safety verdicts: lint findings → enforced invalidation strategy.

The independence check (§4) is precise only for the query fragment it
can actually reason about.  :func:`classify_template` runs the SQL lint
(:mod:`repro.sql.lint`) over a query-type template at registration time
and folds the findings into a four-way verdict — the *safety lattice*::

    SAFE  <  VERSION_KEY  <  POLL_ONLY  <  ALWAYS_EJECT

``SAFE``
    The precise per-update independence check runs as usual.
``VERSION_KEY``
    The query type qualifies for the O(1) version-counter fast path
    (:mod:`repro.core.invalidator.versionkey`): its WHERE clause is a
    single-table conjunction of indexable conjuncts, so a monotone
    per-(table, column, value/interval) counter can prove an update
    cycle left the instance untouched without running the per-update
    independence check.  Counter quiet since the instance's
    registration stamp → skip the check; counter moved (or nothing
    provable) → fall back to the precise check, so ejects are
    identical either way.  ``classify_template`` itself never assigns
    this tier; the upgrade happens at registration, and only from
    ``SAFE`` — a finding that floors above SAFE can never be masked.
``POLL_ONLY``
    The independence check is skipped.  Each instance keeps a result
    fingerprint; an update to a referenced table re-executes the
    instance's own SELECT and ejects the page iff the result changed
    (or nothing trustworthy is known yet).
``ALWAYS_EJECT``
    Conservative fallback: any update to a referenced table ejects the
    page.  No independence check, no polling — never a stale serve.

Every rule carries a *floor* verdict and the combination is the lattice
maximum, with one structural guarantee: a finding of severity ``ERROR``
can never classify ``SAFE``, whatever the rule table says.

:class:`SafetyEnforcer` carries the runtime half: it listens to the
registry for new instances, establishes POLL_ONLY fingerprints at cycle
start, and answers the verdict/fingerprint questions the synchronous
invalidator and the streaming workers ask per (instance, update) pair.
"""

from __future__ import annotations

import enum
import hashlib
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple, Union

from repro.errors import ReproError
from repro.sql import ast
from repro.sql.lint import Finding, LintReport, Severity, lint_statement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.db import Database
    from repro.db.log import UpdateRecord
    from repro.core.invalidator.registration import QueryInstance, QueryType


class SafetyVerdict(enum.IntEnum):
    """How the invalidator must treat instances of a query type."""

    SAFE = 0
    VERSION_KEY = 1
    POLL_ONLY = 2
    ALWAYS_EJECT = 3

    @classmethod
    def parse(cls, name: str) -> "SafetyVerdict":
        try:
            return cls[name.upper()]
        except KeyError:
            valid = ", ".join(v.name for v in cls)
            raise ValueError(
                f"unknown safety verdict {name!r} (expected one of: {valid})"
            ) from None


#: Per-rule verdict floors.  Rules absent from this table floor at
#: POLL_ONLY — fail conservative, matching the ERROR-never-SAFE
#: structural guard — so a future lint rule can never be unsound by
#: omission.  Hygiene diagnostics that genuinely stay SAFE must be
#: listed here explicitly.
RULE_VERDICT_FLOORS: Dict[str, SafetyVerdict] = {
    "nondeterministic-function": SafetyVerdict.ALWAYS_EJECT,
    "correlated-subquery": SafetyVerdict.ALWAYS_EJECT,
    "parse-error": SafetyVerdict.ALWAYS_EJECT,
    "not-a-select": SafetyVerdict.ALWAYS_EJECT,
    "uncorrelated-subquery": SafetyVerdict.POLL_ONLY,
    "union-coarse-analysis": SafetyVerdict.POLL_ONLY,
    "left-join-null-extension": SafetyVerdict.POLL_ONLY,
    "mixed-disjunction": SafetyVerdict.POLL_ONLY,
    "contradictory-predicate": SafetyVerdict.SAFE,
    # An unsatisfiable conjunction matches no rows: the precise checker
    # (and the conflict matrix, which marks it disjoint with everything)
    # handles it exactly — hygiene, not a safety hazard.
    "unsatisfiable-conjunction": SafetyVerdict.SAFE,
    "tautological-predicate": SafetyVerdict.SAFE,
    "cross-type-comparison": SafetyVerdict.SAFE,
    "unindexable-local-conjunct": SafetyVerdict.SAFE,
}


@dataclass(frozen=True)
class SafetyClassification:
    """The stored outcome of linting one query-type template."""

    verdict: SafetyVerdict
    findings: Tuple[Finding, ...]

    @property
    def reasons(self) -> List[str]:
        return [finding.rule for finding in self.findings]

    def to_dict(self) -> Dict[str, object]:
        return {
            "verdict": self.verdict.name,
            "findings": [finding.to_dict() for finding in self.findings],
        }


def classify_findings(
    findings: Tuple[Finding, ...]
) -> SafetyClassification:
    """Fold lint findings into a verdict via the lattice maximum."""
    verdict = SafetyVerdict.SAFE
    for finding in findings:
        # Unknown rules floor at POLL_ONLY: an unlisted (future) rule
        # must degrade to polling, never silently stay SAFE.
        floor = RULE_VERDICT_FLOORS.get(finding.rule, SafetyVerdict.POLL_ONLY)
        if finding.severity >= Severity.ERROR:
            # Structural guard: error findings can never stay SAFE, even
            # for rules this module has never heard of.
            floor = max(floor, SafetyVerdict.ALWAYS_EJECT)
        verdict = max(verdict, floor)
    if verdict is SafetyVerdict.VERSION_KEY:
        # Structural guard: VERSION_KEY is a registration-time upgrade
        # from SAFE, never a lint floor.  A rule table entry pointing at
        # it would *lower* the lattice for a flagged template, so it
        # degrades to POLL_ONLY instead.
        verdict = SafetyVerdict.POLL_ONLY
    return SafetyClassification(verdict=verdict, findings=findings)


def classify_template(
    template: Union[ast.Select, ast.Union]
) -> SafetyClassification:
    """Lint a query-type template and classify it."""
    report: LintReport = lint_statement(template)
    return classify_findings(report.findings)


def _fingerprint_rows(columns: List[str], rows: List[tuple]) -> str:
    """Order-sensitive digest of a result.

    Pages render rows in result order, so two results with the same row
    *set* but different order produce different page bytes — a
    set-insensitive digest would let such a page survive as stale (e.g.
    deleting a row a UNION still produces from its other branch reorders
    the output without changing the set).  The engine is deterministic,
    so identical table state always re-executes to the identical order.
    """
    digest = hashlib.sha256()
    digest.update(repr(columns).encode())
    for row in rows:
        digest.update(repr(row).encode())
    return digest.hexdigest()


class SafetyEnforcer:
    """Runtime enforcement of safety verdicts.

    Attach with ``registry.add_listener(enforcer)``; the enforcer queues
    newly registered instances and, at the start of the next cycle
    (:meth:`prepare_cycle`), computes result fingerprints for instances
    of POLL_ONLY types.

    Fingerprint trust model: a fingerprint taken at cycle start may
    postdate the cached page render, so during its *baseline* cycle any
    touching update ejects conservatively.  An instance that survives
    its baseline cycle has a proven-consistent fingerprint (any update
    between render and baseline would have ejected it), after which
    updates are answered precisely: re-execute, compare, eject only on
    change.  Unchanged re-polls advance ``fingerprint_lsn`` to the log
    head so already-incorporated records short-circuit.

    Thread-safety: registry callbacks and cycle preparation take the
    internal lock; :meth:`check_poll_only` re-executes SQL, so streaming
    callers must hold their database lock around it (the synchronous
    invalidator is single-threaded).
    """

    def __init__(self, database: "Database", enabled: bool = True) -> None:
        self.database = database
        self.enabled = enabled
        self._lock = threading.RLock()
        self._pending: List["QueryInstance"] = []
        #: Instance ids fingerprinted in the current (not yet survived)
        #: cycle — conservative ejection applies to them.
        self._baseline: Set[int] = set()
        self.fingerprints_computed = 0
        self.fingerprint_polls = 0

    # -- RegistryListener protocol (duck-typed) -------------------------------

    def instance_registered(self, instance: "QueryInstance") -> None:
        if not self.enabled:
            return
        if self.verdict_for(instance.query_type) is not SafetyVerdict.POLL_ONLY:
            return
        with self._lock:
            if instance.result_fingerprint is None:
                self._pending.append(instance)

    def instance_dropped(self, instance: "QueryInstance") -> None:
        with self._lock:
            self._baseline.discard(instance.instance_id)
            self._pending = [
                pending
                for pending in self._pending
                if pending.instance_id != instance.instance_id
            ]

    # -- verdicts -------------------------------------------------------------

    def verdict_for(self, query_type: "QueryType") -> SafetyVerdict:
        if not self.enabled:
            return SafetyVerdict.SAFE
        classification = query_type.safety
        if classification is None:
            return SafetyVerdict.SAFE
        return classification.verdict

    # -- fingerprints ---------------------------------------------------------

    def prepare_cycle(self, promote: bool = True) -> int:
        """Fingerprint newly registered POLL_ONLY instances.

        Call once per invalidation cycle, after QI/URL ingest and before
        update processing.  ``promote`` graduates the previous cycle's
        baseline instances to trusted status; streaming callers pass
        ``False`` while workers are still draining older batches (the
        prior baseline must stay conservative until its records are
        done).  Returns the number of fingerprints computed.
        """
        if not self.enabled:
            return 0
        with self._lock:
            if promote:
                self._baseline.clear()
            pending, self._pending = self._pending, []
        computed = 0
        for instance in pending:
            if self._fingerprint(instance):
                computed += 1
                with self._lock:
                    self._baseline.add(instance.instance_id)
        self.fingerprints_computed += computed
        return computed

    def _fingerprint(self, instance: "QueryInstance") -> bool:
        try:
            result = self.database.execute(instance.statement)
        except ReproError:
            # Unexecutable instance: leave the fingerprint unset so every
            # touching update ejects conservatively.
            return False
        instance.result_fingerprint = _fingerprint_rows(
            result.columns, result.rows
        )
        instance.fingerprint_lsn = self.database.update_log.last_lsn
        return True

    def check_poll_only(
        self, instance: "QueryInstance", record: "UpdateRecord"
    ) -> bool:
        """Decide one POLL_ONLY (instance, update) pair.

        Returns True when the page must be ejected.
        """
        self.fingerprint_polls += 1
        fingerprint = instance.result_fingerprint
        lsn = instance.fingerprint_lsn
        if fingerprint is None or lsn is None:
            return True
        with self._lock:
            if instance.instance_id in self._baseline:
                # The fingerprint may postdate the page render; nothing is
                # proven yet, so any touching update ejects.
                return True
        if record.lsn <= lsn:
            # Already incorporated into a trusted fingerprint.
            return False
        try:
            result = self.database.execute(instance.statement)
        except ReproError:
            return True
        current = _fingerprint_rows(result.columns, result.rows)
        if current != fingerprint:
            return True
        instance.fingerprint_lsn = self.database.update_log.last_lsn
        return False

    # -- recovery -------------------------------------------------------------

    def after_restore(self) -> None:
        """Reset transient state after a checkpoint restore.

        Restored fingerprints were trusted when checkpointed (snapshots
        are taken between cycles) and stay trusted; only the pending and
        baseline queues — which describe in-flight cycle state that did
        not survive the crash — are discarded.
        """
        with self._lock:
            self._pending.clear()
            self._baseline.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "fingerprints_computed": self.fingerprints_computed,
                "fingerprint_polls": self.fingerprint_polls,
                "pending_fingerprints": len(self._pending),
                "baseline_instances": len(self._baseline),
            }
