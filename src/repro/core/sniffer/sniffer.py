"""The assembled sniffer: request loggers + query loggers + mapper.

One :class:`Sniffer` instruments one site: it wraps every servlet on every
application server with a :class:`RequestLoggingServlet`, re-points each
server's connection pool at a :class:`LoggingDriver`, and owns the mapper
that turns the collected logs into the QI/URL map.
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional

from repro.db.dbapi import register_driver
from repro.db.wrapper import LoggingDriver
from repro.web.appserver import ApplicationServer
from repro.web.servlet import Servlet
from repro.core.qiurl import QIURLMap
from repro.core.sniffer.logs import RequestLog
from repro.core.sniffer.mapper import RequestToQueryMapper
from repro.core.sniffer.request_logger import RequestLoggingServlet


class Sniffer:
    """Installs and runs CachePortal's observation side on a set of servers.

    Args:
        app_servers: the application servers to instrument.
        clock: shared time source for both logs (request/query intervals
            must be comparable).
        max_staleness_ms: forwarded to the request loggers.
        cacheability_veto: the invalidator's feedback hook (§3.1).
    """

    _instances = itertools.count(1)

    def __init__(
        self,
        app_servers: List[ApplicationServer],
        clock: Optional[Callable[[], float]] = None,
        max_staleness_ms: float = 1000.0,
        cacheability_veto: Optional[Callable[[Servlet], bool]] = None,
    ) -> None:
        self.app_servers = list(app_servers)
        self._logical = itertools.count()
        self.clock = clock or (lambda: float(next(self._logical)))
        self.qiurl_map = QIURLMap()
        self.mapper = RequestToQueryMapper(self.qiurl_map)
        self.request_logs: List[RequestLog] = []
        self.query_loggers: List[LoggingDriver] = []
        self._original_driver_urls: List[str] = [
            server.driver_url for server in self.app_servers
        ]
        self.installed = True
        instance = next(self._instances)

        for index, app_server in enumerate(self.app_servers):
            request_log = RequestLog()
            self.request_logs.append(request_log)
            app_server.servlets.wrap_all(
                lambda servlet, log=request_log: RequestLoggingServlet(
                    servlet,
                    log,
                    clock=self.clock,
                    max_staleness_ms=max_staleness_ms,
                    cacheability_veto=cacheability_veto,
                )
            )
            query_logger = LoggingDriver(clock=self.clock)
            self.query_loggers.append(query_logger)
            driver_name = f"cacheportal-{instance}-{index}"
            register_driver(driver_name, query_logger)
            app_server.set_driver_url(f"repro:{driver_name}:")

    def run_mapper(self) -> int:
        """One mapping round over the logs gathered so far.

        Returns the number of new QI/URL pairs written.  Called
        periodically (the paper's invalidator "fetches the logs from the
        appropriate servers at regular intervals").
        """
        return self.mapper.run(
            self.request_logs, [logger.log for logger in self.query_loggers]
        )

    def uninstall(self) -> None:
        """Remove the wrappers: unwrap every servlet, restore drivers.

        The flip side of non-invasive deployment — tearing CachePortal
        down leaves the site exactly as it was (dynamic pages revert to
        ``no-cache``).  Idempotent.
        """
        if not self.installed:
            return
        for app_server, original_url in zip(
            self.app_servers, self._original_driver_urls
        ):
            app_server.servlets.wrap_all(
                lambda servlet: getattr(servlet, "inner", servlet)
            )
            app_server.set_driver_url(original_url)
        self.installed = False
