"""The sniffer module (paper §3).

Three loosely coupled parts:

* :class:`~repro.core.sniffer.request_logger.RequestLoggingServlet` — the
  servlet wrapper that logs HTTP requests with receive/delivery stamps and
  rewrites ``no-cache`` into the CachePortal-cacheable header;
* the query logger — :class:`repro.db.wrapper.LoggingDriver`, re-exported
  here, wrapping the database driver;
* :class:`~repro.core.sniffer.mapper.RequestToQueryMapper` — joins the two
  logs on time intervals into the QI/URL map.

:class:`~repro.core.sniffer.sniffer.Sniffer` bundles the three.
"""

from repro.db.wrapper import LoggingDriver, QueryLog, QueryLogRecord
from repro.core.sniffer.logs import RequestLog, RequestLogRecord
from repro.core.sniffer.request_logger import RequestLoggingServlet
from repro.core.sniffer.mapper import RequestToQueryMapper
from repro.core.sniffer.sniffer import Sniffer

__all__ = [
    "LoggingDriver",
    "QueryLog",
    "QueryLogRecord",
    "RequestLog",
    "RequestLogRecord",
    "RequestLoggingServlet",
    "RequestToQueryMapper",
    "Sniffer",
]
