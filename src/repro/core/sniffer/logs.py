"""Request-log records and store (paper §3.1).

The request logger stores, per request: a unique id, the request string
(page name + GET parameters), the cookie string, the post string, and the
receive/delivery timestamps — the five items listed in the paper.
"""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class RequestLogRecord:
    """One logged HTTP request, as captured by the servlet wrapper."""

    request_id: int
    servlet: str
    url_key: str
    request_string: str  # page name + GET parameters
    cookie_string: str
    post_string: str
    receive_time: float
    delivery_time: float
    cacheable: bool

    @property
    def interval(self) -> tuple:
        """The request's service interval [receive, delivery]."""
        return (self.receive_time, self.delivery_time)


def encode_params(params: dict) -> str:
    """Deterministic (sorted) urlencoding used for log strings."""
    return urllib.parse.urlencode(sorted(params.items()))


class RequestLog:
    """Append-only store of request records."""

    def __init__(self) -> None:
        self._records: List[RequestLogRecord] = []

    def append(self, record: RequestLogRecord) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def all(self) -> List[RequestLogRecord]:
        return list(self._records)

    def drain(self) -> List[RequestLogRecord]:
        """Return and clear all records (periodic log shipping)."""
        records = self._records
        self._records = []
        return records
