"""Request-log records and store (paper §3.1).

The request logger stores, per request: a unique id, the request string
(page name + GET parameters), the cookie string, the post string, and the
receive/delivery timestamps — the five items listed in the paper — plus a
*correlation token* (an extension for the concurrent serving tier) that
lets the mapper pair queries with their exact originating request instead
of relying on the interval join alone.

The store itself is a :class:`~repro.concurrency.ChunkedRecordLog`:
appends are lock-free per writer thread, so logging a request under the
async gateway costs a couple of list operations instead of a contended
mutex — the paper's "sniffer must not slow the site down" requirement,
restated for cooperative concurrency.
"""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass
from typing import List, Optional

from repro.concurrency import ChunkedRecordLog


@dataclass(frozen=True)
class RequestLogRecord:
    """One logged HTTP request, as captured by the servlet wrapper."""

    request_id: int
    servlet: str
    url_key: str
    request_string: str  # page name + GET parameters
    cookie_string: str
    post_string: str
    receive_time: float
    delivery_time: float
    cacheable: bool
    #: Correlation token shared with every query logged while this
    #: request was being serviced; None for records from older captures.
    request_token: Optional[int] = None

    @property
    def interval(self) -> tuple:
        """The request's service interval [receive, delivery]."""
        return (self.receive_time, self.delivery_time)


def encode_params(params: dict) -> str:
    """Deterministic (sorted) urlencoding used for log strings."""
    return urllib.parse.urlencode(sorted(params.items()))


def _request_sort_key(record: RequestLogRecord) -> tuple:
    # Receive order first (identical to historical append order when
    # requests were serialized on a monotone clock), ids as tie-breaks
    # for concurrent captures whose wall-clock stamps collide.
    return (record.receive_time, record.delivery_time, record.request_id)


class RequestLog(ChunkedRecordLog[RequestLogRecord]):
    """Append-only store of request records (multi-writer, one drainer)."""

    def __init__(self) -> None:
        super().__init__(sort_key=_request_sort_key)

    def append(self, record: RequestLogRecord) -> None:  # typing aid
        super().append(record)

    def drain(self) -> List[RequestLogRecord]:
        """Return and clear all records (periodic log shipping)."""
        return super().drain()
