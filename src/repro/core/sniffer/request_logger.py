"""The request logger: a wrapper around application servlets (paper §3.1).

Wrapping — rather than modifying — the servlets keeps the solution
non-invasive.  The wrapper:

1. stamps receive and delivery times around the inner servlet's work,
2. records the request (id, request string, cookies, post data, stamps),
3. rewrites ``Cache-Control: no-cache`` into
   ``Cache-Control: private, owner="cacheportal"`` so compliant caches may
   store the page — unless the servlet is too temporally sensitive or the
   invalidator has marked one of its queries non-cacheable.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.concurrency import CURRENT_REQUEST_TOKEN, next_request_token
from repro.db.dbapi import Connection
from repro.web.http import CacheControl, HttpRequest, HttpResponse
from repro.web.servlet import Servlet
from repro.web.urlkey import page_key
from repro.core.sniffer.logs import RequestLog, RequestLogRecord, encode_params


class RequestLoggingServlet(Servlet):
    """Decorator servlet that logs requests and rewrites cache headers.

    Args:
        inner: the wrapped application servlet.
        log: shared request log (one per application server).
        clock: time source for the two stamps.
        max_staleness_ms: the staleness CachePortal can guarantee given
            its invalidation cycle; pages from servlets more sensitive
            than this stay non-cacheable (§3.1).
        cacheability_veto: optional callback — the invalidator's feedback
            channel.  Returns False when the servlet currently uses a
            query type that is marked non-cacheable.
    """

    def __init__(
        self,
        inner: Servlet,
        log: RequestLog,
        clock: Optional[Callable[[], float]] = None,
        max_staleness_ms: float = 1000.0,
        cacheability_veto: Optional[Callable[[Servlet], bool]] = None,
    ) -> None:
        super().__init__(
            name=inner.name,
            path=inner.path,
            key_spec=inner.key_spec,
            temporal_sensitivity_ms=inner.temporal_sensitivity_ms,
            error_sensitivity=inner.error_sensitivity,
            cacheable=inner.cacheable,
        )
        self.inner = inner
        self.log = log
        self._logical = itertools.count()
        self.clock = clock or (lambda: float(next(self._logical)))
        self.max_staleness_ms = max_staleness_ms
        self.cacheability_veto = cacheability_veto
        self._ids = itertools.count(1)

    def service(self, request: HttpRequest, connection: Connection) -> HttpResponse:
        # The correlation token rides a context variable for the duration
        # of the inner servlet's work, so the query logger can stamp every
        # SELECT with the exact request that issued it — the concurrent
        # equivalent of the paper's interval pairing (§3.3).
        token = next_request_token()
        reset = CURRENT_REQUEST_TOKEN.set(token)
        receive_time = self.clock()
        try:
            response = self.inner.service(request, connection)
        finally:
            delivery_time = self.clock()
            CURRENT_REQUEST_TOKEN.reset(reset)
        cacheable = self._decide_cacheable(response)
        self.log.append(
            RequestLogRecord(
                request_id=next(self._ids),
                servlet=self.inner.name,
                url_key=page_key(request, self.inner.key_spec),
                request_string=f"{request.path}?{encode_params(request.get_params)}",
                cookie_string=encode_params(request.cookies),
                post_string=encode_params(request.post_params),
                receive_time=receive_time,
                delivery_time=delivery_time,
                cacheable=cacheable,
                request_token=token,
            )
        )
        if cacheable:
            return response.with_cache_control(CacheControl.cacheportal_private())
        return response

    def _decide_cacheable(self, response: HttpResponse) -> bool:
        if not response.ok:
            return False
        if not self.inner.cacheable:
            return False
        if self.inner.temporal_sensitivity_ms < self.max_staleness_ms:
            # The servlet demands fresher pages than invalidation delivers.
            return False
        if self.cacheability_veto is not None and not self.cacheability_veto(self.inner):
            return False
        return True
