"""The request-to-query mapper (paper §3.3).

For every request interval — between the receive and delivery times of a
requested page in the request log — the mapper finds all queries processed
during the corresponding interval in the query log and writes the pairs
into the QI/URL map.

The interval join is deliberately conservative: with concurrent requests
on one server, a query can fall inside more than one request interval and
is then mapped to each of them.  Over-mapping is safe (at worst an extra
page is invalidated later); under-mapping would leave stale pages cached.

The concurrent serving tier sharpens this: both loggers stamp records
with a shared *correlation token* (see :mod:`repro.concurrency`), so a
query carrying a token is paired **exactly** with its originating request
— no cross-mapping even when dozens of requests overlap on one server.
Queries without a token (legacy captures, driver traffic outside any
instrumented request) still go through the interval join.  Under
serialized execution on a monotone clock the two joins produce identical
pairs in identical order, which is what keeps
``CachePortal.run_sniffer()`` output bit-identical to the sync path.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.db.wrapper import QueryLog, QueryLogRecord
from repro.core.qiurl import QIURLMap
from repro.core.sniffer.logs import RequestLog, RequestLogRecord


def _query_order(record: QueryLogRecord) -> tuple:
    return (record.receive_time, record.delivery_time, record.query_id)


class RequestToQueryMapper:
    """Joins request and query logs into a :class:`QIURLMap`."""

    def __init__(self, qiurl_map: QIURLMap) -> None:
        self.qiurl_map = qiurl_map
        self.requests_mapped = 0
        self.pairs_written = 0
        #: Pairs written through the exact token join (vs interval join).
        self.token_pairs = 0
        #: Tokened queries held back because their request record had
        #: not yet been delivered when their log was drained, keyed by
        #: the server's position in the ``run()`` log lists.  A request
        #: record is only appended at *delivery*, so a mapping round
        #: racing an in-flight miss can drain a query before its
        #: request lands; dropping it would under-map (stale page never
        #: invalidated).  Held records rejoin the next round's batch.
        self._held: Dict[int, List[QueryLogRecord]] = {}
        #: Tokened queries currently held back, across all servers.
        self.queries_held = 0

    def run(
        self, request_logs: List[RequestLog], query_logs: List[QueryLog]
    ) -> int:
        """Process and drain all pending log records; returns pairs written.

        The mapper runs at regular intervals on fetched logs (§2.4); each
        run consumes the records accumulated since the last one.  Request
        and query logs must come from the same server pairing, in the same
        order **on every run**, so intervals compare on a common clock and
        tokened queries held back for an in-flight request rejoin the
        right server's next batch.

        Raises:
            ValueError: when the lists differ in length — a silent
            ``zip`` truncation would drop whole servers' logs, and
            under-mapping leaves stale pages cached forever.
        """
        if len(request_logs) != len(query_logs):
            raise ValueError(
                f"request/query log lists must pair one-to-one per server: "
                f"got {len(request_logs)} request log(s) vs "
                f"{len(query_logs)} query log(s)"
            )
        written = 0
        for server, (request_log, query_log) in enumerate(
            zip(request_logs, query_logs)
        ):
            # Request log first: its drain is the cutoff that decides
            # which tokened queries can still be waiting on a request.
            requests = request_log.drain()
            queries = query_log.drain()
            held = self._held.pop(server, None)
            if held:
                queries = held + queries
            written += self._map_batch(requests, queries, server)
        self.queries_held = sum(len(held) for held in self._held.values())
        return written

    def _map_batch(
        self,
        requests: List[RequestLogRecord],
        queries: List[QueryLogRecord],
        server: int = 0,
    ) -> int:
        # Sort queries once; tokened records index by token for the exact
        # join, the rest scan per request with binary-search bounds.
        queries = sorted(queries, key=_query_order)
        request_tokens = {
            request.request_token
            for request in requests
            if request.request_token is not None
        }
        by_token: Dict[int, List[QueryLogRecord]] = {}
        untokened: List[QueryLogRecord] = []
        held: List[QueryLogRecord] = []
        for record in queries:
            if record.request_token is not None:
                if record.request_token in request_tokens:
                    by_token.setdefault(record.request_token, []).append(record)
                else:
                    # The request record lands only at delivery, so a
                    # token with no request in this batch means the
                    # request is still in flight — queries are logged
                    # strictly before their request, never after it has
                    # been drained.  Hold the query for the round where
                    # its request arrives instead of dropping it.
                    held.append(record)
            else:
                untokened.append(record)
        if held:
            self._held.setdefault(server, []).extend(held)
        untokened_times = [record.receive_time for record in untokened]
        written = 0
        for request in requests:
            self.requests_mapped += 1
            if not request.cacheable:
                # Non-cacheable pages are never in a cache, so the
                # invalidator has nothing to do for them.
                continue
            matched: List[QueryLogRecord] = []
            token_count = 0
            if request.request_token is not None:
                matched.extend(by_token.get(request.request_token, ()))
                token_count = len(matched)
            start, end = request.interval
            low = _bisect_left(untokened_times, start)
            index = low
            while index < len(untokened) and untokened[index].receive_time <= end:
                matched.append(untokened[index])
                index += 1
            if token_count and len(matched) > token_count:
                # Mixing joins: restore global receive order so map rows
                # land in the same order a pure interval join would emit.
                matched.sort(key=_query_order)
            for query in matched:
                entry = self.qiurl_map.add(
                    sql=query.sql,
                    url_key=request.url_key,
                    servlet=request.servlet,
                    mapped_at=request.delivery_time,
                )
                if entry is not None:
                    written += 1
            self.token_pairs += token_count
        self.pairs_written += written
        return written


def _bisect_left(values: List[float], target: float) -> int:
    low, high = 0, len(values)
    while low < high:
        middle = (low + high) // 2
        if values[middle] < target:
            low = middle + 1
        else:
            high = middle
    return low
