"""The request-to-query mapper (paper §3.3).

For every request interval — between the receive and delivery times of a
requested page in the request log — the mapper finds all queries processed
during the corresponding interval in the query log and writes the pairs
into the QI/URL map.

The interval join is deliberately conservative: with concurrent requests
on one server, a query can fall inside more than one request interval and
is then mapped to each of them.  Over-mapping is safe (at worst an extra
page is invalidated later); under-mapping would leave stale pages cached.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.db.wrapper import QueryLog, QueryLogRecord
from repro.core.qiurl import QIURLMap
from repro.core.sniffer.logs import RequestLog, RequestLogRecord


class RequestToQueryMapper:
    """Joins request and query logs into a :class:`QIURLMap`."""

    def __init__(self, qiurl_map: QIURLMap) -> None:
        self.qiurl_map = qiurl_map
        self.requests_mapped = 0
        self.pairs_written = 0

    def run(
        self, request_logs: List[RequestLog], query_logs: List[QueryLog]
    ) -> int:
        """Process and drain all pending log records; returns pairs written.

        The mapper runs at regular intervals on fetched logs (§2.4); each
        run consumes the records accumulated since the last one.  Request
        and query logs must come from the same server pairing, in the same
        order, so intervals compare on a common clock.

        Raises:
            ValueError: when the lists differ in length — a silent
            ``zip`` truncation would drop whole servers' logs, and
            under-mapping leaves stale pages cached forever.
        """
        if len(request_logs) != len(query_logs):
            raise ValueError(
                f"request/query log lists must pair one-to-one per server: "
                f"got {len(request_logs)} request log(s) vs "
                f"{len(query_logs)} query log(s)"
            )
        written = 0
        for request_log, query_log in zip(request_logs, query_logs):
            requests = request_log.drain()
            queries = query_log.drain()
            written += self._map_batch(requests, queries)
        return written

    def _map_batch(
        self, requests: List[RequestLogRecord], queries: List[QueryLogRecord]
    ) -> int:
        # Sort queries once; scan per request with binary-search bounds.
        queries = sorted(queries, key=lambda record: record.receive_time)
        receive_times = [record.receive_time for record in queries]
        written = 0
        for request in requests:
            self.requests_mapped += 1
            if not request.cacheable:
                # Non-cacheable pages are never in a cache, so the
                # invalidator has nothing to do for them.
                continue
            start, end = request.interval
            low = _bisect_left(receive_times, start)
            index = low
            while index < len(queries) and queries[index].receive_time <= end:
                entry = self.qiurl_map.add(
                    sql=queries[index].sql,
                    url_key=request.url_key,
                    servlet=request.servlet,
                    mapped_at=request.delivery_time,
                )
                if entry is not None:
                    written += 1
                index += 1
        self.pairs_written += written
        return written


def _bisect_left(values: List[float], target: float) -> int:
    low, high = 0, len(values)
    while low < high:
        middle = (low + high) // 2
        if values[middle] < target:
            low = middle + 1
        else:
            high = middle
    return low
