"""Staleness auditor: crash/restart correctness harness for recovery.

The checkpoint/recovery subsystem (:mod:`repro.core.recovery`) claims
that a portal restored from a snapshot never lets the cache serve a page
whose underlying tuples changed without a subsequent eject.  This module
*audits* that claim instead of trusting it: it replays a deterministic
workload of page requests, database updates, and invalidation cycles
against a live Configuration III site, kills and restarts the portal at
random points (the cache, site, and database survive — only the portal's
in-memory state dies, exactly the crash model recovery targets), and
after every invalidation cycle compares each cached page byte-for-byte
against a fresh regeneration.

With ``recover=True`` (the default) the restarted portal reloads the
latest checkpoint and the audit must find **zero** stale serves.  With
``recover=False`` the restarted portal starts blank — the control arm
that demonstrates the staleness hole recovery exists to close.

Used by the ``repro audit`` CLI command and the recovery test suite.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.portal import CachePortal
from repro.db import Database
from repro.web import Configuration, KeySpec, QueryPageServlet, build_site
from repro.web.http import HttpRequest
from repro.web.servlet import QueryBinding
from repro.web.urlkey import page_key


@dataclass
class AuditConfig:
    """Knobs for one audit run.

    Args:
        ops: workload length (get/update/cycle operations).
        restarts: portal kill/restart points injected into the workload.
        seed: drives the op mix and the restart positions; same seed,
            same run.
        checkpoint_every: operations between checkpoints (a checkpoint
            is also written immediately after install and after every
            restart, so recovery always has something to load).
        log_capacity: bound on the database update log; small values
            force the truncation → flush-all path to exercise under
            crashes.  ``None`` keeps the log unbounded.
        recover: restore from the latest checkpoint after each restart.
            ``False`` is the control arm: restarts leave a blank portal
            and the audit is expected to catch stale pages.
        safety: enforce lint-derived safety verdicts in the portal's
            invalidator.  ``False`` is the control arm for the /deals
            page, whose ``NOW()``-dependent query the precise
            independence check cannot reason about: without enforcement
            the audit is expected to catch stale serves of it.
        cluster_shards: front the site with a sharded
            :class:`~repro.cluster.cluster.CacheCluster` of this many
            shards instead of a single ``WebCache`` (0 keeps the
            single-node cache).  Every portal crash then *also* kills
            one random cache shard, which is warm-restored from its own
            snapshot — the staleness invariant must survive both the
            portal's amnesia and the shard's.
        warm_shards: restore killed shards from their snapshots;
            ``False`` restarts them cold (the recovery control arm).
    """

    ops: int = 400
    restarts: int = 3
    seed: int = 7
    checkpoint_every: int = 25
    log_capacity: Optional[int] = None
    recover: bool = True
    safety: bool = True
    cluster_shards: int = 0
    warm_shards: bool = True


@dataclass
class AuditReport:
    """Everything one audit run observed."""

    config: AuditConfig = field(default_factory=AuditConfig)
    ops_executed: int = 0
    gets: int = 0
    updates: int = 0
    cycles: int = 0
    restarts_performed: int = 0
    checkpoints_written: int = 0
    #: Pages compared byte-for-byte against a fresh regeneration.
    serves_checked: int = 0
    #: Each entry: {"url", "op"} — a cached page that differed from a
    #: fresh regeneration after an invalidation cycle.  Must stay empty.
    stale_serves: List[Dict] = field(default_factory=list)
    #: Restores where the update log had truncated past the checkpoint
    #: and the flush-all safety valve fired.
    flush_alls: int = 0
    orphans_ejected: int = 0
    map_rows_restored: int = 0
    instances_restored: int = 0
    #: Restarts that found no checkpoint on disk; the cache is cleared
    #: wholesale because nothing about it can be trusted.
    cold_restores: int = 0
    #: Safety-enforcement totals summed over all invalidation cycles.
    fallback_ejects: int = 0
    poll_only_checks: int = 0
    #: Cluster mode: cache shards killed alongside portal crashes, pages
    #: recovered from shard snapshots, and snapshot pages the eject
    #: journal (or TTL) discarded on restore.
    shard_kills: int = 0
    shard_pages_restored: int = 0
    shard_pages_dropped: int = 0

    @property
    def passed(self) -> bool:
        return not self.stale_serves

    def to_dict(self) -> Dict:
        return {
            "config": {
                "ops": self.config.ops,
                "restarts": self.config.restarts,
                "seed": self.config.seed,
                "checkpoint_every": self.config.checkpoint_every,
                "log_capacity": self.config.log_capacity,
                "recover": self.config.recover,
                "safety": self.config.safety,
                "cluster_shards": self.config.cluster_shards,
                "warm_shards": self.config.warm_shards,
            },
            "ops_executed": self.ops_executed,
            "gets": self.gets,
            "updates": self.updates,
            "cycles": self.cycles,
            "restarts_performed": self.restarts_performed,
            "checkpoints_written": self.checkpoints_written,
            "serves_checked": self.serves_checked,
            "stale_serves": self.stale_serves,
            "flush_alls": self.flush_alls,
            "orphans_ejected": self.orphans_ejected,
            "map_rows_restored": self.map_rows_restored,
            "instances_restored": self.instances_restored,
            "cold_restores": self.cold_restores,
            "fallback_ejects": self.fallback_ejects,
            "poll_only_checks": self.poll_only_checks,
            "shard_kills": self.shard_kills,
            "shard_pages_restored": self.shard_pages_restored,
            "shard_pages_dropped": self.shard_pages_dropped,
            "passed": self.passed,
        }


# -- the audited workload -----------------------------------------------------
#
# The Car/Mileage site of paper Example 4.1: a single-table range page
# and a join page, so both the local-decision and polling-query paths
# run under crashes.

URLS = [
    "/catalog?max_price=15000",
    "/catalog?max_price=21000",
    "/catalog?max_price=99999",
    "/efficient?min_epa=20",
    "/efficient?min_epa=30",
    "/deals",
]

UPDATES = [
    "INSERT INTO car VALUES ('Kia', 'Rio', 14000)",
    "INSERT INTO car VALUES ('VW', 'Golf', 19500)",
    "INSERT INTO mileage VALUES ('Rio', 45)",
    "INSERT INTO mileage VALUES ('Golf', 31)",
    "DELETE FROM car WHERE model = 'Civic'",
    "DELETE FROM mileage WHERE epa < 20",
    "UPDATE car SET price = price - 1000 WHERE maker = 'Toyota'",
    "UPDATE mileage SET epa = epa + 5 WHERE model = 'Eclipse'",
]


def _build_database(log_capacity: Optional[int]) -> Database:
    db = Database(log_capacity=log_capacity)
    db.execute("CREATE TABLE car (maker TEXT, model TEXT, price INT)")
    db.execute("CREATE TABLE mileage (model TEXT, epa INT)")
    db.execute(
        "INSERT INTO car VALUES "
        "('Toyota','Avalon',25000),('Mitsubishi','Eclipse',20000),"
        "('Honda','Civic',18000),('BMW','M5',72000)"
    )
    db.execute(
        "INSERT INTO mileage VALUES "
        "('Avalon',28),('Eclipse',25),('Civic',35),('M5',16)"
    )
    return db


def _build_servlets() -> List[QueryPageServlet]:
    return [
        QueryPageServlet(
            name="catalog",
            path="/catalog",
            queries=[
                (
                    "SELECT maker, model, price FROM car WHERE price < ?",
                    [QueryBinding("get", "max_price", int)],
                )
            ],
            key_spec=KeySpec.make(get_keys=["max_price"]),
        ),
        QueryPageServlet(
            name="efficient",
            path="/efficient",
            queries=[
                (
                    "SELECT car.maker, car.model, mileage.epa "
                    "FROM car, mileage "
                    "WHERE car.model = mileage.model AND mileage.epa > ?",
                    [QueryBinding("get", "min_epa", int)],
                )
            ],
            key_spec=KeySpec.make(get_keys=["min_epa"]),
        ),
        # The page the safety analyzer exists for: a "flash deals" page
        # whose offer is on only at even ticks of NOW() (the logical DML
        # clock), so its result flips with *every* logged change —
        # including changes whose tuples the precise independence check
        # correctly rules out.  The nondeterministic-function lint rule
        # forces ALWAYS_EJECT on this type; the audit's ``safety=False``
        # arm demonstrates the staleness that fallback prevents.
        QueryPageServlet(
            name="deals",
            path="/deals",
            queries=[
                (
                    "SELECT car.maker, car.model FROM car, mileage "
                    "WHERE car.model = mileage.model "
                    "AND car.price < NOW() % 2 * 99999",
                    [],
                )
            ],
            key_spec=KeySpec.make(get_keys=[]),
        ),
    ]


class StalenessAuditor:
    """Replays a workload with injected portal crashes and checks that
    no invalidation cycle ever leaves a stale page in the cache."""

    def __init__(self, config: Optional[AuditConfig] = None) -> None:
        self.config = config or AuditConfig()

    # -- crash model ----------------------------------------------------------

    def _crash_and_restart(self, site, portal, ckpt_path, report, rng=None):
        """Kill the portal (its in-memory state only) and bring up a
        fresh one.  The web cache keeps every page it held — that is
        the whole hazard.  In cluster mode one cache shard crashes with
        the portal and is warm-restored from its own snapshot, so the
        invariant must also survive the shard's trip through disk."""
        portal.sniffer.uninstall()  # wrappers off; cache NOT cleared
        cluster = site.web_cache if self.config.cluster_shards > 0 else None
        if cluster is not None and rng is not None:
            victim = rng.choice([shard.name for shard in cluster.shards])
            cluster.kill_shard(victim)
            report.shard_kills += 1
            restore = cluster.restart_shard(victim, warm=self.config.warm_shards)
            if restore is not None:
                report.shard_pages_restored += restore.pages_restored
                report.shard_pages_dropped += restore.pages_dropped
        fresh = CachePortal(site, safety_enforcement=self.config.safety)
        report.restarts_performed += 1
        if self.config.recover and os.path.exists(ckpt_path):
            recovery_report = fresh.restore(ckpt_path)
            report.orphans_ejected += recovery_report.orphans_ejected
            report.map_rows_restored += recovery_report.map_rows_restored
            report.instances_restored += recovery_report.instances_restored
            if recovery_report.log_truncated:
                report.flush_alls += 1
        elif self.config.recover:
            # No checkpoint yet: nothing about the cache can be trusted.
            site.web_cache.clear()
            report.cold_restores += 1
        return fresh

    @staticmethod
    def _run_cycle(portal, report) -> None:
        cycle = portal.run_invalidation_cycle()
        report.cycles += 1
        report.fallback_ejects += cycle.fallback_ejects
        report.poll_only_checks += cycle.poll_only_checks

    # -- the invariant --------------------------------------------------------

    @staticmethod
    def _fresh_body(site, url: str) -> str:
        """Regenerate a page at an app server, bypassing the cache."""
        request = HttpRequest.from_url(url)
        return site.balancer.servers[0].handle(request).body

    def _check_cache(self, site, url_by_key, report, op_index: int) -> None:
        for key in list(site.web_cache.keys()):
            cached = site.web_cache.get(key)
            url = url_by_key.get(key)
            if cached is None or url is None:
                continue
            report.serves_checked += 1
            if cached.body != self._fresh_body(site, url):
                report.stale_serves.append({"url": url, "op": op_index})

    # -- the run --------------------------------------------------------------

    def run(self, checkpoint_path: Optional[str] = None) -> AuditReport:
        config = self.config
        report = AuditReport(config=config)
        rng = random.Random(config.seed)

        db = _build_database(config.log_capacity)
        owns_tmpdir = checkpoint_path is None
        tmpdir = tempfile.mkdtemp(prefix="repro-audit-") if owns_tmpdir else None
        cluster = None
        if config.cluster_shards > 0:
            from repro.cluster import CacheCluster

            cluster = CacheCluster(
                num_shards=config.cluster_shards,
                checkpoint_dir=os.path.join(
                    tmpdir or os.path.dirname(checkpoint_path) or ".", "shards"
                ),
            )
        site = build_site(
            Configuration.WEB_CACHE,
            _build_servlets(),
            database=db,
            num_servers=2,
            web_cache=cluster,
        )
        portal = CachePortal(site, safety_enforcement=config.safety)

        ckpt_path = checkpoint_path or os.path.join(tmpdir, "portal.ckpt")

        def _checkpoint() -> None:
            # Shard snapshots ride along with every portal checkpoint, so
            # a warm shard restore is never older than the portal state
            # the restarted invalidator resumes from.
            portal.checkpoint(ckpt_path)
            if cluster is not None:
                cluster.checkpoint_all()
            report.checkpoints_written += 1

        try:
            _checkpoint()

            # Deterministic op stream and restart points.
            ops = [
                rng.choice(
                    [
                        ("get", rng.choice(URLS)),
                        ("update", rng.randrange(len(UPDATES))),
                        ("cycle", None),
                    ]
                )
                for _ in range(config.ops)
            ]
            restart_at = (
                set(rng.sample(range(1, config.ops), min(config.restarts, config.ops - 1)))
                if config.ops > 1 and config.restarts > 0
                else set()
            )

            url_by_key = {}
            for i, (kind, arg) in enumerate(ops):
                if i in restart_at:
                    portal = self._crash_and_restart(
                        site, portal, ckpt_path, report, rng=rng
                    )
                    # Close the staleness window the dead portal left open
                    # before serving anything else.
                    self._run_cycle(portal, report)
                    self._check_cache(site, url_by_key, report, i)
                if kind == "get":
                    site.get(arg)
                    request = HttpRequest.from_url(arg)
                    servlet = site.servlet_for(request.path)
                    url_by_key[page_key(request, servlet.key_spec)] = arg
                    report.gets += 1
                elif kind == "update":
                    site.database.execute(UPDATES[arg])
                    report.updates += 1
                else:
                    self._run_cycle(portal, report)
                    self._check_cache(site, url_by_key, report, i)
                report.ops_executed += 1
                if (i + 1) % config.checkpoint_every == 0:
                    _checkpoint()

            # Final cycle, then the invariant over everything still cached.
            self._run_cycle(portal, report)
            self._check_cache(site, url_by_key, report, config.ops)
        finally:
            if owns_tmpdir:
                shutil.rmtree(tmpdir, ignore_errors=True)
        return report


def run_audit(config: Optional[AuditConfig] = None) -> AuditReport:
    """One-call entry point: build an auditor, run it, return the report."""
    return StalenessAuditor(config).run()
