"""Traffic load balancer (the Cisco LocalDirector stand-in)."""

from __future__ import annotations

import enum
import itertools
from typing import List, Sequence

from repro.errors import WebError
from repro.web.http import HttpRequest, HttpResponse
from repro.web.webserver import WebServer


class BalancingPolicy(enum.Enum):
    ROUND_ROBIN = "round-robin"
    LEAST_CONNECTIONS = "least-connections"


class LoadBalancer:
    """Distributes requests over a farm of web servers."""

    def __init__(
        self,
        servers: Sequence[WebServer],
        policy: BalancingPolicy = BalancingPolicy.ROUND_ROBIN,
    ) -> None:
        if not servers:
            raise WebError("load balancer needs at least one server")
        self.servers: List[WebServer] = list(servers)
        self.policy = policy
        # itertools.count: advancing is a single C-level step, so
        # round-robin stays fair when the async gateway dispatches from
        # several worker threads (a += would lose updates).
        self._next = itertools.count()
        self.dispatched = 0

    def pick(self) -> WebServer:
        """Choose the server for the next request under the policy."""
        if self.policy is BalancingPolicy.ROUND_ROBIN:
            return self.servers[next(self._next) % len(self.servers)]
        # Least connections: fewest in-flight requests, ties by order.
        return min(self.servers, key=lambda server: server.in_flight)

    def handle(self, request: HttpRequest) -> HttpResponse:
        self.dispatched += 1
        return self.pick().handle(request)

    def per_server_counts(self) -> List[int]:
        return [server.requests_received for server in self.servers]
