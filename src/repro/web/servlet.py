"""Servlets: the application code that generates dynamic pages.

A :class:`Servlet` maps one URL path to page-generation logic with access
to a database connection.  Per the paper (§3.1), each servlet carries
metadata the sniffer and invalidator use:

* which GET/POST/cookie parameters are cache keys (:class:`KeySpec`),
* its *temporal sensitivity* — how stale (in milliseconds) its pages may
  get before they must not be cached at all,
* its *error sensitivity* — tolerance for serving slightly stale data.

:class:`QueryPageServlet` is the declarative workhorse used throughout the
examples and benchmarks: a parameterized SQL template whose parameters are
filled from request parameters, rendered as an HTML table.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import HttpError, RoutingError
from repro.db.dbapi import Connection
from repro.web.http import CacheControl, HttpRequest, HttpResponse
from repro.web.urlkey import ALL_GET, KeySpec


class Servlet:
    """Base class for page-generating application code.

    Args:
        name: unique servlet name (the sniffer's servlet id).
        path: URL path this servlet serves, e.g. ``/catalog``.
        key_spec: which request parameters identify the page.
        temporal_sensitivity_ms: maximum acceptable staleness; servlets
            more sensitive than the invalidation cycle can honour are
            marked non-cacheable by the request logger.
        error_sensitivity: 0.0 (tolerant) .. 1.0 (must never be stale).
        cacheable: static hint; ``False`` forces no-cache responses.
    """

    def __init__(
        self,
        name: str,
        path: str,
        key_spec: KeySpec = ALL_GET,
        temporal_sensitivity_ms: float = 1000.0,
        error_sensitivity: float = 0.5,
        cacheable: bool = True,
    ) -> None:
        self.name = name
        self.path = path
        self.key_spec = key_spec
        self.temporal_sensitivity_ms = temporal_sensitivity_ms
        self.error_sensitivity = error_sensitivity
        self.cacheable = cacheable

    def service(self, request: HttpRequest, connection: Connection) -> HttpResponse:
        """Generate the page.  Subclasses must override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} path={self.path!r}>"


@dataclass(frozen=True)
class QueryBinding:
    """How one SQL template parameter is filled from the request.

    ``source`` is one of ``get``, ``post``, ``cookie``; ``name`` is the
    parameter name; ``convert`` coerces the string (e.g. ``int``).
    """

    source: str
    name: str
    convert: Callable[[str], object] = str
    default: Optional[object] = None


class QueryPageServlet(Servlet):
    """Servlet defined by SQL templates plus request-parameter bindings.

    Example::

        QueryPageServlet(
            name="catalog",
            path="/catalog",
            queries=[("SELECT * FROM car WHERE price < ?",
                      [QueryBinding("get", "max_price", int)])],
        )
    """

    def __init__(
        self,
        name: str,
        path: str,
        queries: Sequence[Tuple[str, Sequence[QueryBinding]]],
        title: Optional[str] = None,
        **kwargs: object,
    ) -> None:
        super().__init__(name, path, **kwargs)
        self.queries = [(sql, list(bindings)) for sql, bindings in queries]
        self.title = title or name

    def service(self, request: HttpRequest, connection: Connection) -> HttpResponse:
        sections: List[str] = []
        total_work = 0
        queries_issued = 0
        for sql, bindings in self.queries:
            params = [self._bind(request, binding) for binding in bindings]
            cursor = connection.execute(sql, params or None)
            rows = cursor.fetchall()
            columns = [entry[0] for entry in cursor.description or []]
            if cursor.last_result is not None:
                total_work += cursor.last_result.work_units
            queries_issued += 1
            sections.append(self._render_table(columns, rows))
        body = (
            f"<html><head><title>{html.escape(self.title)}</title></head>"
            f"<body><h1>{html.escape(self.title)}</h1>"
            + "".join(sections)
            + "</body></html>"
        )
        response = HttpResponse(
            status=200,
            body=body,
            cache_control=(
                CacheControl.no_cache()
                if not self.cacheable
                else CacheControl.no_cache()  # rewritten by the request logger
            ),
        )
        response.db_work = total_work
        response.queries_issued = queries_issued
        return response

    def _bind(self, request: HttpRequest, binding: QueryBinding) -> object:
        params = {
            "get": request.get_params,
            "post": request.post_params,
            "cookie": request.cookies,
        }.get(binding.source)
        if params is None:
            raise HttpError(500, f"unknown binding source {binding.source!r}")
        raw = params.get(binding.name)
        if raw is None:
            if binding.default is not None:
                return binding.default
            raise HttpError(
                400, f"missing required parameter {binding.name!r} ({binding.source})"
            )
        try:
            return binding.convert(raw)
        except (TypeError, ValueError) as exc:
            raise HttpError(
                400, f"bad value for parameter {binding.name!r}: {raw!r}"
            ) from exc

    @staticmethod
    def _render_table(columns: List[str], rows: List[Tuple]) -> str:
        header = "".join(f"<th>{html.escape(str(c))}</th>" for c in columns)
        body_rows = "".join(
            "<tr>" + "".join(f"<td>{html.escape(str(v))}</td>" for v in row) + "</tr>"
            for row in rows
        )
        return f"<table><tr>{header}</tr>{body_rows}</table>"


class ServletRegistry:
    """Path → servlet routing table with a wrapping hook.

    The sniffer's request logger installs itself by calling
    :meth:`wrap_all` with a decorator — "we implement the request logger
    to work as a wrapper around the application servlets" (§3.1).
    """

    def __init__(self) -> None:
        self._by_path: Dict[str, Servlet] = {}
        self._by_name: Dict[str, Servlet] = {}

    def register(self, servlet: Servlet) -> None:
        if servlet.path in self._by_path:
            raise RoutingError(f"path {servlet.path!r} already has a servlet")
        if servlet.name in self._by_name:
            raise RoutingError(f"servlet name {servlet.name!r} already registered")
        self._by_path[servlet.path] = servlet
        self._by_name[servlet.name] = servlet

    def route(self, path: str) -> Servlet:
        servlet = self._by_path.get(path)
        if servlet is None:
            raise RoutingError(f"no servlet registered for path {path!r}")
        return servlet

    def by_name(self, name: str) -> Servlet:
        servlet = self._by_name.get(name)
        if servlet is None:
            raise RoutingError(f"no servlet named {name!r}")
        return servlet

    def names(self) -> List[str]:
        return sorted(self._by_name)

    def all(self) -> List[Servlet]:
        return list(self._by_path.values())

    def wrap_all(self, wrapper: Callable[[Servlet], Servlet]) -> None:
        """Replace every servlet with ``wrapper(servlet)``, keeping routes."""
        for path, servlet in list(self._by_path.items()):
            wrapped = wrapper(servlet)
            self._by_path[path] = wrapped
            self._by_name[servlet.name] = wrapped
