"""Web tier: HTTP model, servlet container, caches, and site assembly.

This package is the "BEA WebLogic + NetCache" stand-in: an application
server hosting servlets that query the database through the driver layer,
a web server in front of it, a URL-keyed web page cache honouring the
``Cache-Control: eject`` extension, a middle-tier data cache (for the
paper's Configuration II), and a load balancer.
"""

from repro.web.http import CacheControl, HttpRequest, HttpResponse
from repro.web.urlkey import KeySpec, page_key
from repro.web.servlet import QueryPageServlet, Servlet, ServletRegistry
from repro.web.appserver import ApplicationServer
from repro.web.webserver import WebServer
from repro.web.cache import CacheEntry, FlakyCache, WebCache
from repro.web.datacache import DataCache, DataCacheDriver
from repro.web.balancer import LoadBalancer
from repro.web.site import Configuration, Site, build_site

__all__ = [
    "ApplicationServer",
    "CacheControl",
    "CacheEntry",
    "Configuration",
    "DataCache",
    "DataCacheDriver",
    "FlakyCache",
    "HttpRequest",
    "HttpResponse",
    "KeySpec",
    "LoadBalancer",
    "QueryPageServlet",
    "Servlet",
    "ServletRegistry",
    "Site",
    "WebCache",
    "WebServer",
    "build_site",
    "page_key",
]
