"""Application server: servlet dispatch with database connectivity."""

from __future__ import annotations

from typing import Optional

from repro.errors import HttpError, RoutingError
from repro.db.dbapi import Connection, ConnectionPool
from repro.db.engine import Database
from repro.web.http import CacheControl, HttpRequest, HttpResponse
from repro.web.servlet import Servlet, ServletRegistry


class ApplicationServer:
    """Hosts servlets and routes requests to them.

    Servlets obtain database access through the server's connection pool,
    which is built over a driver URL — exactly the seam where the
    CachePortal query logger installs itself (§3.2): deploying the portal
    simply switches the URL from ``repro:native:`` to the wrapper's name.
    """

    def __init__(
        self,
        name: str,
        database: Database,
        driver_url: str = "repro:native:",
        pool_size: int = 4,
    ) -> None:
        self.name = name
        self.database = database
        self.driver_url = driver_url
        self.servlets = ServletRegistry()
        self.pool = ConnectionPool(f"{name}-pool", database, pool_size, driver_url)
        self.requests_served = 0
        self.errors = 0

    def register(self, servlet: Servlet) -> None:
        self.servlets.register(servlet)

    def set_driver_url(self, driver_url: str) -> None:
        """Re-point the pool at a different driver (e.g. the query logger).

        The existing pool is retargeted in place rather than replaced, so
        connections loaned out mid-request can no longer be silently
        abandoned: retargeting while requests are in flight raises
        :class:`~repro.errors.InterfaceError` instead of leaving those
        requests running against the stale driver.
        """
        self.pool.retarget(driver_url)
        self.driver_url = driver_url

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Dispatch one request to its servlet and return the page."""
        self.requests_served += 1
        try:
            servlet = self.servlets.route(request.path)
        except RoutingError as exc:
            self.errors += 1
            return HttpResponse(status=404, body=str(exc))
        connection = self.pool.acquire()
        try:
            response = servlet.service(request, connection)
        except HttpError as exc:
            self.errors += 1
            response = HttpResponse(
                status=exc.status, body=str(exc), cache_control=CacheControl.no_cache()
            )
        finally:
            self.pool.release(connection)
        return response
