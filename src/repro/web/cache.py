"""The dynamic web-page cache (paper Configuration III).

A URL-keyed LRU store of generated pages that honours the CachePortal
protocol:

* only responses whose Cache-Control marks them CachePortal-cacheable are
  stored (``private, owner="cacheportal"``, or plainly public);
* an incoming request carrying ``Cache-Control: eject`` removes the page —
  this is the invalidation message of §4.2.4;
* optional TTL expiry stands in for the time-based refresh of products
  like Oracle9i web cache, used by the ablation benches for comparison.
"""

from __future__ import annotations

import random
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.web.http import CacheControl, HttpRequest, HttpResponse


def response_size_bytes(response: HttpResponse) -> int:
    """DRAM footprint of one cached page: body plus header bytes.

    The byte-budget tier of the cache cluster plans capacity in bytes,
    not entries, so the accounting must cover everything a real cache
    would keep resident: the body, every explicit header, and the
    rendered Cache-Control line.
    """
    size = len(response.body.encode("utf-8"))
    for name, value in response.headers.items():
        size += len(name.encode("utf-8")) + len(str(value).encode("utf-8"))
    size += len(response.cache_control.render().encode("utf-8"))
    return size


@dataclass
class CacheEntry:
    """One cached page."""

    url_key: str
    response: HttpResponse
    stored_at: float
    expires_at: Optional[float] = None
    hits: int = 0
    #: DRAM footprint (body + headers), fixed at store time.
    size_bytes: int = 0
    #: Cluster eject-journal stamp at store time (0 outside a cluster);
    #: warm restarts use it to discard snapshot entries that were ejected
    #: after the snapshot was taken.
    seq: int = 0


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting for one cache."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    ejects: int = 0
    evictions: int = 0
    expirations: int = 0
    #: Current resident bytes (a gauge, kept in sync by the cache).
    bytes_used: int = 0
    #: Cumulative bytes reclaimed by capacity evictions.
    bytes_evicted: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class WebCache:
    """LRU page cache with the eject protocol.

    Concurrency contract: every public method is safe to call from any
    thread.  Lookups, stores, ejects, and expiry all mutate shared state
    (the LRU order and the ``CacheStats.bytes_used`` gauge) and are
    serialized on one internal re-entrant lock; without it, a hit racing
    an eject interleaves the read-modify-write on ``bytes_used`` and the
    gauge drifts from the true resident total (see
    ``tests/serve/test_cache_concurrency.py``).  The lock is held only
    for dictionary book-keeping — never across servlet or database work —
    so the async gateway can serve hits on its event loop while miss
    completions store pages from worker threads.  ``on_evict`` hooks run
    with the lock held; they must not call back into the cache.

    Args:
        capacity: maximum number of cached pages (the paper's
            ``cache_size`` parameter).
        capacity_bytes: optional DRAM budget; when set, stores evict
            least-recently-used pages until resident bytes fit.  A page
            larger than the whole budget is refused outright.
        default_ttl: optional expiry in seconds; ``None`` disables
            time-based invalidation (CachePortal relies on ejects).
        clock: time source, injected by the simulator.
        on_evict: hook invoked with each entry removed by a capacity
            eviction (entry count or byte budget) — the cluster's hot
            tier demotes these to its overflow tier instead of dropping
            them.  Not called for ejects or TTL expirations.
    """

    def __init__(
        self,
        capacity: int = 1024,
        default_ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        capacity_bytes: Optional[int] = None,
        on_evict: Optional[Callable[[CacheEntry], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ValueError("cache byte budget must be positive")
        self.capacity = capacity
        self.capacity_bytes = capacity_bytes
        self.default_ttl = default_ttl
        self._clock = clock or (lambda: 0.0)
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = threading.RLock()
        self.on_evict = on_evict
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_used(self) -> int:
        """Resident bytes across all cached pages (bodies + headers)."""
        return self.stats.bytes_used

    def __contains__(self, url_key: str) -> bool:
        with self._lock:
            return url_key in self._entries

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def _charge_bytes(self, delta: int) -> None:
        """Adjust the resident-bytes gauge; callers hold ``_lock``.

        A dedicated seam rather than inline ``+=`` so the concurrency
        stress test can instrument the read-modify-write and demonstrate
        the lost-update corruption the lock prevents.
        """
        self.stats.bytes_used = self.stats.bytes_used + delta

    # -- lookups ----------------------------------------------------------------

    def get(self, url_key: str) -> Optional[HttpResponse]:
        """Fetch a page, honouring expiry; None on miss."""
        with self._lock:
            entry = self._entries.get(url_key)
            # Clock reads are not free at hit-tier rates; only entries
            # with a TTL need one.
            if (
                entry is not None
                and entry.expires_at is not None
                and self._clock() >= entry.expires_at
            ):
                del self._entries[url_key]
                self._charge_bytes(-entry.size_bytes)
                self.stats.expirations += 1
                entry = None
            if entry is None:
                self.stats.misses += 1
                return None
            entry.hits += 1
            self.stats.hits += 1
            self._entries.move_to_end(url_key)
            return entry.response

    # -- stores -------------------------------------------------------------------

    def put(
        self, url_key: str, response: HttpResponse, ttl: Optional[float] = None
    ) -> bool:
        """Store a page if its headers permit; returns True when stored."""
        if not response.ok:
            return False
        if not response.cache_control.is_cacheable_by_portal:
            return False
        now = self._clock()
        effective_ttl = ttl if ttl is not None else self.default_ttl
        max_age = response.cache_control.max_age
        if max_age is not None:
            effective_ttl = max_age if effective_ttl is None else min(effective_ttl, max_age)
        entry = CacheEntry(
            url_key=url_key,
            response=response,
            stored_at=now,
            expires_at=None if effective_ttl is None else now + effective_ttl,
            size_bytes=response_size_bytes(response),
        )
        return self.admit(entry)

    def admit(self, entry: CacheEntry) -> bool:
        """Insert a pre-built entry, enforcing both capacity budgets.

        The cacheability checks live in :meth:`put`; ``admit`` is the
        accounting core, reused by the cluster shard to promote or
        restore entries without re-deriving TTLs or re-checking headers.
        """
        if self.capacity_bytes is not None and entry.size_bytes > self.capacity_bytes:
            return False
        with self._lock:
            url_key = entry.url_key
            previous = self._entries.get(url_key)
            if previous is not None:
                self._charge_bytes(-previous.size_bytes)
                self._entries.move_to_end(url_key)
            self._entries[url_key] = entry
            self._charge_bytes(entry.size_bytes)
            self.stats.stores += 1
            while len(self._entries) > self.capacity or (
                self.capacity_bytes is not None
                and self.stats.bytes_used > self.capacity_bytes
            ):
                _victim_key, victim = self._entries.popitem(last=False)
                self._charge_bytes(-victim.size_bytes)
                self.stats.bytes_evicted += victim.size_bytes
                self.stats.evictions += 1
                if self.on_evict is not None:
                    self.on_evict(victim)
            return True

    # -- invalidation ----------------------------------------------------------------

    def eject(self, url_key: str) -> bool:
        """Remove one page; returns True when it was present."""
        with self._lock:
            entry = self._entries.pop(url_key, None)
            if entry is not None:
                self._charge_bytes(-entry.size_bytes)
                self.stats.ejects += 1
                return True
            return False

    def eject_many(self, url_keys: Iterable[str]) -> int:
        return sum(1 for key in url_keys if self.eject(key))

    def handle_message(self, request: HttpRequest, url_key: str) -> bool:
        """Process a cache-control message addressed to this cache.

        Currently only ``Cache-Control: eject`` is meaningful; other
        messages are ignored (the cache is not an origin server).
        """
        control = request.cache_control
        if control is not None and control.has("eject"):
            return self.eject(url_key)
        return False

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats.bytes_used = 0

    def entries(self) -> List[CacheEntry]:
        """Live entries in LRU→MRU order (for snapshots and demotion)."""
        with self._lock:
            return list(self._entries.values())

    def peek(self, url_key: str) -> Optional[CacheEntry]:
        """The entry for a key without touching LRU order or stats."""
        with self._lock:
            return self._entries.get(url_key)


class FlakyCache(WebCache):
    """A :class:`WebCache` with injectable delivery faults, for testing
    the eject bus's retry/backoff/circuit-breaker behaviour.

    Faults apply to :meth:`handle_message` only — lookups and stores stay
    reliable, modelling a cache whose *control* channel is flapping.

    Concurrency contract: inherits :class:`WebCache`'s thread safety; the
    fault-injection counters (``messages_seen``/``messages_failed``) and
    the ``rng`` draw are additionally serialized under the same lock so a
    deterministic ``failure_plan`` sees one coherent attempt sequence
    even with concurrent eject deliveries.

    Args:
        fail_first: raise on this many initial eject messages, then heal.
        failure_plan: optional override — called with the 1-based message
            attempt number; a True return makes that delivery raise.
        failure_rate: probability a delivery raises, drawn from ``rng``.
            Evaluated only when no ``failure_plan`` is given and the
            ``fail_first`` run-in has been consumed.
        rng: explicit seeded random source for ``failure_rate`` draws.
            The cluster bench and audit hand each shard its own
            ``random.Random(seed ^ shard_index)`` so fault injection is
            deterministic per shard and reproducible across runs; an
            unseeded default is created only as a convenience fallback.
    """

    def __init__(
        self,
        capacity: int = 1024,
        default_ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        fail_first: int = 0,
        failure_plan: Optional[Callable[[int], bool]] = None,
        failure_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        capacity_bytes: Optional[int] = None,
    ) -> None:
        super().__init__(
            capacity=capacity,
            default_ttl=default_ttl,
            clock=clock,
            capacity_bytes=capacity_bytes,
        )
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be within [0, 1]")
        self.fail_first = fail_first
        self.failure_plan = failure_plan
        self.failure_rate = failure_rate
        self.rng = rng if rng is not None else random.Random()
        self.messages_seen = 0
        self.messages_failed = 0

    def handle_message(self, request: HttpRequest, url_key: str) -> bool:
        with self._lock:
            self.messages_seen += 1
            if self.failure_plan is not None:
                should_fail = self.failure_plan(self.messages_seen)
            elif self.messages_seen <= self.fail_first:
                should_fail = True
            elif self.failure_rate:
                should_fail = self.rng.random() < self.failure_rate
            else:
                should_fail = False
            if should_fail:
                self.messages_failed += 1
                raise ConnectionError(
                    f"injected eject fault #{self.messages_failed} for {url_key}"
                )
            return super().handle_message(request, url_key)
