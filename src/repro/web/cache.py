"""The dynamic web-page cache (paper Configuration III).

A URL-keyed LRU store of generated pages that honours the CachePortal
protocol:

* only responses whose Cache-Control marks them CachePortal-cacheable are
  stored (``private, owner="cacheportal"``, or plainly public);
* an incoming request carrying ``Cache-Control: eject`` removes the page —
  this is the invalidation message of §4.2.4;
* optional TTL expiry stands in for the time-based refresh of products
  like Oracle9i web cache, used by the ablation benches for comparison.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.web.http import CacheControl, HttpRequest, HttpResponse


@dataclass
class CacheEntry:
    """One cached page."""

    url_key: str
    response: HttpResponse
    stored_at: float
    expires_at: Optional[float] = None
    hits: int = 0


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting for one cache."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    ejects: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class WebCache:
    """LRU page cache with the eject protocol.

    Args:
        capacity: maximum number of cached pages (the paper's
            ``cache_size`` parameter).
        default_ttl: optional expiry in seconds; ``None`` disables
            time-based invalidation (CachePortal relies on ejects).
        clock: time source, injected by the simulator.
    """

    def __init__(
        self,
        capacity: int = 1024,
        default_ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.default_ttl = default_ttl
        self._clock = clock or (lambda: 0.0)
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, url_key: str) -> bool:
        return url_key in self._entries

    def keys(self) -> List[str]:
        return list(self._entries)

    # -- lookups ----------------------------------------------------------------

    def get(self, url_key: str) -> Optional[HttpResponse]:
        """Fetch a page, honouring expiry; None on miss."""
        entry = self._entries.get(url_key)
        now = self._clock()
        if entry is not None and entry.expires_at is not None and now >= entry.expires_at:
            del self._entries[url_key]
            self.stats.expirations += 1
            entry = None
        if entry is None:
            self.stats.misses += 1
            return None
        entry.hits += 1
        self.stats.hits += 1
        self._entries.move_to_end(url_key)
        return entry.response

    # -- stores -------------------------------------------------------------------

    def put(
        self, url_key: str, response: HttpResponse, ttl: Optional[float] = None
    ) -> bool:
        """Store a page if its headers permit; returns True when stored."""
        if not response.ok:
            return False
        if not response.cache_control.is_cacheable_by_portal:
            return False
        now = self._clock()
        effective_ttl = ttl if ttl is not None else self.default_ttl
        max_age = response.cache_control.max_age
        if max_age is not None:
            effective_ttl = max_age if effective_ttl is None else min(effective_ttl, max_age)
        entry = CacheEntry(
            url_key=url_key,
            response=response,
            stored_at=now,
            expires_at=None if effective_ttl is None else now + effective_ttl,
        )
        if url_key in self._entries:
            self._entries.move_to_end(url_key)
        self._entries[url_key] = entry
        self.stats.stores += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return True

    # -- invalidation ----------------------------------------------------------------

    def eject(self, url_key: str) -> bool:
        """Remove one page; returns True when it was present."""
        if url_key in self._entries:
            del self._entries[url_key]
            self.stats.ejects += 1
            return True
        return False

    def eject_many(self, url_keys: Iterable[str]) -> int:
        return sum(1 for key in url_keys if self.eject(key))

    def handle_message(self, request: HttpRequest, url_key: str) -> bool:
        """Process a cache-control message addressed to this cache.

        Currently only ``Cache-Control: eject`` is meaningful; other
        messages are ignored (the cache is not an origin server).
        """
        control = request.cache_control
        if control is not None and control.has("eject"):
            return self.eject(url_key)
        return False

    def clear(self) -> None:
        self._entries.clear()


class FlakyCache(WebCache):
    """A :class:`WebCache` with injectable delivery faults, for testing
    the eject bus's retry/backoff/circuit-breaker behaviour.

    Faults apply to :meth:`handle_message` only — lookups and stores stay
    reliable, modelling a cache whose *control* channel is flapping.

    Args:
        fail_first: raise on this many initial eject messages, then heal.
        failure_plan: optional override — called with the 1-based message
            attempt number; a True return makes that delivery raise.
    """

    def __init__(
        self,
        capacity: int = 1024,
        default_ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        fail_first: int = 0,
        failure_plan: Optional[Callable[[int], bool]] = None,
    ) -> None:
        super().__init__(capacity=capacity, default_ttl=default_ttl, clock=clock)
        self.fail_first = fail_first
        self.failure_plan = failure_plan
        self.messages_seen = 0
        self.messages_failed = 0

    def handle_message(self, request: HttpRequest, url_key: str) -> bool:
        self.messages_seen += 1
        if self.failure_plan is not None:
            should_fail = self.failure_plan(self.messages_seen)
        else:
            should_fail = self.messages_seen <= self.fail_first
        if should_fail:
            self.messages_failed += 1
            raise ConnectionError(
                f"injected eject fault #{self.messages_failed} for {url_key}"
            )
        return super().handle_message(request, url_key)
