"""Cache hierarchies: the four cache locations of paper Figure 1.

A static page (and, with CachePortal, a dynamic one) can live in:

* (A) a proxy cache near the users' ISP,
* (B) a reverse-proxy / web-server front-end cache,
* (C) an edge cache operated by a CDN,
* (D) the user-side (browser or site proxy) cache.

:class:`CacheHierarchy` models a lookup chain over any number of such
levels: a request probes caches from the edge inwards; a hit at level *k*
back-fills every level closer to the user (standard hierarchical caching);
a miss falls through to the origin.  The CachePortal invalidator
broadcasts its eject messages to *all* levels — the
"vertical invalidation" of the paper's related-work discussion — so a
page is never served stale from any tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import WebError
from repro.web.cache import WebCache
from repro.web.http import HttpRequest, HttpResponse
from repro.web.urlkey import page_key


@dataclass
class CacheLevel:
    """One tier of the hierarchy."""

    name: str  # e.g. "browser", "edge", "proxy", "reverse-proxy"
    cache: WebCache


@dataclass
class HierarchyStats:
    lookups: int = 0
    origin_fetches: int = 0
    hits_by_level: dict = field(default_factory=dict)

    def record_hit(self, level_name: str) -> None:
        self.hits_by_level[level_name] = self.hits_by_level.get(level_name, 0) + 1

    @property
    def total_hits(self) -> int:
        return sum(self.hits_by_level.values())

    @property
    def hit_ratio(self) -> float:
        if not self.lookups:
            return 0.0
        return self.total_hits / self.lookups


class CacheHierarchy:
    """An ordered chain of caches between the user and the origin.

    ``levels[0]`` is closest to the user (checked first); the last level
    is closest to the origin.
    """

    def __init__(self, levels: Sequence[CacheLevel]) -> None:
        if not levels:
            raise WebError("a cache hierarchy needs at least one level")
        names = [level.name for level in levels]
        if len(set(names)) != len(names):
            raise WebError("cache level names must be unique")
        self.levels: List[CacheLevel] = list(levels)
        self.stats = HierarchyStats()

    def level(self, name: str) -> CacheLevel:
        for level in self.levels:
            if level.name == name:
                return level
        raise WebError(f"no cache level named {name!r}")

    @property
    def caches(self) -> List[WebCache]:
        """All member caches — hand these to the invalidator."""
        return [level.cache for level in self.levels]

    def fetch(
        self,
        url_key: str,
        origin: Callable[[], HttpResponse],
    ) -> Tuple[HttpResponse, str]:
        """Resolve ``url_key`` through the hierarchy.

        Returns (response, source) where source is the hit level's name or
        ``"origin"``.  Hits back-fill all user-ward levels; origin fetches
        populate every level that accepts the page.
        """
        self.stats.lookups += 1
        for index, level in enumerate(self.levels):
            response = level.cache.get(url_key)
            if response is not None:
                self.stats.record_hit(level.name)
                for closer in self.levels[:index]:
                    closer.cache.put(url_key, response)
                return response, level.name
        response = origin()
        self.stats.origin_fetches += 1
        for level in self.levels:
            level.cache.put(url_key, response)
        return response, "origin"

    def contains(self, url_key: str) -> List[str]:
        """Names of the levels currently holding the page."""
        return [level.name for level in self.levels if url_key in level.cache]

    def attach_to_bus(self, bus, prefix: str = "") -> List[str]:
        """Register every level as an eject endpoint on a delivery bus.

        Each level becomes an independent target named
        ``{prefix}{level.name}`` — so the streaming pipeline's retry and
        circuit-breaking state is per *tier*, and a flapping edge cache
        cannot delay ejects to the reverse proxy ("vertical invalidation"
        with per-tier fault isolation).  Returns the registered names.
        """
        names = []
        for level in self.levels:
            name = f"{prefix}{level.name}"
            bus.register(name, level.cache)
            names.append(name)
        return names

    def eject_everywhere(self, url_key: str) -> int:
        """Remove a page from every level; returns copies removed.

        Kept for direct use, though the normal path is the invalidator's
        message generator, which already addresses every cache handed to
        it via :attr:`caches`.
        """
        return sum(1 for level in self.levels if level.cache.eject(url_key))


def standard_hierarchy(
    capacity_per_level: int = 1024,
    clock: Optional[Callable[[], float]] = None,
) -> CacheHierarchy:
    """The four-level deployment of Figure 1 (user side first)."""
    names = ["browser", "edge", "proxy", "reverse-proxy"]
    return CacheHierarchy(
        [
            CacheLevel(name, WebCache(capacity=capacity_per_level, clock=clock))
            for name in names
        ]
    )


class HierarchicalSite:
    """A site whose web cache is a full hierarchy instead of one cache.

    Wraps an origin :class:`~repro.web.site.Site` built *without* a web
    cache (any configuration) and resolves requests through the
    hierarchy.  Use together with an Invalidator constructed over
    ``hierarchy.caches``.
    """

    def __init__(self, origin_site, hierarchy: CacheHierarchy) -> None:
        self.origin = origin_site
        self.hierarchy = hierarchy

    def get(self, url: str, cookies=None, post_params=None) -> HttpResponse:
        request = HttpRequest.from_url(url, cookies=cookies, post_params=post_params)
        servlet = self.origin.servlet_for(request.path)
        key = page_key(request, servlet.key_spec)
        response, _source = self.hierarchy.fetch(
            key, lambda: self.origin.balancer.handle(request)
        )
        return response

    def fetch_with_source(self, url: str) -> Tuple[HttpResponse, str]:
        request = HttpRequest.from_url(url)
        servlet = self.origin.servlet_for(request.path)
        key = page_key(request, servlet.key_spec)
        return self.hierarchy.fetch(
            key, lambda: self.origin.balancer.handle(request)
        )
