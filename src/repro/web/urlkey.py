"""Page identifiers (URL keys) — paper §2.3.1.

A *URL* in the paper's sense is not the raw request line: it is the
combination of the host, plus those GET/POST/cookie parameters that act as
cache keys.  Parameters that do not influence the generated page (session
trackers, analytics tags) must be excluded, or the cache would store one
copy per visitor and never hit.

:class:`KeySpec` records, per servlet, which parameters are keys; the
sniffer keeps this as part of its per-servlet metadata (§3.1 item 3).
"""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional

from repro.web.http import HttpRequest


@dataclass(frozen=True)
class KeySpec:
    """Which request parameters participate in the page identifier.

    ``None`` for a field means "all parameters of that kind are keys";
    an explicit (possibly empty) set restricts to those names.
    """

    get_keys: Optional[FrozenSet[str]] = None
    post_keys: Optional[FrozenSet[str]] = frozenset()
    cookie_keys: Optional[FrozenSet[str]] = frozenset()

    @classmethod
    def make(
        cls,
        get_keys: Optional[Iterable[str]] = None,
        post_keys: Optional[Iterable[str]] = (),
        cookie_keys: Optional[Iterable[str]] = (),
    ) -> "KeySpec":
        return cls(
            get_keys=None if get_keys is None else frozenset(get_keys),
            post_keys=None if post_keys is None else frozenset(post_keys),
            cookie_keys=None if cookie_keys is None else frozenset(cookie_keys),
        )

    def _select(self, params: dict, keys: Optional[FrozenSet[str]]) -> list:
        if keys is None:
            return sorted(params.items())
        return sorted(
            (name, value) for name, value in params.items() if name in keys
        )


#: Spec treating every GET parameter as a key and ignoring POST/cookies.
ALL_GET = KeySpec()


def page_key(request: HttpRequest, spec: KeySpec = ALL_GET) -> str:
    """Canonical page identifier for ``request`` under ``spec``.

    The key is deterministic (parameters sorted by name) so that two
    requests for the same logical page always map to the same cache slot.
    Format: ``host/path?get#post#cookie`` with url-encoded pairs.
    """
    get_pairs = spec._select(request.get_params, spec.get_keys)
    post_pairs = spec._select(request.post_params, spec.post_keys)
    cookie_pairs = spec._select(request.cookies, spec.cookie_keys)
    key = f"{request.host}{request.path}"
    if get_pairs:
        key += "?" + urllib.parse.urlencode(get_pairs)
    if post_pairs:
        key += "#post:" + urllib.parse.urlencode(post_pairs)
    if cookie_pairs:
        key += "#cookie:" + urllib.parse.urlencode(cookie_pairs)
    return key
