"""Minimal HTTP request/response model with Cache-Control support.

The model covers exactly what the paper's architecture needs: GET/POST
parameters, cookies, and the two Cache-Control extensions CachePortal
relies on —

* ``Cache-Control: private, owner="cacheportal"`` — the sniffer's servlet
  wrapper rewrites ``no-cache`` responses into this form so that
  CachePortal-compliant caches may store them (§3.1);
* ``Cache-Control: eject`` — the invalidation message the invalidator
  sends to caches (§4.2.4), modelled after NetCache 4.0.
"""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class CacheControl:
    """Parsed Cache-Control header: directives with optional values."""

    def __init__(self, directives: Optional[Dict[str, Optional[str]]] = None) -> None:
        self.directives: Dict[str, Optional[str]] = dict(directives or {})

    # -- constructors ---------------------------------------------------------

    @classmethod
    def parse(cls, header: str) -> "CacheControl":
        """Parse ``no-cache, max-age=60, owner="cacheportal"`` style text."""
        directives: Dict[str, Optional[str]] = {}
        for part in header.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" in part:
                name, value = part.split("=", 1)
                directives[name.strip().lower()] = value.strip().strip('"')
            else:
                directives[part.lower()] = None
        return cls(directives)

    @classmethod
    def no_cache(cls) -> "CacheControl":
        return cls({"no-cache": None})

    @classmethod
    def cacheportal_private(cls) -> "CacheControl":
        """The rewritten header that marks a page CachePortal-cacheable."""
        return cls({"private": None, "owner": "cacheportal"})

    @classmethod
    def eject(cls) -> "CacheControl":
        return cls({"eject": None})

    # -- queries --------------------------------------------------------------

    def has(self, directive: str) -> bool:
        return directive.lower() in self.directives

    def get(self, directive: str) -> Optional[str]:
        return self.directives.get(directive.lower())

    @property
    def is_cacheable_by_portal(self) -> bool:
        """True for pages a CachePortal-compliant cache may store."""
        if self.has("eject"):
            return False
        if self.has("no-cache") or self.has("no-store"):
            return False
        if self.has("private"):
            return self.get("owner") == "cacheportal"
        return True

    @property
    def max_age(self) -> Optional[float]:
        value = self.get("max-age")
        if value is None:
            return None
        try:
            return float(value)
        except ValueError:
            return None

    def render(self) -> str:
        parts: List[str] = []
        for name, value in self.directives.items():
            if value is None:
                parts.append(name)
            elif name == "owner":
                parts.append(f'{name}="{value}"')
            else:
                parts.append(f"{name}={value}")
        return ", ".join(parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CacheControl):
            return NotImplemented
        return self.directives == other.directives

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheControl({self.render()!r})"


@dataclass
class HttpRequest:
    """An HTTP request as seen by the web server.

    Following the paper's terminology (§2.3.1), a request carries the
    host, the path with GET parameters, POST parameters, and cookies.
    """

    method: str = "GET"
    host: str = "shop.example.com"
    path: str = "/"
    get_params: Dict[str, str] = field(default_factory=dict)
    post_params: Dict[str, str] = field(default_factory=dict)
    cookies: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_url(
        cls,
        url: str,
        method: str = "GET",
        host: str = "shop.example.com",
        post_params: Optional[Dict[str, str]] = None,
        cookies: Optional[Dict[str, str]] = None,
    ) -> "HttpRequest":
        """Build a request from a path-with-query string like
        ``/catalog?maker=Toyota&max_price=25000``."""
        parsed = urllib.parse.urlsplit(url)
        if parsed.netloc:
            host = parsed.netloc
        get_params = dict(urllib.parse.parse_qsl(parsed.query))
        return cls(
            method=method,
            host=host,
            path=parsed.path or "/",
            get_params=get_params,
            post_params=dict(post_params or {}),
            cookies=dict(cookies or {}),
        )

    @property
    def query_string(self) -> str:
        return urllib.parse.urlencode(sorted(self.get_params.items()))

    @property
    def url(self) -> str:
        query = self.query_string
        return f"{self.path}?{query}" if query else self.path

    @property
    def cache_control(self) -> Optional[CacheControl]:
        header = self.headers.get("Cache-Control")
        return CacheControl.parse(header) if header else None


@dataclass
class HttpResponse:
    """An HTTP response: status, body, headers, cacheability."""

    status: int = 200
    body: str = ""
    headers: Dict[str, str] = field(default_factory=dict)
    cache_control: CacheControl = field(default_factory=CacheControl.no_cache)

    #: Work metadata (extension): total DB work units spent building this
    #: page, used by the latency model.  Zero for cache hits.
    db_work: int = 0
    queries_issued: int = 0

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def with_cache_control(self, cache_control: CacheControl) -> "HttpResponse":
        """Copy of this response with a different Cache-Control header."""
        return HttpResponse(
            status=self.status,
            body=self.body,
            headers=dict(self.headers),
            cache_control=cache_control,
            db_work=self.db_work,
            queries_issued=self.queries_issued,
        )


def make_eject_request(url_key: str, host: str = "cache.internal") -> HttpRequest:
    """Build the invalidation message sent to a cache (§4.2.4).

    It is "simply an HTTP header that is sent as part of a normal client
    request": a request for the page with ``Cache-Control: eject``.
    """
    request = HttpRequest.from_url(url_key, host=host)
    request.headers["Cache-Control"] = CacheControl.eject().render()
    return request
