"""Middle-tier data cache (paper Configuration II).

Caches *query results* next to each application server, Oracle-8i-data-
cache style.  Reads hit the cache when the identical SQL text (with bound
parameters) was executed before and no conflicting update has arrived.

Synchronization follows the paper's model (§5.2.5): at every
synchronization interval the cache fetches the list of recent updates from
the database (one query against the update log) and invalidates cached
results whose base tables changed.  This table-granularity invalidation is
deliberately coarse — making it finer is precisely the hard problem
CachePortal solves for *page* caches.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.sql import ast
from repro.sql.analysis import referenced_tables
from repro.sql.parser import parse_statement
from repro.sql.params import bind_parameters
from repro.sql.printer import to_sql
from repro.db.dbapi import Driver
from repro.db.engine import Database, StatementResult
from repro.db.types import Value


@dataclass
class DataCacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    synchronizations: int = 0
    sync_records_seen: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


@dataclass
class _CachedResult:
    sql: str
    tables: Set[str]
    result: StatementResult


class DataCache:
    """Query-result cache with log-based synchronization."""

    def __init__(self, database: Database, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("data cache capacity must be positive")
        self.database = database
        self.capacity = capacity
        self._entries: "OrderedDict[str, _CachedResult]" = OrderedDict()
        self._by_table: Dict[str, Set[str]] = {}
        self._sync_lsn = database.update_log.head_lsn - 1
        self.stats = DataCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def execute(
        self, sql: str, params: Optional[Sequence[Value]] = None
    ) -> StatementResult:
        """Serve a SELECT from cache when possible; pass everything else on."""
        statement = parse_statement(sql)
        if params:
            statement = bind_parameters(statement, tuple(params))
        if not isinstance(statement, (ast.Select, ast.Union)):
            return self.database.execute(statement)
        key = to_sql(statement)
        cached = self._entries.get(key)
        if cached is not None:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return cached.result
        self.stats.misses += 1
        result = self.database.execute(statement)
        self._store(key, referenced_tables(statement), result)
        return result

    def _store(self, key: str, tables: Set[str], result: StatementResult) -> None:
        self._entries[key] = _CachedResult(key, tables, result)
        for table in tables:
            self._by_table.setdefault(table, set()).add(key)
        while len(self._entries) > self.capacity:
            evicted_key, evicted = self._entries.popitem(last=False)
            for table in evicted.tables:
                self._by_table.get(table, set()).discard(evicted_key)

    def synchronize(self) -> int:
        """Pull the update log tail and invalidate affected results.

        Returns the number of cached results invalidated.  The cost of
        this call (one log read per interval, per cache) is the
        ``data_cache_synch_cost`` of the paper's parameter table.
        """
        records = self.database.update_log.read_since(self._sync_lsn)
        self.stats.synchronizations += 1
        self.stats.sync_records_seen += len(records)
        if records:
            self._sync_lsn = records[-1].lsn
        changed_tables = {record.table for record in records}
        invalidated = 0
        for table in changed_tables:
            for key in list(self._by_table.get(table, ())):
                entry = self._entries.pop(key, None)
                if entry is None:
                    continue
                invalidated += 1
                for other_table in entry.tables:
                    self._by_table.get(other_table, set()).discard(key)
        self.stats.invalidations += invalidated
        return invalidated

    def clear(self) -> None:
        self._entries.clear()
        self._by_table.clear()


class DataCacheDriver(Driver):
    """Driver adapter: route servlet queries through a :class:`DataCache`.

    Lets Configuration II sites reuse unmodified servlets — the cache is
    selected purely by the application server's driver URL.
    """

    def __init__(self, cache: DataCache) -> None:
        self.cache = cache

    def run(
        self, database: Database, sql: str, params: Optional[Sequence[Value]]
    ) -> StatementResult:
        if database is not self.cache.database:
            raise ValueError("data cache is bound to a different database")
        return self.cache.execute(sql, params)
