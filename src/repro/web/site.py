"""Site assembly: the three architectures of the paper's evaluation.

* :attr:`Configuration.REPLICATED` (Config I) — N web/app servers, each
  with its own replicated database; updates are applied to every replica.
* :attr:`Configuration.DATA_CACHE` (Config II) — one shared database, a
  middle-tier data cache per application server.
* :attr:`Configuration.WEB_CACHE` (Config III) — one shared database and a
  dynamic web-page cache in front of the load balancer (the CachePortal
  deployment).

:func:`build_site` wires servers, caches, and databases into a
:class:`Site` whose :meth:`Site.get` entry point behaves like a browser
request arriving at the site, and whose :meth:`Site.update` mirrors the
paper's backend update stream (Figure 5, arrow ``Upd``).

These sites are *functional* models — every request really routes, every
query really executes, every cached page really gets stored and ejected.
Timing behaviour is the business of :mod:`repro.sim`, which reuses the
same components under a discrete-event clock.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import RoutingError, WebError
from repro.db.engine import Database, StatementResult
from repro.db.dbapi import register_driver
from repro.web.appserver import ApplicationServer
from repro.web.balancer import BalancingPolicy, LoadBalancer
from repro.web.cache import WebCache
from repro.web.datacache import DataCache, DataCacheDriver
from repro.web.http import HttpRequest, HttpResponse
from repro.web.servlet import Servlet
from repro.web.urlkey import page_key
from repro.web.webserver import WebServer


class Configuration(enum.Enum):
    """The three site architectures compared in the paper."""

    REPLICATED = "replicated"  # Configuration I
    DATA_CACHE = "data-cache"  # Configuration II
    WEB_CACHE = "web-cache"  # Configuration III


@dataclass
class SiteStats:
    requests: int = 0
    page_cache_hits: int = 0
    page_cache_misses: int = 0
    updates_applied: int = 0


class Site:
    """A fully wired web site under one of the three configurations."""

    def __init__(
        self,
        configuration: Configuration,
        balancer: LoadBalancer,
        databases: Sequence[Database],
        web_cache: Optional[WebCache] = None,
        data_caches: Sequence[DataCache] = (),
    ) -> None:
        self.configuration = configuration
        self.balancer = balancer
        self.databases = list(databases)
        self.web_cache = web_cache
        self.data_caches = list(data_caches)
        self.stats = SiteStats()

    # -- convenience accessors ---------------------------------------------------

    @property
    def database(self) -> Database:
        """The primary database (the only one outside Config I)."""
        return self.databases[0]

    @property
    def app_servers(self) -> List[ApplicationServer]:
        return [server.app_server for server in self.balancer.servers]

    def servlet_for(self, path: str) -> Servlet:
        return self.app_servers[0].servlets.route(path)

    # -- request path ---------------------------------------------------------------

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Process one request, going through the page cache when present."""
        self.stats.requests += 1
        if self.web_cache is None:
            return self.balancer.handle(request)
        try:
            servlet = self.servlet_for(request.path)
        except RoutingError:
            # Unknown path: let the app server produce the 404 response.
            return self.balancer.handle(request)
        key = page_key(request, servlet.key_spec)
        cached = self.web_cache.get(key)
        if cached is not None:
            self.stats.page_cache_hits += 1
            return cached
        self.stats.page_cache_misses += 1
        response = self.balancer.handle(request)
        self.web_cache.put(key, response)
        return response

    def get(
        self,
        url: str,
        cookies: Optional[Dict[str, str]] = None,
        post_params: Optional[Dict[str, str]] = None,
    ) -> HttpResponse:
        """Browser-style entry point: ``site.get('/catalog?maker=Toyota')``."""
        request = HttpRequest.from_url(url, cookies=cookies, post_params=post_params)
        if post_params:
            request.method = "POST"
        return self.handle(request)

    # -- update path -----------------------------------------------------------------

    def update(self, sql: str, params: Optional[Sequence] = None) -> List[StatementResult]:
        """Apply a backend update.

        Config I applies it to every replica (the replication/
        synchronization cost); the other configurations touch the single
        shared database.
        """
        self.stats.updates_applied += 1
        return [database.execute(sql, params) for database in self.databases]

    def synchronize_data_caches(self) -> int:
        """Config II: run one synchronization round on every data cache."""
        return sum(cache.synchronize() for cache in self.data_caches)


def build_site(
    configuration: Configuration,
    servlets: Sequence[Servlet],
    database: Optional[Database] = None,
    database_factory: Optional[Callable[[], Database]] = None,
    num_servers: int = 4,
    web_cache_capacity: int = 1024,
    data_cache_capacity: int = 4096,
    balancing: BalancingPolicy = BalancingPolicy.ROUND_ROBIN,
    clock: Optional[Callable[[], float]] = None,
    web_cache: Optional[object] = None,
) -> Site:
    """Assemble a :class:`Site` for one of the three configurations.

    Args:
        configuration: which architecture to build.
        servlets: the application; shared by all servers.
        database: the shared database (Configs II/III).
        database_factory: builds one database replica per server (Config I).
        num_servers: size of the web-server farm (the paper used 4).
        web_cache_capacity: page-cache size for Config III.
        data_cache_capacity: per-server result-cache size for Config II.
        clock: time source for caches (the simulator injects its own).
        web_cache: a ready-made page cache for Config III — anything
            speaking the ``WebCache`` protocol, e.g. a
            :class:`~repro.cluster.cluster.CacheCluster` — instead of the
            default single-node ``WebCache``.
    """
    if num_servers < 1:
        raise WebError("a site needs at least one server")

    if configuration is Configuration.REPLICATED:
        if database_factory is None:
            raise WebError("Config I needs database_factory to build replicas")
        databases = [database_factory() for _ in range(num_servers)]
    else:
        if database is None:
            raise WebError("Configs II/III need the shared database")
        databases = [database]

    web_servers: List[WebServer] = []
    data_caches: List[DataCache] = []
    for index in range(num_servers):
        server_db = databases[index] if configuration is Configuration.REPLICATED else databases[0]
        driver_url = "repro:native:"
        if configuration is Configuration.DATA_CACHE:
            cache = DataCache(server_db, capacity=data_cache_capacity)
            data_caches.append(cache)
            driver_name = f"datacache-{id(cache)}"
            register_driver(driver_name, DataCacheDriver(cache))
            driver_url = f"repro:{driver_name}:"
        app_server = ApplicationServer(
            name=f"as{index}", database=server_db, driver_url=driver_url
        )
        for servlet in servlets:
            app_server.register(servlet)
        web_servers.append(WebServer(name=f"ws{index}", app_server=app_server))

    balancer = LoadBalancer(web_servers, balancing)
    if configuration is not Configuration.WEB_CACHE:
        if web_cache is not None:
            raise WebError("only Config III takes a page cache")
        web_cache = None
    elif web_cache is None:
        web_cache = WebCache(capacity=web_cache_capacity, clock=clock)

    return Site(
        configuration=configuration,
        balancer=balancer,
        databases=databases,
        web_cache=web_cache,
        data_caches=data_caches,
    )
