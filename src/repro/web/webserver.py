"""Web server: the HTTP front of one application server.

Functionally thin — in this architecture the web server forwards dynamic
requests to its application server — but kept as a separate component for
fidelity with the paper's data-flow (Figure 5, arrows (1)-(2) and (5)-(6))
and as the attachment point for per-server statistics.
"""

from __future__ import annotations

from repro.web.appserver import ApplicationServer
from repro.web.http import HttpRequest, HttpResponse


class WebServer:
    """Receives HTTP requests and passes them to the application server."""

    def __init__(self, name: str, app_server: ApplicationServer) -> None:
        self.name = name
        self.app_server = app_server
        self.requests_received = 0
        self.in_flight = 0

    def handle(self, request: HttpRequest) -> HttpResponse:
        self.requests_received += 1
        self.in_flight += 1
        try:
            return self.app_server.handle(request)
        finally:
            self.in_flight -= 1
