"""WSGI bindings: run a repro site as a standard Python web application.

Two pieces:

* :class:`SiteWSGIApp` — adapts a :class:`~repro.web.site.Site` (any
  configuration) to the WSGI callable protocol, translating WSGI environ
  dictionaries to :class:`~repro.web.http.HttpRequest` and back.  It can
  be served by any WSGI server (``wsgiref.simple_server``, gunicorn, …).
* :class:`CachePortalMiddleware` — a *pure WSGI middleware* version of
  the web cache + eject protocol: it caches responses marked
  ``Cache-Control: private, owner="cacheportal"`` by their page key and
  honours eject requests.  This demonstrates that the CachePortal cache
  layer composes with any WSGI application, not just this repo's site
  objects.

Neither piece requires a running socket; tests drive the callables
directly with synthetic environs, and ``examples/`` can serve them with
``wsgiref`` for a live demo.
"""

from __future__ import annotations

import io
import urllib.parse
from http.cookies import SimpleCookie
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.web.cache import WebCache
from repro.web.http import CacheControl, HttpRequest, HttpResponse
from repro.web.site import Site
from repro.web.urlkey import ALL_GET, KeySpec, page_key

StartResponse = Callable[[str, List[Tuple[str, str]]], None]
WSGIApp = Callable[[dict, StartResponse], Iterable[bytes]]

_STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
}


def request_from_environ(environ: dict) -> HttpRequest:
    """Build an :class:`HttpRequest` from a WSGI environ dictionary."""
    method = environ.get("REQUEST_METHOD", "GET").upper()
    host = environ.get("HTTP_HOST") or environ.get("SERVER_NAME", "localhost")
    path = environ.get("PATH_INFO", "/") or "/"
    get_params = dict(urllib.parse.parse_qsl(environ.get("QUERY_STRING", "")))

    post_params: Dict[str, str] = {}
    if method == "POST":
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        if length > 0:
            body = environ["wsgi.input"].read(length)
            content_type = environ.get("CONTENT_TYPE", "")
            if content_type.startswith("application/x-www-form-urlencoded"):
                post_params = dict(
                    urllib.parse.parse_qsl(body.decode("utf-8", "replace"))
                )

    cookies: Dict[str, str] = {}
    raw_cookie = environ.get("HTTP_COOKIE")
    if raw_cookie:
        jar = SimpleCookie()
        jar.load(raw_cookie)
        cookies = {name: morsel.value for name, morsel in jar.items()}

    headers = {
        name[5:].replace("_", "-").title(): value
        for name, value in environ.items()
        if name.startswith("HTTP_") and name != "HTTP_COOKIE"
    }
    return HttpRequest(
        method=method,
        host=host,
        path=path,
        get_params=get_params,
        post_params=post_params,
        cookies=cookies,
        headers=headers,
    )


def response_to_wsgi(
    response: HttpResponse, start_response: StartResponse
) -> Iterable[bytes]:
    """Emit an :class:`HttpResponse` through the WSGI protocol."""
    reason = _STATUS_REASONS.get(response.status, "Unknown")
    body = response.body.encode("utf-8")
    headers = [
        ("Content-Type", "text/html; charset=utf-8"),
        ("Content-Length", str(len(body))),
        ("Cache-Control", response.cache_control.render()),
    ]
    headers.extend(response.headers.items())
    start_response(f"{response.status} {reason}", headers)
    return [body]


class SiteWSGIApp:
    """WSGI callable serving a :class:`Site`.

    Example::

        from wsgiref.simple_server import make_server
        make_server("", 8000, SiteWSGIApp(site)).serve_forever()
    """

    def __init__(self, site: Site) -> None:
        self.site = site
        self.requests_served = 0

    def __call__(self, environ: dict, start_response: StartResponse) -> Iterable[bytes]:
        self.requests_served += 1
        request = request_from_environ(environ)
        response = self.site.handle(request)
        return response_to_wsgi(response, start_response)


class CachePortalMiddleware:
    """A WSGI middleware implementing the CachePortal cache protocol.

    Wraps *any* WSGI application.  Responses carrying
    ``Cache-Control: private, owner="cacheportal"`` are cached under their
    page key; later requests for the same key are answered from the cache.
    Requests carrying ``Cache-Control: eject`` remove the page (and are
    answered with 204, never forwarded) — this is how the invalidator's
    messages reach a cache that fronts a third-party application.

    Args:
        app: the wrapped WSGI application.
        cache: the page store; shared with an
            :class:`~repro.core.invalidator.invalidator.Invalidator` so
            programmatic ejects work too.
        key_spec_for_path: optional path → :class:`KeySpec` resolver; the
            default keys on all GET parameters.
    """

    def __init__(
        self,
        app: WSGIApp,
        cache: Optional[WebCache] = None,
        key_spec_for_path: Optional[Callable[[str], KeySpec]] = None,
    ) -> None:
        self.app = app
        self.cache = cache if cache is not None else WebCache()
        self.key_spec_for_path = key_spec_for_path or (lambda path: ALL_GET)

    def __call__(self, environ: dict, start_response: StartResponse) -> Iterable[bytes]:
        request = request_from_environ(environ)
        spec = self.key_spec_for_path(request.path)
        key = page_key(request, spec)

        control = request.cache_control
        if control is not None and control.has("eject"):
            removed = self.cache.eject(key)
            status = "204 No Content" if removed else "404 Not Found"
            start_response(status, [("Content-Length", "0")])
            return [b""]

        if request.method == "GET":
            cached = self.cache.get(key)
            if cached is not None:
                return response_to_wsgi(cached, start_response)

        captured: Dict[str, object] = {}

        def capture_start_response(status: str, headers: List[Tuple[str, str]]):
            captured["status"] = status
            captured["headers"] = headers

        chunks = self.app(environ, capture_start_response)
        body = b"".join(chunks)
        if hasattr(chunks, "close"):
            chunks.close()  # type: ignore[attr-defined]

        status_line = str(captured.get("status", "500 Internal Server Error"))
        status_code = int(status_line.split(" ", 1)[0])
        headers = list(captured.get("headers", []))  # type: ignore[arg-type]
        header_map = {name.lower(): value for name, value in headers}
        cache_control = CacheControl.parse(header_map.get("cache-control", "no-cache"))

        response = HttpResponse(
            status=status_code,
            body=body.decode("utf-8", "replace"),
            headers={
                name: value
                for name, value in headers
                if name.lower() not in ("content-length", "content-type", "cache-control")
            },
            cache_control=cache_control,
        )
        if request.method == "GET":
            self.cache.put(key, response)

        start_response(status_line, headers)
        return [body]


def call_wsgi(app: WSGIApp, environ: dict) -> Tuple[str, List[Tuple[str, str]], bytes]:
    """Test helper: invoke a WSGI app and collect (status, headers, body)."""
    captured: Dict[str, object] = {}

    def start_response(status: str, headers: List[Tuple[str, str]]):
        captured["status"] = status
        captured["headers"] = headers

    chunks = app(environ, start_response)
    body = b"".join(chunks)
    if hasattr(chunks, "close"):
        chunks.close()  # type: ignore[attr-defined]
    return str(captured["status"]), list(captured["headers"]), body  # type: ignore[arg-type]


def make_environ(
    url: str,
    method: str = "GET",
    host: str = "shop.example.com",
    cookies: Optional[Dict[str, str]] = None,
    post_params: Optional[Dict[str, str]] = None,
    headers: Optional[Dict[str, str]] = None,
) -> dict:
    """Test helper: build a minimal WSGI environ for ``url``."""
    parsed = urllib.parse.urlsplit(url)
    body = b""
    environ: dict = {
        "REQUEST_METHOD": method,
        "PATH_INFO": parsed.path or "/",
        "QUERY_STRING": parsed.query,
        "SERVER_NAME": host,
        "HTTP_HOST": parsed.netloc or host,
        "SERVER_PORT": "80",
        "wsgi.url_scheme": "http",
    }
    if post_params:
        environ["REQUEST_METHOD"] = "POST"
        body = urllib.parse.urlencode(post_params).encode()
        environ["CONTENT_TYPE"] = "application/x-www-form-urlencoded"
    if cookies:
        environ["HTTP_COOKIE"] = "; ".join(
            f"{name}={value}" for name, value in cookies.items()
        )
    for name, value in (headers or {}).items():
        environ[f"HTTP_{name.upper().replace('-', '_')}"] = value
    environ["CONTENT_LENGTH"] = str(len(body))
    environ["wsgi.input"] = io.BytesIO(body)
    return environ
