"""A fuller e-commerce deployment: the paper's workload on a live site.

Recreates §5.2's test application — a small table (500 tuples), a large
table (2500 tuples), a shared join attribute with 10 values, selectivity
0.1 — and serves the three page classes (light / medium / heavy) through
a CachePortal-managed Configuration III site while a background update
stream churns the database.

Prints a running tally of hits, invalidations, polling queries, and the
precision of the independence check.

Run with::

    python examples/ecommerce_site.py
"""

import random

from repro import CachePortal, Configuration, Database, KeySpec, build_site
from repro.web import QueryPageServlet
from repro.web.servlet import QueryBinding
from repro.sim.workload import build_paper_schema_sql


def build_database() -> Database:
    db = Database()
    for statement in build_paper_schema_sql(small_rows=500, large_rows=2500):
        db.execute(statement)
    return db


def build_servlets():
    light = QueryPageServlet(
        name="light",
        path="/light",
        queries=[
            (
                "SELECT * FROM small_items WHERE payload = ?",
                [QueryBinding("get", "p", int)],
            )
        ],
        key_spec=KeySpec.make(get_keys=["p"]),
        title="Light page",
    )
    medium = QueryPageServlet(
        name="medium",
        path="/medium",
        queries=[
            (
                "SELECT * FROM large_items WHERE payload = ?",
                [QueryBinding("get", "p", int)],
            )
        ],
        key_spec=KeySpec.make(get_keys=["p"]),
        title="Medium page",
    )
    heavy = QueryPageServlet(
        name="heavy",
        path="/heavy",
        queries=[
            (
                "SELECT small_items.id, large_items.id FROM small_items, large_items "
                "WHERE small_items.join_attr = large_items.join_attr "
                "AND small_items.join_attr = ?",
                [QueryBinding("get", "j", int)],
            )
        ],
        key_spec=KeySpec.make(get_keys=["j"]),
        title="Heavy page",
    )
    return [light, medium, heavy]


def main(rounds: int = 20, requests_per_round: int = 30, seed: int = 7) -> None:
    rng = random.Random(seed)
    db = build_database()
    site = build_site(
        Configuration.WEB_CACHE, build_servlets(), database=db, num_servers=4,
        web_cache_capacity=256,
    )
    portal = CachePortal(site)
    next_id = 100000

    total_reports = []
    for round_number in range(1, rounds + 1):
        # 30 requests per "second": 10 of each class (paper §5.2.2).
        for _ in range(requests_per_round // 3):
            site.get(f"/light?p={rng.randrange(10)}")
            site.get(f"/medium?p={rng.randrange(10)}")
            site.get(f"/heavy?j={rng.randrange(10)}")

        # 5 insertions and 5 deletions per table per "second" (§5.2.3).
        for _ in range(5):
            join_attr = rng.randrange(10)
            payload = rng.randrange(10)
            db.execute(
                f"INSERT INTO small_items VALUES ({next_id}, {join_attr}, {payload})"
            )
            next_id += 1
            db.execute(
                f"INSERT INTO large_items VALUES ({next_id}, {join_attr}, {payload})"
            )
            next_id += 1
            db.execute(
                f"DELETE FROM small_items WHERE id = "
                f"{rng.randrange(500)}"
            )
            db.execute(
                f"DELETE FROM large_items WHERE id = {rng.randrange(2500)}"
            )

        # One invalidation cycle per "second" (§5.2.4).
        report = portal.run_invalidation_cycle()
        total_reports.append(report)
        if round_number % 5 == 0:
            stats = site.web_cache.stats
            print(
                f"round {round_number:3d}: cached={len(site.web_cache):3d} "
                f"hit-ratio={stats.hit_ratio:5.2f} "
                f"ejected={report.urls_ejected:3d} "
                f"unaffected={report.unaffected:4d} "
                f"polls={report.polls_executed:3d}"
            )

    checked = sum(r.pairs_checked for r in total_reports)
    unaffected = sum(r.unaffected for r in total_reports)
    polls = sum(r.polls_executed for r in total_reports)
    ejected = sum(r.urls_ejected for r in total_reports)
    print()
    print(f"update-page pairs checked : {checked}")
    print(f"proven unaffected locally : {unaffected} ({100 * unaffected / max(1, checked):.1f}%)")
    print(f"polling queries issued    : {polls}")
    print(f"pages ejected             : {ejected}")
    print(f"final page-cache hit ratio: {site.web_cache.stats.hit_ratio:.2f}")


if __name__ == "__main__":
    main()
