"""Quickstart: deploy CachePortal on a small database-driven site.

Builds the paper's Configuration III — a web-page cache in front of the
site — installs CachePortal without touching the application, and shows
the cache being populated, hit, and invalidated as the database changes.

Run with::

    python examples/quickstart.py
"""

from repro import CachePortal, Configuration, Database, KeySpec, build_site
from repro.web import QueryPageServlet
from repro.web.servlet import QueryBinding


def main() -> None:
    # 1. A database-driven application: one table, one servlet.
    db = Database()
    db.execute("CREATE TABLE product (name TEXT, category TEXT, price INT)")
    db.execute(
        "INSERT INTO product VALUES "
        "('laptop', 'electronics', 1200), ('phone', 'electronics', 800), "
        "('desk', 'furniture', 300), ('chair', 'furniture', 150)"
    )

    catalog = QueryPageServlet(
        name="catalog",
        path="/catalog",
        queries=[
            (
                "SELECT name, price FROM product WHERE category = ? AND price < ?",
                [
                    QueryBinding("get", "category"),
                    QueryBinding("get", "max_price", int),
                ],
            )
        ],
        key_spec=KeySpec.make(get_keys=["category", "max_price"]),
        title="Catalog",
    )

    # 2. Configuration III: web cache in front of the server farm.
    site = build_site(Configuration.WEB_CACHE, [catalog], database=db, num_servers=2)

    # 3. Deploy CachePortal: wraps servlets + drivers, no app changes.
    portal = CachePortal(site)

    url = "/catalog?category=electronics&max_price=1000"
    first = site.get(url)
    print("first request  :", "MISS,", first.queries_issued, "query executed")

    second = site.get(url)
    print("second request :", "HIT" if site.stats.page_cache_hits else "MISS")
    assert "phone" in second.body and "laptop" not in second.body

    # 4. The database changes; the invalidator ejects exactly the pages
    #    whose underlying data changed.
    db.execute("INSERT INTO product VALUES ('tablet', 'electronics', 450)")
    report = portal.run_invalidation_cycle()
    print(
        f"invalidation   : {report.urls_ejected} page(s) ejected "
        f"({report.unaffected} update-page pairs proven unaffected)"
    )

    third = site.get(url)
    print("third request  : regenerated,", "tablet" in third.body and "tablet shown")

    # 5. An irrelevant update (furniture) leaves the cached page alone.
    site.get(url)  # re-cache
    portal.run_invalidation_cycle()
    db.execute("INSERT INTO product VALUES ('sofa', 'furniture', 900)")
    report = portal.run_invalidation_cycle()
    print(
        f"irrelevant upd : {report.urls_ejected} ejected, "
        f"{report.unaffected} proven unaffected — page stayed cached"
    )
    assert site.get(url) is not None
    print("cache stats    :", site.web_cache.stats)


if __name__ == "__main__":
    main()
