"""Edge caching: dynamic pages in a four-level cache hierarchy (Figure 1).

The paper's Figure 1 shows the places a page can be cached on its way to
the user: the site's reverse proxy (B), a CDN edge cache (C), an ISP
proxy (A), and the user side (D).  CachePortal's invalidation is
*vertical*: when the database changes, eject messages travel from the
invalidator out to every level — so a dynamic page can safely live at
the very edge.

Run with::

    python examples/edge_caching.py
"""

from repro.db import Database
from repro.web import Configuration, KeySpec, QueryPageServlet, build_site
from repro.web.hierarchy import HierarchicalSite, standard_hierarchy
from repro.web.servlet import QueryBinding
from repro.core import CachePortal


def main() -> None:
    db = Database()
    db.execute("CREATE TABLE stock (ticker TEXT, price REAL)")
    db.execute("INSERT INTO stock VALUES ('NEC', 12.5), ('ORCL', 35.0), ('BEAS', 57.25)")

    quotes = QueryPageServlet(
        name="quote",
        path="/quote",
        queries=[
            ("SELECT ticker, price FROM stock WHERE ticker = ?",
             [QueryBinding("get", "t")])
        ],
        key_spec=KeySpec.make(get_keys=["t"]),
        title="Quote",
    )

    # Origin site + CachePortal; then a 4-level hierarchy in front of it.
    origin = build_site(Configuration.WEB_CACHE, [quotes], database=db, num_servers=2)
    portal = CachePortal(origin)
    hierarchy = standard_hierarchy(capacity_per_level=64)
    site = HierarchicalSite(origin, hierarchy)
    for cache in hierarchy.caches:
        portal.invalidator.messages.add_cache(cache)

    url = "/quote?t=NEC"
    _response, source = site.fetch_with_source(url)
    print(f"request 1: served from {source}")
    _response, source = site.fetch_with_source(url)
    print(f"request 2: served from {source} (closest level to the user)")

    key = hierarchy.caches[0].keys()[0]
    print("page copies at:", ", ".join(hierarchy.contains(key)))

    # The quote changes; one cycle ejects the page from all four levels.
    db.execute("UPDATE stock SET price = 13.75 WHERE ticker = 'NEC'")
    report = portal.run_invalidation_cycle()
    print(
        f"update    : {report.pages_removed} copies removed across "
        f"{len(hierarchy.levels)} cache levels"
    )
    print("page copies at:", hierarchy.contains(key) or "(none)")

    response, source = site.fetch_with_source(url)
    print(f"request 3: served from {source}, fresh price shown:", "13.75" in response.body)

    print("hierarchy stats:", hierarchy.stats.hits_by_level,
          f"origin fetches={hierarchy.stats.origin_fetches}")


if __name__ == "__main__":
    main()
