"""Reproduce the paper's evaluation tables (Tables 2 and 3).

Runs the discrete-event simulation of the three site configurations under
the paper's three update loads and prints rows in the paper's format,
followed by the qualitative conclusions of §5.3.

Run with::

    python examples/config_comparison.py [duration_seconds]
"""

import sys

from repro.sim.configs import ConfigurationModel
from repro.sim.runner import run_table2, run_table3


def main(duration: float = 120.0) -> None:
    model = ConfigurationModel(duration=duration, warmup=min(10.0, duration / 10))

    rows2 = run_table2(model)
    print()
    rows3 = run_table3(model)

    # The §5.3 conclusions, checked live.
    by_key = {(row.configuration, row.update_label): row for row in rows2}
    conf1 = by_key[("Conf I", "No Updates")]
    conf2 = by_key[("Conf II", "<12, 12, 12, 12>")]
    conf3 = by_key[("Conf III", "<12, 12, 12, 12>")]
    gap = (conf2.exp_resp_ms - conf3.exp_resp_ms) / conf2.exp_resp_ms

    print()
    print("§5.3 conclusions, reproduced:")
    print(
        f"  1. Conf I needs {conf1.exp_resp_ms / 1000:.1f}s per request even "
        f"without updates — replication alone does not scale."
    )
    print(
        f"  2. Under ~50 updates/s, Conf III beats Conf II by "
        f"{100 * gap:.0f}% ({conf3.exp_resp_ms:.0f}ms vs {conf2.exp_resp_ms:.0f}ms)."
    )
    hit0 = by_key[("Conf III", "No Updates")].hit_resp_ms
    hit48 = conf3.hit_resp_ms
    print(
        f"  3. Conf III hit time falls with update rate ({hit0:.0f}ms → "
        f"{hit48:.0f}ms): the web cache sits outside the shared network."
    )
    t3 = {(row.configuration, row.update_label): row for row in rows3}
    conf2x = t3[("Conf II", "No Updates")]
    print(
        f"  4. With a local-DBMS middle-tier cache, Conf II collapses to "
        f"{conf2x.exp_resp_ms / 1000:.1f}s — worse than no caching at all "
        f"(Table 3)."
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 120.0)
