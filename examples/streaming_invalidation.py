"""Streaming invalidation: tail the update log, shard by relation,
batch ejects through the bus.

Builds Configuration III, deploys CachePortal, then attaches the
streaming pipeline so invalidation runs *continuously* instead of in
synchronous cycles: a CDC tailer follows the update log, sharded
workers analyze each relation's changes in log order, and the eject bus
coalesces, retries and dead-letters `Cache-Control: eject` deliveries.

Run with::

    python examples/streaming_invalidation.py
"""

import threading

from repro import CachePortal, Configuration, Database, KeySpec, build_site
from repro.stream import StreamingInvalidationPipeline
from repro.web import QueryPageServlet
from repro.web.cache import FlakyCache
from repro.web.servlet import QueryBinding


def build_demo_site():
    db = Database()
    db.execute("CREATE TABLE product (name TEXT, category TEXT, price INT)")
    db.execute("CREATE TABLE review (name TEXT, stars INT)")
    db.execute(
        "INSERT INTO product VALUES ('laptop','electronics',1200), "
        "('phone','electronics',800), ('desk','furniture',300)"
    )
    db.execute("INSERT INTO review VALUES ('laptop',5), ('desk',4)")

    catalog = QueryPageServlet(
        name="catalog",
        path="/catalog",
        queries=[(
            "SELECT name, price FROM product WHERE category = ?",
            [QueryBinding("get", "category")],
        )],
        key_spec=KeySpec.make(get_keys=["category"]),
        title="Catalog",
    )
    top_rated = QueryPageServlet(
        name="top_rated",
        path="/top",
        queries=[(
            "SELECT product.name, review.stars FROM product, review "
            "WHERE product.name = review.name AND review.stars >= ?",
            [QueryBinding("get", "min_stars", int)],
        )],
        key_spec=KeySpec.make(get_keys=["min_stars"]),
        title="Top rated",
    )
    site = build_site(
        Configuration.WEB_CACHE, [catalog, top_rated], database=db,
        num_servers=2,
    )
    return db, site


def main() -> None:
    db, site = build_demo_site()
    portal = CachePortal(site)

    # Attach the streaming pipeline to the installed portal: it shares
    # the portal's registry/mapper and ejects from the site's web cache.
    pipeline = StreamingInvalidationPipeline.for_portal(portal, num_shards=4)

    # A second, unreliable edge cache also wants eject messages — the
    # bus will retry with backoff and dead-letter what never succeeds.
    edge = FlakyCache(fail_first=2)
    pipeline.register_cache("edge", edge)
    pipeline.bus.backoff_base = 0.005

    urls = ["/catalog?category=electronics", "/catalog?category=furniture",
            "/top?min_stars=4"]
    for url in urls:
        site.get(url)
    print(f"cached          : {len(site.web_cache)} pages")

    pipeline.start()
    try:
        # Updates stream in from concurrent writers; the tailer picks
        # them up without any explicit invalidation call.
        def writer(statements):
            for statement in statements:
                db.execute(statement)

        threads = [
            threading.Thread(target=writer, args=([
                "INSERT INTO product VALUES ('tablet','electronics',450)",
                "INSERT INTO product VALUES ('lamp','furniture',60)",
            ],)),
            threading.Thread(target=writer, args=([
                "INSERT INTO review VALUES ('phone', 5)",
            ],)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        drained = pipeline.drain(timeout=10.0)
        print(f"drained         : {drained}")
    finally:
        pipeline.stop()

    stats = pipeline.stats()
    print(f"records tailed  : {stats['tailer']['records_tailed']}"
          f" (lag {stats['tailer']['lag_records']})")
    print(f"pairs checked   : {stats['workers']['pairs_checked']}"
          f" ({stats['workers']['unaffected']} proven unaffected,"
          f" {stats['workers']['polls_executed']} polled)")
    print(f"ejects          : {stats['bus']['deliveries_ok']} delivered,"
          f" {stats['bus']['retries']} retries,"
          f" {stats['bus']['dead_letters']} dead-lettered")
    print(f"edge cache      : saw {edge.messages_seen} messages,"
          f" {edge.messages_failed} failed before recovery")
    print(f"surviving pages : {sorted(site.web_cache.keys())}")

    # The catalog pages regenerate with the new rows on next request.
    page = site.get("/catalog?category=electronics")
    print(f"regenerated     : tablet shown = {'tablet' in page.body}")


if __name__ == "__main__":
    main()
