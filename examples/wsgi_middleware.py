"""CachePortal as plain WSGI middleware over a third-party application.

The paper's deployment story is non-invasiveness: caches, sniffers, and
invalidators install *around* existing components.  This example pushes
that to the limit — the "application" below is an ordinary WSGI app that
knows nothing about this library beyond emitting the CachePortal
cache-control header.  The middleware caches its pages; the invalidator
ejects them when the database changes.

Run with::

    python examples/wsgi_middleware.py
"""

from repro.db import Database, connect
from repro.web.cache import WebCache
from repro.web.wsgi import CachePortalMiddleware, call_wsgi, make_environ
from repro.core.invalidator import Invalidator
from repro.core.qiurl import QIURLMap


def build_database() -> Database:
    db = Database()
    db.execute("CREATE TABLE news (id INT PRIMARY KEY, headline TEXT, views INT)")
    db.execute(
        "INSERT INTO news VALUES "
        "(1, 'CachePortal ships', 100), (2, 'Dynamic pages now cacheable', 50)"
    )
    return db


def make_app(db: Database, qiurl: QIURLMap):
    """A hand-written WSGI app (imagine: Flask, Django, CGI...)."""
    generations = {"count": 0}

    def app(environ, start_response):
        generations["count"] += 1
        sql = "SELECT headline FROM news ORDER BY views DESC"
        rows = connect(db).execute(sql).fetchall()
        # The only cooperation needed: report which query built which page
        # (a real deployment gets this from the sniffer's two log wrappers).
        qiurl.add(sql, "shop.example.com/front", "front-page")
        body = "\n".join(
            [f"generation #{generations['count']}"] + [row[0] for row in rows]
        ).encode()
        start_response(
            "200 OK",
            [
                ("Content-Type", "text/plain"),
                ("Cache-Control", 'private, owner="cacheportal"'),
            ],
        )
        return [body]

    return app


def main() -> None:
    db = build_database()
    qiurl = QIURLMap()
    cache = WebCache()
    app = CachePortalMiddleware(make_app(db, qiurl), cache)
    invalidator = Invalidator(db, [cache], qiurl)

    status, _headers, first = call_wsgi(app, make_environ("/front"))
    print("request 1:", first.decode().splitlines()[0], f"({status})")

    _status, _headers, second = call_wsgi(app, make_environ("/front"))
    print("request 2:", second.decode().splitlines()[0], "(served from cache)")
    assert first == second

    db.execute("UPDATE news SET views = 500 WHERE id = 2")
    report = invalidator.run_cycle()
    print(f"update    : invalidation cycle ejected {report.urls_ejected} page(s)")

    _status, _headers, third = call_wsgi(app, make_environ("/front"))
    lines = third.decode().splitlines()
    print("request 3:", lines[0], "— new order:", ", ".join(lines[1:]))
    assert lines[1] == "Dynamic pages now cacheable"


if __name__ == "__main__":
    main()
