"""Paper Example 4.1, step by step.

Walks through the invalidator's decision procedure on the paper's
Car/Mileage schema and Query1, showing all three outcomes:

* an update that is provably independent (no DB access needed),
* an update that requires a polling query, and the polling query itself,
* the resulting page ejection.

Run with::

    python examples/car_catalog.py
"""

from repro.db import Database
from repro.db.log import ChangeKind, UpdateRecord
from repro.sql.parser import parse_statement
from repro.core.invalidator.analysis import IndependenceChecker, VerdictKind


QUERY1 = """
SELECT car.maker, car.model, car.price, mileage.epa
FROM car, mileage
WHERE car.model = mileage.model AND car.price < 23000
"""


def make_record(table, kind, **values):
    return UpdateRecord(
        lsn=1,
        timestamp=0.0,
        table=table,
        kind=kind,
        values=tuple(values.values()),
        columns=tuple(values.keys()),
    )


def main() -> None:
    db = Database()
    db.execute("CREATE TABLE car (maker TEXT, model TEXT, price INT)")
    db.execute("CREATE TABLE mileage (model TEXT, epa INT)")
    db.execute("INSERT INTO mileage VALUES ('Avalon', 28), ('Eclipse', 25)")

    checker = IndependenceChecker()
    query1 = parse_statement(QUERY1)
    print("Query1:", QUERY1.strip().replace("\n", " "))
    print()

    # Case 1 (paper): insert (Toyota, Avalon, 25000) — the price condition
    # already fails, so the page cannot be affected.  No DB access needed.
    expensive = make_record(
        "car", ChangeKind.INSERT, maker="Toyota", model="Avalon", price=25000
    )
    verdict = checker.check(query1, expensive)
    print("insert (Toyota, Avalon, 25000):", verdict.kind.value)
    print("  reason:", verdict.reason)
    assert verdict.kind is VerdictKind.UNAFFECTED

    # Case 2 (paper): insert (Toyota, Avalon, 20000) — the local condition
    # holds; whether the join produces a row depends on Mileage, so the
    # invalidator generates a polling query.
    cheap = make_record(
        "car", ChangeKind.INSERT, maker="Toyota", model="Avalon", price=20000
    )
    verdict = checker.check(query1, cheap)
    print()
    print("insert (Toyota, Avalon, 20000):", verdict.kind.value)
    print("  polling query:", verdict.polling_sql)
    assert verdict.kind is VerdictKind.NEEDS_POLLING

    # Execute the polling query: 'Avalon' IS in mileage, so the insert
    # impacts Query1 and the page must be invalidated.
    result = db.execute(verdict.polling_query)
    impacted = bool(result.rows[0][0])
    print("  polling result:", result.rows[0][0], "→ page", "STALE" if impacted else "fresh")
    assert impacted

    # Case 3: same insert for a model with no mileage row — the polling
    # query comes back empty and the cached page survives.
    unknown = make_record(
        "car", ChangeKind.INSERT, maker="Kia", model="Rio", price=15000
    )
    verdict = checker.check(query1, unknown)
    result = db.execute(verdict.polling_query)
    impacted = bool(result.rows[0][0])
    print()
    print("insert (Kia, Rio, 15000): poll →", result.rows[0][0], "→ page",
          "STALE" if impacted else "fresh (kept cached)")
    assert not impacted


if __name__ == "__main__":
    main()
