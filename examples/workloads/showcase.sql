-- Invalidation-safety lint showcase: every statement below trips at
-- least one `repro lint` rule.  Run:
--
--     PYTHONPATH=src python -m repro lint examples/workloads/showcase.sql
--
-- Severity ERROR findings force the ALWAYS_EJECT fallback; WARNING
-- findings force POLL_ONLY; INFO findings are hygiene only.

-- nondeterministic-function (ERROR): NOW() is frozen at page time.
SELECT maker, model FROM car WHERE price < NOW();

-- correlated-subquery (ERROR): inner result depends on the outer row.
SELECT maker FROM car
WHERE EXISTS (SELECT * FROM mileage WHERE mileage.model = car.model);

-- uncorrelated-subquery (WARNING): inner tables escape precise checks.
SELECT model FROM car WHERE model IN (SELECT model FROM mileage);

-- union-coarse-analysis (WARNING): table-level analysis only.
SELECT maker FROM car UNION SELECT model FROM mileage;

-- left-join-null-extension (WARNING): deletes on the inner side change
-- results without satisfying any join predicate.
SELECT car.maker, mileage.mileage FROM car
LEFT JOIN mileage ON car.model = mileage.model;

-- mixed-disjunction (WARNING): OR spans two tables.
SELECT car.maker FROM car, mileage
WHERE car.model = mileage.model
AND (car.price < 10000 OR mileage.mileage > 100000);

-- contradictory-predicate (WARNING): matches nothing, pins cache slots.
SELECT maker FROM car WHERE 1 = 2;

-- tautological-predicate (INFO): filters nothing.
SELECT maker FROM car WHERE 1 = 1 AND price < 20000;

-- cross-type-comparison (WARNING): one branch is vacuous.
SELECT maker FROM car WHERE price > 10000 AND price = 'cheap';

-- unindexable-local-conjunct (INFO): arithmetic over the column defeats
-- the predicate index.
SELECT maker FROM car WHERE price * 2 < 30000;

-- unsatisfiable-conjunction (WARNING): no price satisfies both bounds.
SELECT maker FROM car WHERE price > 20000 AND price < 15000;
