-- Seeded-bad fixture for CI: contains ERROR-severity findings, so
--
--     PYTHONPATH=src python -m repro lint --fail-on=error \
--         examples/workloads/bad_workload.sql
--
-- must exit non-zero.

-- nondeterministic-function (ERROR)
SELECT maker, model FROM car WHERE price < RAND() * 50000;

-- correlated-subquery (ERROR)
SELECT maker FROM car
WHERE price > (SELECT mileage FROM mileage WHERE mileage.model = car.model);

-- not-a-select (ERROR): DML cannot be a page query.
UPDATE car SET price = 1 WHERE maker = 'Kia';

-- parse-error (ERROR)
SELECT FROM WHERE;
