-- A lint-clean page workload: equality/range predicates on bare
-- columns, parameters bound by the application, inner joins only.
--
--     PYTHONPATH=src python -m repro lint examples/workloads/clean.sql

SELECT maker, model, price FROM car WHERE maker = ?;

SELECT maker, model FROM car WHERE price < ? AND maker = ?;

SELECT car.maker, car.model, mileage.mileage FROM car, mileage
WHERE car.model = mileage.model AND car.maker = ?;

SELECT model FROM mileage WHERE mileage BETWEEN ? AND ?;

SELECT maker FROM car WHERE model IN ('Rio', 'Golf', 'Avalon');
